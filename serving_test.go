// Serving-tier integration tests: the HTTP server must return exactly
// what direct Store.Query returns on the paper corpus, for both engines
// at every parallelism — and the plan cache must make warm queries pay
// zero planning time. External test package: internal/server imports
// repro, so these tests must sit outside package blas.
package blas_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	blas "repro"
	"repro/internal/bench"
	"repro/internal/server"
)

func buildDatasetStore(tb testing.TB, dataset string) *blas.Store {
	tb.Helper()
	var doc strings.Builder
	if err := blas.GenerateDataset(&doc, dataset, blas.DatasetOptions{Seed: 1, Factor: 1}); err != nil {
		tb.Fatal(err)
	}
	st, err := blas.BuildFromString(doc.String(), blas.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.Close() })
	return st
}

func serverQuery(tb testing.TB, url string, req server.QueryRequest) *server.QueryResponse {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("POST /query %q: status %d: %s", req.Query, resp.StatusCode, data)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		tb.Fatal(err)
	}
	return &qr
}

// TestServerMatchesDirectOnCorpus serves each paper data set over HTTP
// and checks every Fig. 10 query returns matches byte-identical to a
// direct Store.Query — both engines, sequential and parallel. This is
// the serving analogue of TestPaperQueriesEndToEnd: it pins down the
// whole HTTP round trip (request decoding, cache layers, admission,
// JSON encoding) as result-preserving.
func TestServerMatchesDirectOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three paper-scale stores")
	}
	queriesByDataset := map[string][]string{}
	for qn, q := range bench.Fig10Queries {
		ds, err := bench.DatasetOf(qn)
		if err != nil {
			t.Fatal(err)
		}
		queriesByDataset[ds] = append(queriesByDataset[ds], q)
	}
	for _, ds := range blas.Datasets() {
		t.Run(ds, func(t *testing.T) {
			st := buildDatasetStore(t, ds)
			srv := server.New(st, server.Config{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			for _, query := range queriesByDataset[ds] {
				for _, engine := range []blas.Engine{blas.EngineRelational, blas.EngineTwig} {
					var baseline []blas.Match
					for _, par := range []int{1, 4} {
						want, err := st.Query(query, blas.QueryOptions{Engine: engine, Parallelism: par})
						if err != nil {
							t.Fatalf("%s [%s P=%d] direct: %v", query, engine, par, err)
						}
						qr := serverQuery(t, ts.URL, server.QueryRequest{
							Query: query, Engine: string(engine), Parallelism: par, NoResultCache: true,
						})
						if qr.Count != len(want.Matches) || !reflect.DeepEqual(qr.Matches, want.Matches) {
							t.Errorf("%s [%s P=%d]: server returned %d matches, direct query %d — results must be identical",
								query, engine, par, qr.Count, len(want.Matches))
						}
						if baseline == nil {
							baseline = qr.Matches
						} else if !reflect.DeepEqual(baseline, qr.Matches) {
							t.Errorf("%s [%s]: served results differ across parallelism levels", query, engine)
						}
					}
				}
				// Warm path: the plan is now cached; a repeat execution must
				// pay zero planning time end to end.
				warm := serverQuery(t, ts.URL, server.QueryRequest{Query: query, NoResultCache: true})
				if !warm.PlanCached || warm.PlanNs != 0 || warm.Stats.PlanElapsed != 0 {
					t.Errorf("%s: warm query paid planning time (plan_cached=%v plan_ns=%d plan_elapsed=%v)",
						query, warm.PlanCached, warm.PlanNs, warm.Stats.PlanElapsed)
				}
			}
			m := srv.Metrics()
			if m.PlanCache.Hits == 0 {
				t.Error("corpus sweep produced no plan-cache hits")
			}
		})
	}
}

// BenchmarkServerPlanCache contrasts the cold plan path (every request
// parses and translates) with the warm one (plan served from the cache)
// over the full HTTP round trip. The delta between the two sub-benchmarks
// is the per-request planning cost the cache eliminates.
func BenchmarkServerPlanCache(b *testing.B) {
	st := buildDatasetStore(b, "shakespeare")
	srv := server.New(st, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const query = `/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`
	body, _ := json.Marshal(server.QueryRequest{Query: query, NoResultCache: true})

	post := func(b *testing.B) {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	purgePlans := func(b *testing.B) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/cache?scope=all", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			purgePlans(b)
			post(b)
		}
	})
	b.Run("warm", func(b *testing.B) {
		post(b) // install the plan
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b)
		}
		if hits := srv.Metrics().PlanCache.Hits; hits < uint64(b.N) {
			b.Fatalf("warm loop hit the plan cache %d times, want >= %d", hits, b.N)
		}
	})
}
