// Benchmarks reproducing the paper's evaluation (§5), one benchmark tree
// per figure, plus ablations of the design choices called out in
// DESIGN.md. Each iteration is a cold-cache execution, matching the
// paper's measurement protocol (§5.1). cmd/blasbench prints the same
// experiments as paper-style tables.
package blas

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/enginetest"
	"repro/internal/pager"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xpath"
)

// Shared stores, built once per (dataset, factor, poolPages).
var (
	benchMu     sync.Mutex
	benchStores = map[string]*core.Store{}
)

func benchStore(b *testing.B, dataset string, factor, poolPages int) *core.Store {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s/%d/%d", dataset, factor, poolPages)
	if st, ok := benchStores[key]; ok {
		return st
	}
	tree, err := datagen.ByName(dataset, datagen.Options{Seed: 1, Factor: factor})
	if err != nil {
		b.Fatal(err)
	}
	st, err := core.BuildFromTree(tree, core.Options{PoolPages: poolPages})
	if err != nil {
		b.Fatal(err)
	}
	benchStores[key] = st
	return st
}

func benchPlan(b *testing.B, st *core.Store, query, translator string, strip bool) *translate.Plan {
	b.Helper()
	q, err := xpath.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	if strip {
		q = bench.StripValues(q)
	}
	tr, err := translate.ByName(translator)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, q)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func runRelational(b *testing.B, st *core.Store, plan *translate.Plan) {
	b.Helper()
	b.ReportAllocs()
	var ctx *relstore.ExecContext
	for i := 0; i < b.N; i++ {
		if err := st.DropCaches(); err != nil {
			b.Fatal(err)
		}
		ctx = relstore.NewExecContext()
		if _, err := relengine.Execute(ctx, st, planner.Fixed(plan), relengine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Visited()), "elements/op")
	b.ReportMetric(float64(ctx.PageMisses()), "diskaccess/op")
}

func runTwig(b *testing.B, st *core.Store, plan *translate.Plan) {
	b.Helper()
	b.ReportAllocs()
	var ctx *relstore.ExecContext
	for i := 0; i < b.N; i++ {
		if err := st.DropCaches(); err != nil {
			b.Fatal(err)
		}
		ctx = relstore.NewExecContext()
		if _, err := twig.Execute(ctx, st, planner.Fixed(plan), core.ExecConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Visited()), "elements/op")
	b.ReportMetric(float64(ctx.PageMisses()), "diskaccess/op")
}

// BenchmarkFig11_PlanShapes measures query translation itself for QS3
// under the four translators (the work behind Fig. 11).
func BenchmarkFig11_PlanShapes(b *testing.B) {
	st := benchStore(b, "shakespeare", 1, 0)
	q := xpath.MustParse(bench.Fig10Queries["QS3"])
	ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
	for _, name := range []string{"dlabel", "split", "pushup", "unfold"} {
		tr, _ := translate.ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12_Shred measures the index generator (the cost of
// producing Fig. 12's stores).
func BenchmarkFig12_Shred(b *testing.B) {
	for _, name := range datagen.Names() {
		tree, err := datagen.ByName(name, datagen.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := core.BuildFromTree(tree, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				st.Close()
			}
		})
	}
}

// BenchmarkFig13_RDBMS reproduces Fig. 13 (a-c): the nine Fig. 10 queries
// under every translator on the relational engine.
func BenchmarkFig13_RDBMS(b *testing.B) {
	for _, qn := range bench.QueryOrder(bench.Fig10Queries) {
		ds, err := bench.DatasetOf(qn)
		if err != nil {
			b.Fatal(err)
		}
		st := benchStore(b, ds, 1, 0)
		for _, tr := range []string{"dlabel", "split", "pushup", "unfold"} {
			b.Run(qn+"/"+tr, func(b *testing.B) {
				plan := benchPlan(b, st, bench.Fig10Queries[qn], tr, false)
				runRelational(b, st, plan)
			})
		}
	}
}

// BenchmarkFig14_Twig reproduces Fig. 14 (a,b): all nine queries on the
// holistic twig join engine, value predicates stripped (§5.3.1).
func BenchmarkFig14_Twig(b *testing.B) {
	for _, qn := range bench.QueryOrder(bench.Fig10Queries) {
		ds, err := bench.DatasetOf(qn)
		if err != nil {
			b.Fatal(err)
		}
		st := benchStore(b, ds, 1, 0)
		for _, tr := range []string{"dlabel", "split", "pushup"} {
			b.Run(qn+"/"+tr, func(b *testing.B) {
				plan := benchPlan(b, st, bench.Fig10Queries[qn], tr, true)
				runTwig(b, st, plan)
			})
		}
	}
}

// BenchmarkFig15_XMark reproduces Fig. 15 (a,b): the XMark benchmark
// skeleton queries on the twig engine.
func BenchmarkFig15_XMark(b *testing.B) {
	st := benchStore(b, "auction", 1, 0)
	for _, qn := range bench.QueryOrder(bench.Fig15Queries) {
		for _, tr := range []string{"dlabel", "split", "pushup"} {
			b.Run(qn+"/"+tr, func(b *testing.B) {
				plan := benchPlan(b, st, bench.Fig15Queries[qn], tr, true)
				runTwig(b, st, plan)
			})
		}
	}
}

// scalability is the engine behind Figs. 16-18: one query across growing
// Auction data.
func scalability(b *testing.B, queryName string) {
	for _, factor := range []int{1, 3} {
		st := benchStore(b, "auction", factor, 0)
		for _, tr := range []string{"dlabel", "split", "pushup"} {
			b.Run(fmt.Sprintf("x%d/%s", factor, tr), func(b *testing.B) {
				plan := benchPlan(b, st, bench.Fig10Queries[queryName], tr, true)
				runTwig(b, st, plan)
			})
		}
	}
}

// BenchmarkFig16_SuffixPathScale reproduces Fig. 16: suffix path query
// QA1 across data scales.
func BenchmarkFig16_SuffixPathScale(b *testing.B) { scalability(b, "QA1") }

// BenchmarkFig17_PathScale reproduces Fig. 17: path query QA2 across
// data scales.
func BenchmarkFig17_PathScale(b *testing.B) { scalability(b, "QA2") }

// BenchmarkFig18_TwigScale reproduces Fig. 18: tree query QA3 across data
// scales.
func BenchmarkFig18_TwigScale(b *testing.B) { scalability(b, "QA3") }

// BenchmarkParallelQuery compares sequential execution (Parallelism 1,
// the paper's engine) against the GOMAXPROCS worker pool on
// multi-fragment queries — the dlabel plans carry one tag scan per query
// node plus D-joins, so both the fragment fan-out and the partitioned
// merge join engage. Warm cache: the comparison isolates CPU work, and
// both settings must produce identical result sets (start positions
// compared once per query before its sub-benchmarks run).
func BenchmarkParallelQuery(b *testing.B) {
	st := benchStore(b, "auction", 3, 0)
	for _, q := range []struct{ name, query, translator string }{
		{"QA2/dlabel", bench.Fig10Queries["QA2"], "dlabel"},
		{"QA3/dlabel", bench.Fig10Queries["QA3"], "dlabel"},
		{"QA2/split", bench.Fig10Queries["QA2"], "split"},
	} {
		plan := benchPlan(b, st, q.query, q.translator, true)
		seq, err := relengine.Execute(nil, st, planner.Fixed(plan), relengine.Options{ExecConfig: core.ExecConfig{Parallelism: 1}})
		if err != nil {
			b.Fatal(err)
		}
		par, err := relengine.Execute(nil, st, planner.Fixed(plan), relengine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(seq.Records) == 0 {
			b.Fatalf("%s: empty result set would benchmark no join work", q.name)
		}
		if !enginetest.StartsEqual(par.Starts(), seq.Starts()) {
			b.Fatalf("%s: parallel %d results != sequential %d", q.name, len(par.Records), len(seq.Records))
		}
		for _, mode := range []struct {
			name string
			par  int
		}{
			{"seq", 1},
			{"par2", 2},
			{"parallel", 0}, // GOMAXPROCS
		} {
			b.Run(q.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := relengine.Execute(nil, st, planner.Fixed(plan), relengine.Options{ExecConfig: core.ExecConfig{Parallelism: mode.par}}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScanOverlap measures the storage layer's scan concurrency
// directly: P workers sweep every page of the SD relation through
// File.View, checksumming page bytes in the callback. The pool is kept
// far smaller than the relation so most views miss and fetch from the
// backing store. Under the pre-PR-4 single-mutex pool, P > 1 was no
// faster than P = 1 (callbacks ran under the file lock); with the
// sharded, pinning pool the decode work and the misses overlap, so
// P = GOMAXPROCS beats P = 1 on multi-core machines (a 1-CPU container
// shows no wall-clock delta, as with BenchmarkParallelQuery). The
// checksum is partition-order independent, so every worker count must
// agree — verified once before the sub-benchmarks run.
func BenchmarkScanOverlap(b *testing.B) {
	st := benchStore(b, "auction", 3, 64)
	f := st.SD().File()
	want, err := bench.ScanOverlap(f, 1)
	if err != nil {
		b.Fatal(err)
	}
	if got, err := bench.ScanOverlap(f, runtime.GOMAXPROCS(0)); err != nil || got != want {
		b.Fatalf("parallel checksum = %d (err %v), sequential = %d", got, err, want)
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("P%d", workers), func(b *testing.B) {
			b.SetBytes(int64(f.NumPages()) * pager.PageSize)
			for i := 0; i < b.N; i++ {
				got, err := bench.ScanOverlap(f, workers)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("checksum = %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkTwigOverlap measures the twig engine's internal parallelism:
// the partitioned holistic sweep plus per-stream prefetchers against the
// sequential sweep, on the tree query QA3 whose plan carries several
// concurrently-consumable streams. Each iteration is cold-cache with a
// small pool, so most batch fetches miss and P > 1 overlaps those
// misses with sweep work; on multi-core machines P = GOMAXPROCS beats
// P = 1 while a 1-CPU container shows no wall-clock delta (as with
// BenchmarkScanOverlap). The parallel sweep's result set is verified
// byte-identical to the sequential one before the sub-benchmarks run.
func BenchmarkTwigOverlap(b *testing.B) {
	st := benchStore(b, "auction", 3, 64)
	plan := benchPlan(b, st, bench.Fig10Queries["QA3"], "pushup", true)
	want, err := bench.TwigOverlap(st, plan, 1)
	if err != nil {
		b.Fatal(err)
	}
	if len(want) == 0 {
		b.Fatal("QA3 returned nothing; the benchmark would sweep no solutions")
	}
	if got, err := bench.TwigOverlap(st, plan, runtime.GOMAXPROCS(0)); err != nil || !enginetest.StartsEqual(got, want) {
		b.Fatalf("parallel twig sweep: %d results (err %v), sequential %d", len(got), err, len(want))
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("P%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := bench.TwigOverlap(st, plan, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(want) {
					b.Fatalf("%d results, want %d", len(got), len(want))
				}
			}
		})
	}
}

// BenchmarkAblationDJoin compares the structural merge join against the
// nested-loop D-join (the paper's premise that join implementation
// matters, §1).
func BenchmarkAblationDJoin(b *testing.B) {
	st := benchStore(b, "protein", 1, 0)
	plan := benchPlan(b, st, bench.Fig10Queries["QP3"], "pushup", false)
	for _, mode := range []struct {
		name string
		opts relengine.Options
	}{
		{"merge", relengine.Options{Join: relengine.MergeJoin}},
		{"nestedloop", relengine.Options{Join: relengine.NestedLoopJoin}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := st.DropCaches(); err != nil {
					b.Fatal(err)
				}
				if _, err := relengine.Execute(nil, st, planner.Fixed(plan), mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClustering compares answering a suffix path query via
// the clustered P-label selection (SP) against reading the same nodes
// through the tag-clustered SD relation — the paper's §4.2 disk-access
// argument.
func BenchmarkAblationClustering(b *testing.B) {
	st := benchStore(b, "protein", 1, 0)
	spPlan := benchPlan(b, st, bench.Fig10Queries["QP1"], "pushup", false)
	sdPlan := benchPlan(b, st, bench.Fig10Queries["QP1"], "dlabel", false)
	b.Run("plabel-clustered", func(b *testing.B) { runRelational(b, st, spPlan) })
	b.Run("tag-clustered", func(b *testing.B) { runRelational(b, st, sdPlan) })
}

// BenchmarkAblationBufferPool sweeps the buffer pool size for a fixed
// query, exposing the disk-access sensitivity of the baseline.
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, pool := range []int{32, 128, 512} {
		st := benchStore(b, "auction", 1, pool)
		plan := benchPlan(b, st, bench.Fig10Queries["QA2"], "dlabel", false)
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			runRelational(b, st, plan)
		})
	}
}

// BenchmarkAblationSelectionKind compares range (Split) against equality
// (Push-up) P-label selections for the same deep branch fragment
// (§5.2.2's Split-vs-Push-up argument).
func BenchmarkAblationSelectionKind(b *testing.B) {
	st := benchStore(b, "shakespeare", 1, 0)
	splitPlan := benchPlan(b, st, bench.Fig10Queries["QS3"], "split", false)
	pushPlan := benchPlan(b, st, bench.Fig10Queries["QS3"], "pushup", false)
	b.Run("range-split", func(b *testing.B) { runRelational(b, st, splitPlan) })
	b.Run("equality-pushup", func(b *testing.B) { runRelational(b, st, pushPlan) })
}
