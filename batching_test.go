// Batching contract tests (PR 10): QueryOptions.BatchSize and
// PrefetchDepth must never change results — only buffer sizes and
// pipeline depth — at every parallelism on both engines; traced queries
// must account their decode work; and completed queries must feed the
// store's batch-size histogram.
package blas

import (
	"reflect"
	"strings"
	"testing"
)

func TestBatchKnobsValidation(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, opts := range []QueryOptions{
		{BatchSize: -1},
		{PrefetchDepth: -5},
	} {
		if _, err := st.Query("/db/entry", opts); err == nil {
			t.Errorf("options %+v accepted, want validation error", opts)
		} else if !strings.Contains(err.Error(), "must be >= 0") {
			t.Errorf("options %+v: error %q does not explain the bound", opts, err)
		}
	}
}

// TestBatchKnobsNeverChangeResults pins the acceptance contract: pinned
// batch sizes and prefetch depths — including values outside the
// clamping bounds — return byte-identical matches to the adaptive
// default on both engines at P in {1, 4}.
func TestBatchKnobsNeverChangeResults(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	queries := []string{
		"/db/entry/protein/name",
		"//superfamily",
		`//entry[reference//year="1995"]//name`,
	}
	knobs := []QueryOptions{
		{BatchSize: 1},      // clamps up to MinBatchSize
		{BatchSize: 64},     // smallest legal
		{BatchSize: 100000}, // clamps down to MaxBatchSize
		{PrefetchDepth: 1},  // no pipelining
		{PrefetchDepth: 99}, // clamps down to the depth ceiling
		{BatchSize: 64, PrefetchDepth: 8},
	}
	for _, engine := range []Engine{EngineRelational, EngineTwig} {
		for _, q := range queries {
			base, err := st.Query(q, QueryOptions{Engine: engine, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s %s: %v", engine, q, err)
			}
			if len(base.Matches) == 0 {
				t.Fatalf("%s %s: empty baseline makes the comparison vacuous", engine, q)
			}
			for _, par := range []int{1, 4} {
				for _, k := range knobs {
					opts := k
					opts.Engine = engine
					opts.Parallelism = par
					res, err := st.Query(q, opts)
					if err != nil {
						t.Fatalf("%s P=%d %s %+v: %v", engine, par, q, k, err)
					}
					if !reflect.DeepEqual(res.Matches, base.Matches) {
						t.Errorf("%s P=%d %s: batch knobs %+v changed the result (%d matches != %d)",
							engine, par, q, k, len(res.Matches), len(base.Matches))
					}
				}
			}
		}
	}
}

// TestTraceDecodeAccounting: on a columnar store every traced query that
// returns matches decoded records through the batch layer, and the
// decode record count is consistent with the visited-elements stat.
func TestTraceDecodeAccounting(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, engine := range []Engine{EngineRelational, EngineTwig} {
		for _, par := range []int{1, 4} {
			res, err := st.Query("/db/entry/protein/name", QueryOptions{Engine: engine, Parallelism: par, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			ph := res.Stats.Phases
			if ph == nil {
				t.Fatal("Trace requested but Phases is nil")
			}
			if ph.DecodedRecords == 0 {
				t.Errorf("%s P=%d: matches returned but DecodedRecords = 0", engine, par)
			}
			if ph.DecodedRecords > res.Stats.VisitedElements {
				t.Errorf("%s P=%d: decoded %d > visited %d: decode accounting bled",
					engine, par, ph.DecodedRecords, res.Stats.VisitedElements)
			}
		}
	}
}

// TestStoreMetricsBatchSizes: completed queries merge their batch-size
// histograms into StoreMetrics under the documented class labels.
func TestStoreMetricsBatchSizes(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if m := st.Metrics(); len(m.BatchSizes) != 0 {
		t.Fatalf("quiescent store reports batch sizes: %v", m.BatchSizes)
	}
	for _, engine := range []Engine{EngineRelational, EngineTwig} {
		if _, err := st.Query("//superfamily", QueryOptions{Engine: engine}); err != nil {
			t.Fatal(err)
		}
	}
	m := st.Metrics()
	if len(m.BatchSizes) == 0 {
		t.Fatal("queries completed but StoreMetrics.BatchSizes is empty")
	}
	var total uint64
	for label, count := range m.BatchSizes {
		if label == "unknown" {
			t.Errorf("histogram contains the unknown class: %v", m.BatchSizes)
		}
		if !strings.Contains(label, "-") && !strings.HasSuffix(label, "+") {
			t.Errorf("batch-size label %q is not a range", label)
		}
		total += count
	}
	if total == 0 {
		t.Errorf("batch-size histogram sums to zero: %v", m.BatchSizes)
	}
}
