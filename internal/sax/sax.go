// Package sax delivers a stream of SAX-style events from an XML document.
//
// The BLAS index generator (paper Fig. 6) consumes SAX events rather than a
// materialized tree, so arbitrarily large documents can be shredded in
// bounded memory. The package wraps the standard library decoder and
// normalizes the stream for BLAS's data model:
//
//   - comments, processing instructions and directives are dropped;
//   - whitespace-only character data between elements is dropped;
//   - attributes are delivered with their owning start-element event (the
//     shredder models them as child nodes tagged "@name", matching the
//     paper's node counts, which include attribute nodes).
package sax

import (
	"fmt"
	"io"
	"strings"

	"encoding/xml"
)

// Attr is an attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Handler receives parse events. Returning a non-nil error aborts the
// parse and propagates the error.
type Handler interface {
	// StartElement is called for each start tag. attrs is only valid for
	// the duration of the call.
	StartElement(name string, attrs []Attr) error
	// Text is called for each non-whitespace character data block, with
	// surrounding whitespace trimmed.
	Text(text string) error
	// EndElement is called for each end tag.
	EndElement(name string) error
}

// Parse reads an XML document from r and delivers events to h.
// The document must be well formed and have a single root element.
func Parse(r io.Reader, h Handler) error {
	dec := xml.NewDecoder(r)
	depth := 0
	seenRoot := false
	var attrs []Attr
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return fmt.Errorf("sax: unexpected EOF at depth %d", depth)
			}
			if !seenRoot {
				return fmt.Errorf("sax: document has no root element")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("sax: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 && seenRoot {
				return fmt.Errorf("sax: multiple root elements (second is <%s>)", t.Name.Local)
			}
			seenRoot = true
			depth++
			attrs = attrs[:0]
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				attrs = append(attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if err := h.StartElement(t.Name.Local, attrs); err != nil {
				return err
			}
		case xml.EndElement:
			depth--
			if err := h.EndElement(t.Name.Local); err != nil {
				return err
			}
		case xml.CharData:
			if depth == 0 {
				continue // whitespace outside the root
			}
			s := strings.TrimSpace(string(t))
			if s == "" {
				continue
			}
			if err := h.Text(s); err != nil {
				return err
			}
		}
	}
}

// FuncHandler adapts three functions to the Handler interface. Nil
// functions ignore their events.
type FuncHandler struct {
	Start func(name string, attrs []Attr) error
	Chars func(text string) error
	End   func(name string) error
}

// StartElement implements Handler.
func (f FuncHandler) StartElement(name string, attrs []Attr) error {
	if f.Start == nil {
		return nil
	}
	return f.Start(name, attrs)
}

// Text implements Handler.
func (f FuncHandler) Text(text string) error {
	if f.Chars == nil {
		return nil
	}
	return f.Chars(text)
}

// EndElement implements Handler.
func (f FuncHandler) EndElement(name string) error {
	if f.End == nil {
		return nil
	}
	return f.End(name)
}
