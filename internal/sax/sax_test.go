package sax

import (
	"strings"
	"testing"
)

type event struct {
	kind  string // "start", "text", "end"
	value string
	attrs []Attr
}

func collect(t *testing.T, doc string) []event {
	t.Helper()
	events, err := tryCollect(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return events
}

func tryCollect(doc string) ([]event, error) {
	var events []event
	h := FuncHandler{
		Start: func(name string, attrs []Attr) error {
			events = append(events, event{"start", name, append([]Attr(nil), attrs...)})
			return nil
		},
		Chars: func(text string) error {
			events = append(events, event{kind: "text", value: text})
			return nil
		},
		End: func(name string) error {
			events = append(events, event{kind: "end", value: name})
			return nil
		},
	}
	if err := Parse(strings.NewReader(doc), h); err != nil {
		return nil, err
	}
	return events, nil
}

func TestSimpleDocument(t *testing.T) {
	events := collect(t, `<a><b>hi</b><c/></a>`)
	want := []event{
		{kind: "start", value: "a"},
		{kind: "start", value: "b"},
		{kind: "text", value: "hi"},
		{kind: "end", value: "b"},
		{kind: "start", value: "c"},
		{kind: "end", value: "c"},
		{kind: "end", value: "a"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(events), len(want), events)
	}
	for i := range want {
		if events[i].kind != want[i].kind || events[i].value != want[i].value {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestAttributesDelivered(t *testing.T) {
	events := collect(t, `<a id="1" name="x"/>`)
	if events[0].kind != "start" || len(events[0].attrs) != 2 {
		t.Fatalf("start event = %+v", events[0])
	}
	if events[0].attrs[0] != (Attr{"id", "1"}) || events[0].attrs[1] != (Attr{"name", "x"}) {
		t.Fatalf("attrs = %+v", events[0].attrs)
	}
}

func TestWhitespaceOnlyTextDropped(t *testing.T) {
	events := collect(t, "<a>\n  <b>x</b>\n</a>")
	for _, e := range events {
		if e.kind == "text" && strings.TrimSpace(e.value) == "" {
			t.Fatalf("whitespace text delivered: %q", e.value)
		}
	}
}

func TestTextIsTrimmed(t *testing.T) {
	events := collect(t, "<a>  padded  </a>")
	if events[1].value != "padded" {
		t.Fatalf("text = %q", events[1].value)
	}
}

func TestCommentsAndPIsDropped(t *testing.T) {
	events := collect(t, `<?xml version="1.0"?><!-- hello --><a><!-- inner --><?pi data?></a>`)
	if len(events) != 2 {
		t.Fatalf("got %d events: %v", len(events), events)
	}
}

func TestEntitiesDecoded(t *testing.T) {
	events := collect(t, `<a>&lt;tag&gt; &amp; more</a>`)
	if events[1].value != "<tag> & more" {
		t.Fatalf("text = %q", events[1].value)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		``,                  // empty document
		`<a>`,               // unclosed
		`<a></b>`,           // mismatched
		`<a/><b/>`,          // two roots
		`text only`,         // no root element
		`<a><b></a></b>`,    // interleaved
		`<a attr=oops></a>`, // bad attribute syntax
	}
	for _, doc := range cases {
		if _, err := tryCollect(doc); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", doc)
		}
	}
}

func TestHandlerErrorAborts(t *testing.T) {
	calls := 0
	h := FuncHandler{
		Start: func(name string, attrs []Attr) error {
			calls++
			if name == "stop" {
				return errStop
			}
			return nil
		},
	}
	err := Parse(strings.NewReader(`<a><stop/><never/></a>`), h)
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestNilFuncHandlerFields(t *testing.T) {
	if err := Parse(strings.NewReader(`<a>hi</a>`), FuncHandler{}); err != nil {
		t.Fatal(err)
	}
}

func TestNamespacePrefixStripped(t *testing.T) {
	events := collect(t, `<ns:a xmlns:ns="http://example.com"><ns:b/></ns:a>`)
	if events[0].value != "a" || events[1].value != "b" {
		t.Fatalf("events = %v", events)
	}
	if len(events[0].attrs) != 0 {
		t.Fatalf("xmlns attribute leaked: %v", events[0].attrs)
	}
}
