// Package keyenc encodes composite keys into byte strings whose bytewise
// lexicographic order equals the order of the original tuples.
//
// All BLAS indexes (the clustered {plabel,start} and {tag,start} keys and
// the secondary start and data indexes) are B+ trees keyed by byte strings;
// this package is the single place where tuple order is defined.
//
// Encoding rules:
//   - unsigned integers are big-endian fixed width (4, 8 or 16 bytes);
//   - strings are escaped so that an embedded 0x00 never terminates the
//     field early: 0x00 -> 0x00 0xFF, and the field ends with 0x00 0x00.
//     This preserves order because 0x00 0x00 (terminator) sorts before
//     0x00 0xFF (escaped zero byte) which sorts before any literal
//     byte > 0x00.
package keyenc

import (
	"bytes"
	"fmt"

	"repro/internal/uint128"
)

// Encoder accumulates an order-preserving composite key.
type Encoder struct {
	buf []byte
}

// New returns an Encoder, optionally reusing buf's storage.
func New(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded key. The slice is owned by the encoder and is
// invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset discards any accumulated key bytes.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 appends a 4-byte big-endian field.
func (e *Encoder) PutUint32(v uint32) *Encoder {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	return e
}

// PutUint64 appends an 8-byte big-endian field.
func (e *Encoder) PutUint64(v uint64) *Encoder {
	for i := 56; i >= 0; i -= 8 {
		e.buf = append(e.buf, byte(v>>uint(i)))
	}
	return e
}

// PutUint128 appends a 16-byte big-endian field.
func (e *Encoder) PutUint128(v uint128.Uint128) *Encoder {
	e.buf = v.AppendBytes(e.buf)
	return e
}

// PutString appends an escaped, terminated string field.
func (e *Encoder) PutString(s string) *Encoder {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			e.buf = append(e.buf, 0x00, 0xFF)
		} else {
			e.buf = append(e.buf, s[i])
		}
	}
	e.buf = append(e.buf, 0x00, 0x00)
	return e
}

// Uint32 is shorthand for a single-field uint32 key.
func Uint32(v uint32) []byte { return New(nil).PutUint32(v).Bytes() }

// Uint64 is shorthand for a single-field uint64 key.
func Uint64(v uint64) []byte { return New(nil).PutUint64(v).Bytes() }

// Uint128 is shorthand for a single-field 128-bit key.
func Uint128(v uint128.Uint128) []byte { return New(nil).PutUint128(v).Bytes() }

// String is shorthand for a single-field string key.
func String(s string) []byte { return New(nil).PutString(s).Bytes() }

// Decoder reads fields back out of an encoded key. Fields must be read in
// the order they were written.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder over key.
func NewDecoder(key []byte) *Decoder { return &Decoder{buf: key} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 reads a 4-byte big-endian field.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, fmt.Errorf("keyenc: short key: need 4 bytes, have %d", d.Remaining())
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// Uint64 reads an 8-byte big-endian field.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, fmt.Errorf("keyenc: short key: need 8 bytes, have %d", d.Remaining())
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(d.buf[d.off+i])
	}
	d.off += 8
	return v, nil
}

// Uint128 reads a 16-byte big-endian field.
func (d *Decoder) Uint128() (uint128.Uint128, error) {
	if d.Remaining() < 16 {
		return uint128.Zero, fmt.Errorf("keyenc: short key: need 16 bytes, have %d", d.Remaining())
	}
	v := uint128.FromBytes(d.buf[d.off:])
	d.off += 16
	return v, nil
}

// String reads an escaped, terminated string field.
func (d *Decoder) String() (string, error) {
	var out bytes.Buffer
	for {
		if d.Remaining() < 1 {
			return "", fmt.Errorf("keyenc: unterminated string field")
		}
		c := d.buf[d.off]
		d.off++
		if c != 0x00 {
			out.WriteByte(c)
			continue
		}
		if d.Remaining() < 1 {
			return "", fmt.Errorf("keyenc: truncated escape in string field")
		}
		esc := d.buf[d.off]
		d.off++
		switch esc {
		case 0x00:
			return out.String(), nil
		case 0xFF:
			out.WriteByte(0x00)
		default:
			return "", fmt.Errorf("keyenc: invalid escape byte 0x%02x", esc)
		}
	}
}

// Compare compares two encoded keys bytewise.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// PrefixSuccessor returns the smallest key that is greater than every key
// with prefix p, or nil if no such key exists (p is all 0xFF). The result
// is a fresh slice. It is used to build exclusive upper bounds for prefix
// range scans.
func PrefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}
