package keyenc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/uint128"
)

func TestRoundTripAllFieldTypes(t *testing.T) {
	u := uint128.Uint128{Hi: 0xfeed, Lo: 0xbeef}
	key := New(nil).
		PutUint32(7).
		PutUint64(1 << 40).
		PutUint128(u).
		PutString("hello\x00world").
		PutString("").
		Bytes()

	d := NewDecoder(key)
	if v, err := d.Uint32(); err != nil || v != 7 {
		t.Fatalf("Uint32 = %v, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if v, err := d.Uint128(); err != nil || v != u {
		t.Fatalf("Uint128 = %v, %v", v, err)
	}
	if v, err := d.String(); err != nil || v != "hello\x00world" {
		t.Fatalf("String = %q, %v", v, err)
	}
	if v, err := d.String(); err != nil || v != "" {
		t.Fatalf("empty String = %q, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); err == nil {
		t.Fatal("expected short-key error for Uint32")
	}
	d = NewDecoder([]byte{1})
	if _, err := d.Uint64(); err == nil {
		t.Fatal("expected short-key error for Uint64")
	}
	d = NewDecoder([]byte{1})
	if _, err := d.Uint128(); err == nil {
		t.Fatal("expected short-key error for Uint128")
	}
	d = NewDecoder([]byte{'a', 'b'})
	if _, err := d.String(); err == nil {
		t.Fatal("expected unterminated string error")
	}
	d = NewDecoder([]byte{0x00})
	if _, err := d.String(); err == nil {
		t.Fatal("expected truncated escape error")
	}
	d = NewDecoder([]byte{0x00, 0x33})
	if _, err := d.String(); err == nil {
		t.Fatal("expected invalid escape error")
	}
}

func TestUint32Order(t *testing.T) {
	f := func(a, b uint32) bool {
		ka, kb := Uint32(a), Uint32(b)
		got := Compare(ka, kb)
		switch {
		case a < b:
			return got < 0
		case a > b:
			return got > 0
		}
		return got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64Order(t *testing.T) {
	f := func(a, b uint64) bool {
		got := Compare(Uint64(a), Uint64(b))
		switch {
		case a < b:
			return got < 0
		case a > b:
			return got > 0
		}
		return got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringOrder(t *testing.T) {
	f := func(a, b string) bool {
		got := Compare(String(a), String(b))
		want := strings.Compare(a, b)
		return (got < 0) == (want < 0) && (got > 0) == (want > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Composite (string, uint32) tuples must sort like the tuple order:
// first by string, then by number. This is the property that lets the data
// index break ties by start position.
func TestCompositeTupleOrder(t *testing.T) {
	type tup struct {
		S string
		N uint32
	}
	f := func(a, b tup) bool {
		ka := New(nil).PutString(a.S).PutUint32(a.N).Bytes()
		kb := New(nil).PutString(b.S).PutUint32(b.N).Bytes()
		got := Compare(ka, kb)
		want := strings.Compare(a.S, b.S)
		if want == 0 {
			switch {
			case a.N < b.N:
				want = -1
			case a.N > b.N:
				want = 1
			}
		}
		return (got < 0) == (want < 0) && (got > 0) == (want > 0) && (got == 0) == (want == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		key := String(s)
		got, err := NewDecoder(key).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in, want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
		{[]byte{0x00}, []byte{0x01}},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestPrefixSuccessorBoundsPrefixRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := r.Intn(6) + 1
		p := make([]byte, n)
		r.Read(p)
		succ := PrefixSuccessor(p)
		// Any key with prefix p compares < succ; p itself >= p.
		ext := append(append([]byte(nil), p...), byte(r.Intn(256)))
		if succ != nil {
			if Compare(ext, succ) >= 0 {
				t.Fatalf("extension %x not below successor %x", ext, succ)
			}
			if Compare(p, succ) >= 0 {
				t.Fatalf("prefix %x not below successor %x", p, succ)
			}
		}
	}
}

func TestEncoderReset(t *testing.T) {
	e := New(nil)
	e.PutUint32(9)
	e.Reset()
	e.PutUint32(3)
	if !bytes.Equal(e.Bytes(), Uint32(3)) {
		t.Fatal("reset did not clear buffer")
	}
}

func TestUint128Shorthand(t *testing.T) {
	v := uint128.Uint128{Hi: 5, Lo: 6}
	if !bytes.Equal(Uint128(v), New(nil).PutUint128(v).Bytes()) {
		t.Fatal("Uint128 shorthand mismatch")
	}
}
