package twig

import (
	"sync"

	"repro/internal/relstore"
)

// sweepPart is one document-order partition of the sweep: the root
// stream records it owns plus the start interval [lo, hi) — hi == 0
// means unbounded — its non-root streams are restricted to. streamRoot
// marks the sequential whole-document partition, whose root streams
// like every other node instead of replaying a materialized slice.
type sweepPart struct {
	rootRecs   []relstore.Record
	lo, hi     uint32
	streamRoot bool
}

// partitionRoot cuts the materialized (filtered) root stream into at
// most max document-order partitions, balanced by root-record count.
//
// Cut points are chosen only at the starts of top-level root elements —
// elements not contained in any earlier root element. That placement is
// the boundary-straddle guarantee: every element any sweep can push is
// contained in some root-stream element (the push condition demands an
// unbroken stack chain up to the root), every root element lies wholly
// inside one top-level interval, and no top-level interval spans a cut.
// So no stack item can straddle a cut, each partition's sweep sees
// exactly the stack states the sequential sweep would have at the same
// elements, and concatenating per-partition solutions in partition
// order reproduces the sequential solution lists exactly. A candidate
// cut that would split a nested run of root elements is simply deferred
// to the next top-level boundary.
func partitionRoot(recs []relstore.Record, max int) []sweepPart {
	if max <= 1 || len(recs) <= 1 {
		return []sweepPart{{rootRecs: recs}}
	}
	// Heads of top-level root elements: recs is start-ordered and
	// intervals nest, so a record starting after every earlier end is
	// contained in no earlier record.
	var heads []int
	var maxEnd uint32
	for i, r := range recs {
		if i == 0 || r.Start > maxEnd {
			heads = append(heads, i)
		}
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	nparts := max
	if nparts > len(heads) {
		nparts = len(heads)
	}
	if nparts <= 1 {
		return []sweepPart{{rootRecs: recs}}
	}
	target := (len(recs) + nparts - 1) / nparts
	parts := make([]sweepPart, 0, nparts)
	begin := 0 // record index where the current partition begins
	lo := uint32(0)
	for h := 1; h < len(heads) && len(parts) < nparts-1; h++ {
		if heads[h]-begin < target {
			continue
		}
		cut := recs[heads[h]].Start
		parts = append(parts, sweepPart{rootRecs: recs[begin:heads[h]], lo: lo, hi: cut})
		begin, lo = heads[h], cut
	}
	return append(parts, sweepPart{rootRecs: recs[begin:], lo: lo, hi: 0})
}

// sweepAll partitions the sweep across workers and returns the per-leaf
// path-solution lists in sequential sweep order. workers == 1 runs
// entirely on the calling goroutine and streams every node — the root
// stream is materialized only when partition cuts must be derived from
// it.
func (e *engine) sweepAll(ctx *relstore.ExecContext, workers int) ([][][]relstore.Record, error) {
	if workers <= 1 {
		return e.sweepPartition(ctx, sweepPart{streamRoot: true}, false)
	}

	rootBI, err := e.root.stream.Open(ctx, 0, 0)
	if err != nil {
		return nil, err
	}
	rootRecs, err := relstore.CollectAdaptive(ctx, rootBI)
	if err != nil {
		return nil, err
	}
	rootRecs = e.root.filter.Apply(rootRecs)

	parts := partitionRoot(rootRecs, workers)
	tr := ctx.Trace()
	for _, part := range parts {
		tr.AddPartition(uint64(len(part.rootRecs)))
	}
	if len(parts) == 1 {
		return e.sweepPartition(ctx, parts[0], true)
	}

	// partitionRoot caps len(parts) at workers, so one goroutine per
	// partition is already the worker bound.
	results := make([][][][]relstore.Record, len(parts))
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for pi := range parts {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			sols, err := e.sweepPartition(ctx, parts[pi], true)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			results[pi] = sols
		}(pi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Stitch per-leaf solutions in partition (document) order.
	leafSols := make([][][]relstore.Record, len(e.leaves))
	for _, r := range results {
		for li := range leafSols {
			leafSols[li] = append(leafSols[li], r[li]...)
		}
	}
	return leafSols, nil
}

// sweepPartition runs one partition's stack-chain sweep. The root
// stream replays from memory; every other stream opens restricted to
// the partition's start interval, optionally behind a prefetcher.
func (e *engine) sweepPartition(ctx *relstore.ExecContext, part sweepPart, prefetch bool) ([][][]relstore.Record, error) {
	st := &sweepState{
		eng:     e,
		streams: make([]*batchStream, len(e.nodes)),
		stacks:  make([][]stackItem, len(e.nodes)),
		sols:    make([][][]relstore.Record, len(e.leaves)),
		scratch: make([]relstore.Record, e.maxDepth),
	}
	defer st.close()
	for i, n := range e.nodes {
		if n == e.root && !part.streamRoot {
			st.streams[i] = newBatchStream(&memSource{recs: part.rootRecs})
			continue
		}
		bi, err := n.stream.Open(ctx, part.lo, part.hi)
		if err != nil {
			return nil, err
		}
		if prefetch {
			st.streams[i] = newBatchStream(startPrefetch(ctx, bi, n.filter))
		} else {
			st.streams[i] = newBatchStream(newSyncSource(ctx, bi, n.filter))
		}
	}
	if err := st.sweep(); err != nil {
		return nil, err
	}
	return st.sols, nil
}

// sweepState is the mutable state of one partition's sweep.
type sweepState struct {
	eng     *engine
	streams []*batchStream
	stacks  [][]stackItem
	sols    [][][]relstore.Record // per leaf, in emission order
	scratch []relstore.Record     // current path during solution collection
}

func (st *sweepState) close() {
	for _, s := range st.streams {
		if s != nil {
			s.close()
		}
	}
}

// sweep runs the stack machine over all streams in start order.
//
//blas:hotpath
func (st *sweepState) sweep() error {
	nodes := st.eng.nodes
	for {
		// Pick the non-exhausted stream with the smallest head start.
		q := -1
		var qStart uint32
		for i, s := range st.streams {
			if s.err != nil {
				return s.err
			}
			if s.eof {
				continue
			}
			if q < 0 || s.head().Start < qStart {
				q, qStart = i, s.head().Start
			}
		}
		if q < 0 {
			return nil
		}
		el := st.streams[q].head()

		// Global clean: pop every stack item whose interval ended before
		// el. Processing in ascending start order makes this safe — a
		// popped item can contain no future element.
		for i := range nodes {
			stk := st.stacks[i]
			for len(stk) > 0 && stk[len(stk)-1].rec.End < el.Start {
				stk = stk[:len(stk)-1]
			}
			st.stacks[i] = stk
		}

		// Push only when the chain above is unbroken: a parent element
		// arriving later cannot contain el.
		n := nodes[q]
		if n.parent == nil || len(st.stacks[n.parent.id]) > 0 {
			pi := -1
			if n.parent != nil {
				pi = len(st.stacks[n.parent.id]) - 1
			}
			st.stacks[q] = append(st.stacks[q], stackItem{rec: el, parentIdx: pi})
			if len(n.children) == 0 {
				st.collectSolutions(n)
				st.stacks[q] = st.stacks[q][:len(st.stacks[q])-1]
			}
		}
		st.streams[q].advance()
	}
}

// collectSolutions enumerates the root-to-leaf path solutions ending at
// the element just pushed onto leaf q, applying each edge's level-gap
// constraint.
//
//blas:hotpath
func (st *sweepState) collectSolutions(q *tnode) {
	depth := len(q.path)
	stack := st.stacks[q.id]
	item := stack[len(stack)-1]
	if depth == 1 {
		st.sols[q.leafIdx] = append(st.sols[q.leafIdx], []relstore.Record{item.rec})
		return
	}
	cur := st.scratch[:depth]
	cur[depth-1] = item.rec

	var up func(level int, limit int)
	up = func(level, limit int) {
		if level < 0 {
			sol := make([]relstore.Record, depth)
			copy(sol, cur)
			st.sols[q.leafIdx] = append(st.sols[q.leafIdx], sol)
			return
		}
		node := q.path[level]
		childRec := cur[level+1]
		edge := q.path[level+1].edge
		nstack := st.stacks[node.id]
		for i := 0; i <= limit && i < len(nstack); i++ {
			it := nstack[i]
			// Items on the stack contain the child element by
			// construction; the edge's level constraint narrows the pick.
			if !edge.LevelOK(it.rec.Level, childRec.Level) {
				continue
			}
			cur[level] = it.rec
			up(level-1, it.parentIdx)
		}
	}
	up(depth-2, item.parentIdx)
}
