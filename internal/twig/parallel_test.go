package twig

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/planner"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// execStarts runs a plan at the given parallelism and returns the result
// starts plus the visited-elements count.
func execStarts(t *testing.T, st *core.Store, plan *translate.Plan, parallelism int) ([]uint32, uint64) {
	t.Helper()
	ctx := relstore.NewExecContext()
	res, err := Execute(ctx, st, planner.Fixed(plan), core.ExecConfig{Parallelism: parallelism})
	if err != nil {
		t.Fatalf("Execute(P=%d): %v", parallelism, err)
	}
	return res.Starts(), ctx.Visited()
}

// TestTwigParallelMatchesSequential is the partitioned-sweep equivalence
// guarantee on randomized documents: for every translator and a spread
// of worker counts, the parallel sweep must return byte-identical starts
// AND an identical visited-elements statistic — each stream record is
// fetched by exactly one partition.
func TestTwigParallelMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(90125))
	p := enginetest.DefaultDocParams()
	for docIdx := 0; docIdx < 6; docIdx++ {
		tree := enginetest.RandomDoc(rnd, p)
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for qIdx := 0; qIdx < 15; qIdx++ {
			query := enginetest.RandomQuery(rnd, p)
			want, err := enginetest.EvalStarts(tree, query)
			if err != nil {
				t.Fatal(err)
			}
			for _, trName := range []string{"dlabel", "split", "pushup", "unfold"} {
				tr, _ := translate.ByName(trName)
				plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(query))
				if err != nil {
					t.Fatalf("%s/%s: %v", query, trName, err)
				}
				seq, seqVisited := execStarts(t, st, plan, 1)
				if !enginetest.StartsEqual(seq, want) {
					t.Fatalf("sequential %s [%s] already wrong: got %s want %s", query, trName,
						enginetest.FormatStarts(seq), enginetest.FormatStarts(want))
				}
				for _, par := range []int{2, 3, 8} {
					got, visited := execStarts(t, st, plan, par)
					if !enginetest.StartsEqual(got, seq) {
						t.Errorf("doc %d %s [%s] P=%d: got %s want %s", docIdx, query, trName, par,
							enginetest.FormatStarts(got), enginetest.FormatStarts(seq))
					}
					if visited != seqVisited {
						t.Errorf("doc %d %s [%s] P=%d: visited %d != sequential %d (partition overlap or gap)",
							docIdx, query, trName, par, visited, seqVisited)
					}
				}
			}
		}
		st.Close()
	}
}

// TestTwigPartitionBoundaryStraddle targets the cut-placement rule
// directly: documents whose root-stream elements nest (recursive tags)
// would produce wrong stacks if a cut ever split a nested run, and
// branch leaves that straddle naive equal-count cuts must still join
// with root items from the same partition.
func TestTwigPartitionBoundaryStraddle(t *testing.T) {
	var b strings.Builder
	// Many top-level <a> runs; every third run nests <a> recursively so
	// top-level boundaries differ from element counts, and <b> leaves sit
	// at varying depths near the run edges.
	b.WriteString("<r>")
	for i := 0; i < 40; i++ {
		switch i % 3 {
		case 0:
			b.WriteString("<a><b>x</b></a>")
		case 1:
			b.WriteString("<a><a><a><b>y</b></a><b>z</b></a></a>")
		default:
			b.WriteString("<a><c/><a><b>w</b><c/></a></a>")
		}
	}
	b.WriteString("</r>")
	st, tree, err := enginetest.MustBuild(b.String())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, query := range []string{
		"//a//b",
		"//a/b",
		"//a[c]//b",
		"//a/a[b]/c",
		"//a[a/b]/b",
		"/r/a//b",
	} {
		want, err := enginetest.EvalStarts(tree, query)
		if err != nil {
			t.Fatal(err)
		}
		for _, trName := range []string{"dlabel", "split", "pushup"} {
			tr, _ := translate.ByName(trName)
			plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(query))
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 2, 5, 16, 64} {
				got, _ := execStarts(t, st, plan, par)
				if !enginetest.StartsEqual(got, want) {
					t.Errorf("%s [%s] P=%d: got %s want %s", query, trName, par,
						enginetest.FormatStarts(got), enginetest.FormatStarts(want))
				}
			}
		}
	}
}

// TestTwigPartitionSingleTopLevelRoot pins the degenerate case: when the
// query root binds only the document root, there is exactly one
// top-level interval and the sweep must fall back to one partition
// rather than splitting inside it.
func TestTwigPartitionSingleTopLevelRoot(t *testing.T) {
	doc := xmltree.New("db")
	for i := 0; i < 30; i++ {
		e := doc.AppendNew("entry")
		e.AppendText("name", "n")
	}
	st, err := core.BuildFromTree(doc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr, _ := translate.ByName("dlabel")
	plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse("/db[entry]/entry/name"))
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := execStarts(t, st, plan, 1)
	if len(seq) == 0 {
		t.Fatal("query returned nothing; the degenerate case would be vacuous")
	}
	par, _ := execStarts(t, st, plan, 8)
	if !enginetest.StartsEqual(par, seq) {
		t.Fatalf("P=8 on single-top-level root: got %s want %s",
			enginetest.FormatStarts(par), enginetest.FormatStarts(seq))
	}
}

// TestTwigRejectsNegativeParallelism: Execute must reject misuse the
// same way blas.Query does, rather than silently ignoring it.
func TestTwigRejectsNegativeParallelism(t *testing.T) {
	st, _, err := enginetest.MustBuild("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr, _ := translate.ByName("split")
	plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse("//b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(nil, st, planner.Fixed(plan), core.ExecConfig{Parallelism: -1}); err == nil {
		t.Fatal("Execute accepted Parallelism = -1")
	}
}

// TestTwigConcurrentExecutes races many parallel Execute calls over one
// store (meant for -race): per-query contexts must not interfere, and
// every call must return the sequential answer.
func TestTwigConcurrentExecutes(t *testing.T) {
	rnd := rand.New(rand.NewSource(31337))
	p := enginetest.DefaultDocParams()
	tree := enginetest.RandomDoc(rnd, p)
	st, err := core.BuildFromTree(tree, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	type job struct {
		plan *translate.Plan
		want []uint32
	}
	var jobs []job
	for len(jobs) < 4 {
		query := enginetest.RandomQuery(rnd, p)
		tr, _ := translate.ByName("pushup")
		plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(query))
		if err != nil {
			continue
		}
		res, err := Execute(nil, st, planner.Fixed(plan), core.ExecConfig{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) == 0 {
			continue
		}
		jobs = append(jobs, job{plan: plan, want: res.Starts()})
	}

	const goroutines = 6
	const iterations = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				j := jobs[(g+i)%len(jobs)]
				par := []int{1, 2, 4}[i%3]
				ctx := relstore.NewExecContext()
				res, err := Execute(ctx, st, planner.Fixed(j.plan), core.ExecConfig{Parallelism: par})
				if err != nil {
					errs <- err
					return
				}
				if !enginetest.StartsEqual(res.Starts(), j.want) {
					errs <- &mismatchError{}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent twig execute diverged from sequential" }
