package twig

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const playsDoc = `<PLAYS>
  <PLAY>
    <TITLE>Hamlet</TITLE>
    <ACT>
      <TITLE>ACT I</TITLE>
      <SCENE>
        <TITLE>SCENE III. A public place.</TITLE>
        <SPEECH><SPEAKER>First</SPEAKER><LINE>line one</LINE><LINE>line two</LINE></SPEECH>
        <SPEECH><SPEAKER>Second</SPEAKER><LINE>line three</LINE></SPEECH>
      </SCENE>
      <SCENE>
        <TITLE>SCENE IV</TITLE>
        <SPEECH><SPEAKER>Third</SPEAKER><LINE>line four</LINE></SPEECH>
      </SCENE>
    </ACT>
    <EPILOGUE><LINE>closing<STAGEDIR>exit</STAGEDIR></LINE></EPILOGUE>
  </PLAY>
  <PLAY>
    <TITLE>Macbeth</TITLE>
    <ACT>
      <TITLE>ACT I</TITLE>
      <SCENE>
        <TITLE>SCENE I</TITLE>
        <SPEECH><SPEAKER>Witch</SPEAKER><LINE>when shall we</LINE></SPEECH>
      </SCENE>
    </ACT>
  </PLAY>
</PLAYS>`

func ctxFor(st *core.Store) translate.Context {
	return translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
}

// runAll executes a query with every translator on the twig engine and
// compares against the reference evaluator (and the relational engine).
func runAll(t *testing.T, st *core.Store, tree *xmltree.Node, query string) {
	t.Helper()
	want, err := enginetest.EvalStarts(tree, query)
	if err != nil {
		t.Fatalf("reference eval %s: %v", query, err)
	}
	translators := map[string]translate.Translator{
		"dlabel": translate.Baseline,
		"split":  translate.Split,
		"pushup": translate.PushUp,
		"unfold": translate.Unfold,
	}
	for name, tr := range translators {
		p, err := tr(ctxFor(st), xpath.MustParse(query))
		if err != nil {
			t.Fatalf("%s: translate %s: %v", name, query, err)
		}
		res, err := Execute(nil, st, planner.Fixed(p), core.ExecConfig{})
		if err != nil {
			t.Fatalf("%s: twig execute %s: %v", name, query, err)
		}
		if !enginetest.StartsEqual(res.Starts(), want) {
			t.Errorf("twig/%s: %s\n got %s\nwant %s\nplan:\n%s", name, query,
				enginetest.FormatStarts(res.Starts()), enginetest.FormatStarts(want), p)
		}
		// Cross-check against the relational engine on the same plan.
		rres, err := relengine.Execute(nil, st, planner.Fixed(p), relengine.Options{})
		if err != nil {
			t.Fatalf("%s: relengine on same plan: %v", name, err)
		}
		if !enginetest.StartsEqual(rres.Starts(), res.Starts()) {
			t.Errorf("engines disagree on %s/%s: rel %s vs twig %s", name, query,
				enginetest.FormatStarts(rres.Starts()), enginetest.FormatStarts(res.Starts()))
		}
	}
}

func TestPlaysQueries(t *testing.T) {
	st, tree, err := enginetest.MustBuild(playsDoc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	queries := []string{
		"/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",                               // QS1 shape
		"/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR",                             // QS2 shape
		`/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`, // QS3 shape
		"//SCENE//LINE",
		"//SPEECH[SPEAKER]/LINE",
		"//PLAY[EPILOGUE]/TITLE",
		`//PLAY[TITLE="Macbeth"]//SPEAKER`,
		"//LINE",
		"/PLAYS/PLAY[ACT/SCENE/SPEECH[SPEAKER]]/TITLE",
		"//ACT[TITLE and SCENE]/SCENE/TITLE",
		"//STAGEDIR",
		"/PLAYS/*/TITLE",
		"//nosuch",
	}
	for _, q := range queries {
		runAll(t, st, tree, q)
	}
}

// TestRecursiveStacks exercises nested same-tag elements, where stack
// depth exceeds one and ancestor enumeration must respect parent links.
func TestRecursiveStacks(t *testing.T) {
	doc := `<r>
	  <a><a><a><b>x</b></a><b>y</b></a></a>
	  <a><b>z</b></a>
	</r>`
	st, tree, err := enginetest.MustBuild(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, q := range []string{
		"//a//b",
		"//a/b",
		"//a/a//b",
		"//a[a]/b",
		"//a//a//b",
		"/r/a/a/b",
		"//a[b]",
	} {
		runAll(t, st, tree, q)
	}
}

func TestDifferentialRandomTwig(t *testing.T) {
	rnd := rand.New(rand.NewSource(777))
	p := enginetest.DefaultDocParams()
	for docIdx := 0; docIdx < 10; docIdx++ {
		tree := enginetest.RandomDoc(rnd, p)
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for qIdx := 0; qIdx < 25; qIdx++ {
			runAll(t, st, tree, enginetest.RandomQuery(rnd, p))
		}
		st.Close()
	}
}

// TestElementsReadAdvantage verifies the paper's Fig. 14(b) effect: the
// BLAS translators read fewer elements than D-labeling on the twig
// engine, because their streams are P-label-selected.
func TestElementsReadAdvantage(t *testing.T) {
	doc := xmltree.New("db")
	for i := 0; i < 60; i++ {
		e := doc.AppendNew("entry")
		p := e.AppendNew("protein")
		p.AppendText("name", "n")
		r := e.AppendNew("ref")
		r.AppendText("name", "m") // inflates the baseline's name stream
		r.AppendText("year", "2001")
	}
	st, err := core.BuildFromTree(doc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	measure := func(tr translate.Translator, q string) uint64 {
		p, err := tr(ctxFor(st), xpath.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		ctx := relstore.NewExecContext()
		if _, err := Execute(ctx, st, planner.Fixed(p), core.ExecConfig{}); err != nil {
			t.Fatal(err)
		}
		return ctx.Visited()
	}
	q := "/db/entry/protein/name"
	base := measure(translate.Baseline, q)
	split := measure(translate.Split, q)
	if split >= base {
		t.Fatalf("split read %d elements >= baseline %d", split, base)
	}
}

func TestEmptyPlan(t *testing.T) {
	st, _, err := enginetest.MustBuild(`<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := translate.Split(ctxFor(st), xpath.MustParse("//zzz"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(nil, st, planner.Fixed(p), core.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatal("expected empty result")
	}
}
