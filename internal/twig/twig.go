// Package twig implements the paper's second query engine (§5.3): a
// holistic twig join over start-ordered label streams, in the style of
// Bruno, Koudas & Srivastava's PathStack/TwigStack (SIGMOD 2002).
//
// The engine consumes the same translated plans as the relational
// engine. Each plan fragment becomes one twig node whose input stream is
// the fragment's selection delivered in document (start) order:
//
//	D-labeling mode: one per-tag stream from the SD relation;
//	BLAS mode:       per-P-label-range streams from the SP relation
//	                 (k-way merged into document order).
//
// A single chain of stacks — one per twig node, items linked to the top
// of the parent stack at push time — sweeps all streams in global start
// order. Root-to-leaf path solutions are emitted whenever a leaf element
// lands on a non-broken chain; after the sweep, path solutions are
// merge-joined on their shared prefixes into full twig matches.
//
// The engine reads every stream element exactly once, which is what the
// paper's "number of elements read" metric (Figs. 14-18) measures: in
// D-labeling mode every node carrying a query tag is read, in BLAS mode
// only the nodes matching each fragment's P-label selection. TwigStack's
// getNext skipping is deliberately not implemented — it suppresses some
// intermediate path solutions but reads the same elements, and the
// conservative sweep is correct for the generalized level-gap edges that
// BLAS plans carry.
package twig

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/translate"
)

// Result holds a query's answer: the return-node bindings in document
// order, deduplicated.
type Result struct {
	Records []relstore.Record
}

// Starts returns the start positions of the result records.
func (r *Result) Starts() []uint32 {
	out := make([]uint32, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Start
	}
	return out
}

// Execute runs a plan against a store using the holistic twig join.
// Statistics accumulate in ctx (nil discards them); one ctx per call
// makes concurrent Execute calls over one store safe.
func Execute(ctx *relstore.ExecContext, st *core.Store, p *translate.Plan) (*Result, error) {
	if p.Empty() {
		return &Result{}, nil
	}
	eng, err := build(ctx, st, p)
	if err != nil {
		return nil, err
	}
	if err := eng.sweep(); err != nil {
		return nil, err
	}
	return eng.merge()
}

// tnode is one twig node.
type tnode struct {
	id       int
	frag     *translate.Fragment
	parent   *tnode
	children []*tnode
	edge     translate.Join // incoming edge (zero value for the root)

	stream *peekIter
	stack  []stackItem

	// leaf bookkeeping
	path      []*tnode // root..this (leaves only)
	solutions [][]relstore.Record
}

type stackItem struct {
	rec       relstore.Record
	parentIdx int // top of parent stack at push time; -1 when rootless
}

type engine struct {
	st     *core.Store
	plan   *translate.Plan
	nodes  []*tnode
	root   *tnode
	leaves []*tnode
}

func build(ctx *relstore.ExecContext, st *core.Store, p *translate.Plan) (*engine, error) {
	eng := &engine{st: st, plan: p}
	eng.nodes = make([]*tnode, len(p.Fragments))
	for i, f := range p.Fragments {
		it, err := openStream(ctx, st, f)
		if err != nil {
			return nil, err
		}
		eng.nodes[i] = &tnode{id: i, frag: f, stream: newPeekIter(it)}
	}
	hasParent := make([]bool, len(p.Fragments))
	for _, j := range p.Joins {
		a, d := eng.nodes[j.Anc], eng.nodes[j.Desc]
		if hasParent[j.Desc] {
			return nil, fmt.Errorf("twig: fragment %d has two parents", j.Desc)
		}
		hasParent[j.Desc] = true
		d.parent = a
		d.edge = j
		a.children = append(a.children, d)
	}
	for i, n := range eng.nodes {
		if !hasParent[i] {
			if eng.root != nil {
				return nil, fmt.Errorf("twig: plan has multiple roots (%d and %d)", eng.root.id, i)
			}
			eng.root = n
		}
		if len(n.children) == 0 {
			eng.leaves = append(eng.leaves, n)
		}
	}
	if eng.root == nil {
		return nil, fmt.Errorf("twig: plan has no root")
	}
	// Precompute root-to-leaf paths and order leaves depth-first so that
	// the merge joins on shared prefixes.
	eng.leaves = eng.leaves[:0]
	var dfs func(n *tnode, path []*tnode)
	dfs = func(n *tnode, path []*tnode) {
		path = append(path, n)
		if len(n.children) == 0 {
			n.path = append([]*tnode(nil), path...)
			eng.leaves = append(eng.leaves, n)
			return
		}
		for _, c := range n.children {
			dfs(c, path)
		}
	}
	dfs(eng.root, nil)
	return eng, nil
}

// openStream builds the document-order stream for a fragment, with the
// fragment's local predicates applied.
func openStream(ctx *relstore.ExecContext, st *core.Store, f *translate.Fragment) (relstore.Iter, error) {
	var it relstore.Iter
	var err error
	switch f.Access.Kind {
	case translate.AccessPLabelEq:
		it = st.SP().ScanPLabelExact(ctx, f.Access.Range.Lo)
	case translate.AccessPLabelRange:
		it, err = st.SP().ScanPLabelRangeByStart(ctx, f.Access.Range.Lo, f.Access.Range.Hi)
	case translate.AccessPLabelSet:
		runs := make([]relstore.Iter, 0, len(f.Access.Labels))
		for _, l := range f.Access.Labels {
			runs = append(runs, st.SP().ScanPLabelExact(ctx, l))
		}
		it, err = relstore.MergeByStart(runs)
	case translate.AccessTag:
		it = st.SD().ScanTag(ctx, f.Access.TagID)
	case translate.AccessAll:
		it = st.SD().ScanStartRange(ctx, 0, 0) // start index: document order
	default:
		return nil, fmt.Errorf("twig: unknown access kind %v", f.Access.Kind)
	}
	if err != nil {
		return nil, err
	}
	var excludeAttrs map[uint32]bool
	if f.Access.Kind == translate.AccessAll {
		excludeAttrs = map[uint32]bool{}
		for _, tag := range st.Scheme().Tags() {
			if len(tag) > 0 && tag[0] == '@' {
				if d, ok := st.Scheme().TagDigit(tag); ok {
					excludeAttrs[uint32(d)] = true
				}
			}
		}
	}
	if f.Value == nil && f.LevelEq == 0 && excludeAttrs == nil {
		return it, nil
	}
	return &filterIter{inner: it, value: f.Value, levelEq: f.LevelEq, excludeTags: excludeAttrs}, nil
}

// filterIter applies fragment-local predicates to a stream.
type filterIter struct {
	inner       relstore.Iter
	value       *string
	levelEq     uint16
	excludeTags map[uint32]bool
}

func (f *filterIter) Next() bool {
	for f.inner.Next() {
		rec := f.inner.Record()
		if f.value != nil && rec.Data != *f.value {
			continue
		}
		if f.levelEq != 0 && rec.Level != f.levelEq {
			continue
		}
		if f.excludeTags != nil && f.excludeTags[rec.TagID] {
			continue
		}
		return true
	}
	return false
}

func (f *filterIter) Record() relstore.Record { return f.inner.Record() }
func (f *filterIter) Err() error              { return f.inner.Err() }

// peekIter exposes the head of a stream.
type peekIter struct {
	it   relstore.Iter
	head relstore.Record
	eof  bool
	err  error
}

func newPeekIter(it relstore.Iter) *peekIter {
	p := &peekIter{it: it}
	p.advance()
	return p
}

func (p *peekIter) advance() {
	if p.err != nil || p.eof {
		return
	}
	if p.it.Next() {
		p.head = p.it.Record()
	} else {
		p.eof = true
		p.err = p.it.Err()
	}
}

// sweep runs the stack machine over all streams in global start order.
func (e *engine) sweep() error {
	for {
		// Pick the non-exhausted stream with the smallest head start.
		var q *tnode
		for _, n := range e.nodes {
			if n.stream.err != nil {
				return n.stream.err
			}
			if n.stream.eof {
				continue
			}
			if q == nil || n.stream.head.Start < q.stream.head.Start {
				q = n
			}
		}
		if q == nil {
			return nil
		}
		el := q.stream.head

		// Global clean: pop every stack item whose interval ended before
		// el. Processing in ascending start order makes this safe — a
		// popped item can contain no future element.
		for _, n := range e.nodes {
			for len(n.stack) > 0 && n.stack[len(n.stack)-1].rec.End < el.Start {
				n.stack = n.stack[:len(n.stack)-1]
			}
		}

		// Push only when the chain above is unbroken: a parent element
		// arriving later cannot contain el.
		if q.parent == nil || len(q.parent.stack) > 0 {
			pi := -1
			if q.parent != nil {
				pi = len(q.parent.stack) - 1
			}
			q.stack = append(q.stack, stackItem{rec: el, parentIdx: pi})
			if len(q.children) == 0 {
				q.collectSolutions()
				q.stack = q.stack[:len(q.stack)-1]
			}
		}
		q.stream.advance()
	}
}

// collectSolutions enumerates the root-to-leaf path solutions ending at
// the element just pushed onto leaf q, applying each edge's level-gap
// constraint.
func (q *tnode) collectSolutions() {
	depth := len(q.path)
	cur := make([]relstore.Record, depth)
	item := q.stack[len(q.stack)-1]
	cur[depth-1] = item.rec

	var up func(level int, limit int)
	up = func(level, limit int) {
		if level < 0 {
			sol := make([]relstore.Record, depth)
			copy(sol, cur)
			q.solutions = append(q.solutions, sol)
			return
		}
		node := q.path[level]
		childRec := cur[level+1]
		edge := q.path[level+1].edge
		for i := 0; i <= limit && i < len(node.stack); i++ {
			it := node.stack[i]
			// Items on the stack contain the child element by
			// construction; the edge's level constraint narrows the pick.
			if !edge.LevelOK(it.rec.Level, childRec.Level) {
				continue
			}
			cur[level] = it.rec
			up(level-1, it.parentIdx)
		}
	}
	if depth == 1 {
		q.solutions = append(q.solutions, []relstore.Record{item.rec})
		return
	}
	up(depth-2, item.parentIdx)
}

// merge joins the per-leaf path solutions on their shared prefixes and
// projects the return fragment.
func (e *engine) merge() (*Result, error) {
	ret := e.plan.Return

	// Single leaf: path solutions are the matches.
	if len(e.leaves) == 1 {
		leaf := e.leaves[0]
		col := pathIndex(leaf.path, ret)
		if col < 0 {
			return nil, fmt.Errorf("twig: return fragment %d not on the only path", ret)
		}
		recs := make([]relstore.Record, 0, len(leaf.solutions))
		for _, s := range leaf.solutions {
			recs = append(recs, s[col])
		}
		return &Result{Records: finalize(recs)}, nil
	}

	// Multi-leaf: fold leaves in DFS order; each leaf's shared prefix
	// with the already-covered node set is a prefix of its path.
	type assign struct {
		recs map[int]relstore.Record // fragment id -> binding
	}
	covered := map[int]bool{}
	var assigns []assign
	for li, leaf := range e.leaves {
		if li == 0 {
			for _, s := range leaf.solutions {
				a := assign{recs: map[int]relstore.Record{}}
				for i, n := range leaf.path {
					a.recs[n.id] = s[i]
				}
				assigns = append(assigns, a)
			}
			for _, n := range leaf.path {
				covered[n.id] = true
			}
			continue
		}
		// Shared prefix of this leaf's path.
		shared := 0
		for shared < len(leaf.path) && covered[leaf.path[shared].id] {
			shared++
		}
		// Index the leaf's solutions by the bindings of the shared prefix.
		index := map[string][][]relstore.Record{}
		for _, s := range leaf.solutions {
			index[prefixKey(s[:shared])] = append(index[prefixKey(s[:shared])], s)
		}
		var next []assign
		for _, a := range assigns {
			key := assignKey(a.recs, leaf.path[:shared])
			for _, s := range index[key] {
				na := assign{recs: make(map[int]relstore.Record, len(a.recs)+len(leaf.path)-shared)}
				for k, v := range a.recs {
					na.recs[k] = v
				}
				for i := shared; i < len(leaf.path); i++ {
					na.recs[leaf.path[i].id] = s[i]
				}
				next = append(next, na)
			}
		}
		assigns = next
		for _, n := range leaf.path {
			covered[n.id] = true
		}
		if len(assigns) == 0 {
			return &Result{}, nil
		}
	}
	if !covered[ret] {
		return nil, fmt.Errorf("twig: return fragment %d not covered by any path", ret)
	}
	recs := make([]relstore.Record, 0, len(assigns))
	for _, a := range assigns {
		recs = append(recs, a.recs[ret])
	}
	return &Result{Records: finalize(recs)}, nil
}

func pathIndex(path []*tnode, id int) int {
	for i, n := range path {
		if n.id == id {
			return i
		}
	}
	return -1
}

func prefixKey(recs []relstore.Record) string {
	b := make([]byte, 0, 4*len(recs))
	for _, r := range recs {
		b = append(b, byte(r.Start>>24), byte(r.Start>>16), byte(r.Start>>8), byte(r.Start))
	}
	return string(b)
}

func assignKey(m map[int]relstore.Record, nodes []*tnode) string {
	b := make([]byte, 0, 4*len(nodes))
	for _, n := range nodes {
		r := m[n.id]
		b = append(b, byte(r.Start>>24), byte(r.Start>>16), byte(r.Start>>8), byte(r.Start))
	}
	return string(b)
}

func finalize(recs []relstore.Record) []relstore.Record {
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Start < recs[b].Start })
	out := recs[:1]
	for _, r := range recs[1:] {
		if r.Start != out[len(out)-1].Start {
			out = append(out, r)
		}
	}
	return out
}
