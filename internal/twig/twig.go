// Package twig implements the paper's second query engine (§5.3): a
// holistic twig join over start-ordered label streams, in the style of
// Bruno, Koudas & Srivastava's PathStack/TwigStack (SIGMOD 2002).
//
// The engine consumes the same ordered physical plans
// (planner.Physical) as the relational engine. Scan order does not
// affect the holistic sweep — every stream is swept in global start
// order regardless — but the engine honors the planner's emptiness
// proof (KnownEmpty returns before any stream is built) and terminates
// early when any prepared stream is known empty, skipping the sweep
// entirely. Each plan fragment becomes one twig node whose input stream
// is the fragment's selection delivered in document (start) order:
//
//	D-labeling mode: one per-tag stream from the SD relation;
//	BLAS mode:       per-P-label-range streams from the SP relation
//	                 (k-way merged into document order).
//
// A single chain of stacks — one per twig node, items linked to the top
// of the parent stack at push time — sweeps all streams in global start
// order. Root-to-leaf path solutions are emitted whenever a leaf element
// lands on a non-broken chain; after the sweep, path solutions are
// merge-joined on their shared prefixes into full twig matches.
//
// # Batched streams and the partitioned sweep
//
// Streams are read through the relstore batched scan layer
// (relstore.BatchIter via core.FragmentStream): records arrive in
// fixed-size batches, every heap page contributing to a batch is decoded
// under a single pager view, and the per-P-label runs of a BLAS-mode
// range selection are k-way merged batch-wise. With
// core.ExecConfig.Parallelism > 1 the engine additionally parallelizes
// one query two ways:
//
//   - every twig node's stream gets an asynchronous prefetcher
//     goroutine that keeps a bounded number of batches in flight, so
//     per-fragment range scans and the BLAS-mode merge overlap their
//     backing-store misses instead of stalling the sweep;
//   - the sweep itself is partitioned by document order: the root
//     fragment's stream is materialized first, cut points are chosen on
//     top-level root-element boundaries, and each partition runs the
//     full stack-chain sweep plus path-solution collection over the
//     streams restricted to its start interval. Because no element that
//     can ever be pushed straddles such a cut (every pushed element is
//     contained in some root-stream element, and no root element spans
//     a cut), concatenating the per-partition path solutions in
//     partition order reproduces the sequential sweep's solution lists
//     exactly; the final merge join is unchanged.
//
// Statistics stay exact under parallelism: a record is fetched by
// exactly one partition (the start restriction is pushed into the
// cluster-index bounds), so ExecContext.Visited is identical at every
// Parallelism setting — the paper's "elements read" metric does not
// depend on the worker count. Page reads/misses remain self-consistent
// (atomic counters shared by all workers) but may vary slightly with
// the partition count, since each partition descends the indexes for
// its own sub-range.
//
// The engine reads every stream element exactly once, which is what the
// paper's "number of elements read" metric (Figs. 14-18) measures: in
// D-labeling mode every node carrying a query tag is read, in BLAS mode
// only the nodes matching each fragment's P-label selection. TwigStack's
// getNext skipping is deliberately not implemented — it suppresses some
// intermediate path solutions but reads the same elements, and the
// conservative sweep is correct for the generalized level-gap edges that
// BLAS plans carry.
//
// When the context carries an obs.Trace, Execute reports three
// wall-time spans on the calling goroutine — PhaseScan around stream
// preparation, PhaseSweep around the (possibly partitioned) sweep, and
// PhaseJoin around the path-solution merge — that tile its execution
// time. The parallel sweep additionally records one partition entry per
// sweep partition (its root-record count) and accumulates
// PhasePrefetchStall: the cumulative time sweep goroutines spent
// blocked on prefetcher channels, summed across partitions, so it can
// exceed the wall-clock sweep span. Without a trace all reporting is a
// nil check and nothing more.
package twig

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/relstore"
	"repro/internal/translate"
)

// Result holds a query's answer: the return-node bindings in document
// order, deduplicated.
type Result struct {
	Records []relstore.Record
	// EarlyTerminated reports that an empty intermediate (a planner
	// proof or a stream that resolved to zero runs) let the engine skip
	// the sweep and merge entirely.
	EarlyTerminated bool
}

// Starts returns the start positions of the result records.
func (r *Result) Starts() []uint32 {
	out := make([]uint32, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Start
	}
	return out
}

// Execute runs a physical plan against a store using the holistic twig
// join. The plan's join order does not change the sweep (all streams
// advance in global start order), but the planner's emptiness proofs
// do: a KnownEmpty plan skips stream preparation entirely, and a stream
// that resolves to zero P-label runs skips the sweep and merge.
// Statistics accumulate in ctx (nil discards them); one ctx per call
// makes concurrent Execute calls over one store safe.
//
// cfg.Parallelism sets the sweep-partition count: 0 selects GOMAXPROCS,
// 1 runs fully sequentially (no extra goroutines), negative values are
// rejected. At P > 1 each active partition additionally runs one
// prefetcher goroutine per non-root stream, so a call uses up to
// P * (plan fragments) goroutines — prefetchers are I/O-bound and
// block on a bounded channel (depth chosen by the query's batch
// controller), so compute concurrency tracks P, not the product. The
// result is byte-identical at every setting.
func Execute(ctx *relstore.ExecContext, st *core.Store, p *planner.Physical, cfg core.ExecConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("twig: %w", err)
	}
	if ctx.BatchControl() == nil {
		ctx.SetBatchControl(cfg.BatchController())
	}
	lp := p.Logical
	if p.KnownEmpty || lp.Empty() {
		return &Result{EarlyTerminated: p.ProbedEmpty()}, nil
	}
	tr := ctx.Trace()
	scanBegin := tr.Begin()
	eng, err := build(ctx, st, lp, p.Joins)
	tr.End(obs.PhaseScan, scanBegin)
	if err != nil {
		return nil, err
	}
	for _, n := range eng.nodes {
		if n.stream.KnownEmpty() {
			// A run-less stream can bind nothing, and every twig node
			// must bind: skip the sweep and merge.
			return &Result{EarlyTerminated: true}, nil
		}
	}
	sweepBegin := tr.Begin()
	leafSols, err := eng.sweepAll(ctx, cfg.Workers())
	tr.End(obs.PhaseSweep, sweepBegin)
	if err != nil {
		return nil, err
	}
	joinBegin := tr.Begin()
	res, err := eng.merge(leafSols)
	tr.End(obs.PhaseJoin, joinBegin)
	return res, err
}

// tnode is one twig node: the static query structure plus the prepared
// stream opener. Per-sweep mutable state (stacks, stream positions,
// collected solutions) lives in sweepState, so any number of partition
// sweeps can share one tnode tree.
type tnode struct {
	id       int
	frag     *translate.Fragment
	parent   *tnode
	children []*tnode
	edge     translate.Join // incoming edge (zero value for the root)

	stream *core.FragmentStream
	filter core.RecFilter

	// leaf bookkeeping
	leafIdx int      // index into engine.leaves; -1 for inner nodes
	path    []*tnode // root..this (leaves only)
}

type stackItem struct {
	rec       relstore.Record
	parentIdx int // top of parent stack at push time; -1 when rootless
}

type engine struct {
	st       *core.Store
	plan     *translate.Plan
	nodes    []*tnode
	root     *tnode
	leaves   []*tnode
	maxDepth int // longest root-to-leaf path
}

// build assembles the twig node tree from the logical plan's fragments
// and the physical join order (the same edge set as the logical joins,
// so the resulting tree is identical — order only matters to the
// relational engine's pipeline).
func build(ctx *relstore.ExecContext, st *core.Store, p *translate.Plan, joins []translate.Join) (*engine, error) {
	eng := &engine{st: st, plan: p}
	eng.nodes = make([]*tnode, len(p.Fragments))
	for i, f := range p.Fragments {
		fs, err := st.PrepareFragmentStream(ctx, f)
		if err != nil {
			return nil, err
		}
		eng.nodes[i] = &tnode{
			id:      i,
			frag:    f,
			stream:  fs,
			leafIdx: -1,
			filter:  st.FragmentFilter(f),
		}
	}
	hasParent := make([]bool, len(p.Fragments))
	for _, j := range joins {
		a, d := eng.nodes[j.Anc], eng.nodes[j.Desc]
		if hasParent[j.Desc] {
			return nil, fmt.Errorf("twig: fragment %d has two parents", j.Desc)
		}
		hasParent[j.Desc] = true
		d.parent = a
		d.edge = j
		a.children = append(a.children, d)
	}
	for i, n := range eng.nodes {
		if !hasParent[i] {
			if eng.root != nil {
				return nil, fmt.Errorf("twig: plan has multiple roots (%d and %d)", eng.root.id, i)
			}
			eng.root = n
		}
	}
	if eng.root == nil {
		return nil, fmt.Errorf("twig: plan has no root")
	}
	// Precompute root-to-leaf paths and order leaves depth-first so that
	// the merge joins on shared prefixes.
	var dfs func(n *tnode, path []*tnode)
	dfs = func(n *tnode, path []*tnode) {
		path = append(path, n)
		if len(n.children) == 0 {
			n.path = append([]*tnode(nil), path...)
			n.leafIdx = len(eng.leaves)
			eng.leaves = append(eng.leaves, n)
			if len(path) > eng.maxDepth {
				eng.maxDepth = len(path)
			}
			return
		}
		for _, c := range n.children {
			dfs(c, path)
		}
	}
	dfs(eng.root, nil)
	return eng, nil
}

// merge joins the per-leaf path solutions (ordered as the sequential
// sweep emits them) on their shared prefixes and projects the return
// fragment.
func (e *engine) merge(leafSols [][][]relstore.Record) (*Result, error) {
	ret := e.plan.Return

	// Single leaf: path solutions are the matches.
	if len(e.leaves) == 1 {
		leaf := e.leaves[0]
		col := pathIndex(leaf.path, ret)
		if col < 0 {
			return nil, fmt.Errorf("twig: return fragment %d not on the only path", ret)
		}
		recs := make([]relstore.Record, 0, len(leafSols[0]))
		for _, s := range leafSols[0] {
			recs = append(recs, s[col])
		}
		return &Result{Records: finalize(recs)}, nil
	}

	// Multi-leaf: fold leaves in DFS order; each leaf's shared prefix
	// with the already-covered node set is a prefix of its path.
	type assign struct {
		recs map[int]relstore.Record // fragment id -> binding
	}
	covered := map[int]bool{}
	var assigns []assign
	for li, leaf := range e.leaves {
		sols := leafSols[li]
		if li == 0 {
			for _, s := range sols {
				a := assign{recs: map[int]relstore.Record{}}
				for i, n := range leaf.path {
					a.recs[n.id] = s[i]
				}
				assigns = append(assigns, a)
			}
			for _, n := range leaf.path {
				covered[n.id] = true
			}
			continue
		}
		// Shared prefix of this leaf's path.
		shared := 0
		for shared < len(leaf.path) && covered[leaf.path[shared].id] {
			shared++
		}
		// Index the leaf's solutions by the bindings of the shared prefix.
		index := map[joinKey][][]relstore.Record{}
		for _, s := range sols {
			k := solutionKey(s[:shared])
			index[k] = append(index[k], s)
		}
		var next []assign
		for _, a := range assigns {
			key := assignKey(a.recs, leaf.path[:shared])
			for _, s := range index[key] {
				na := assign{recs: make(map[int]relstore.Record, len(a.recs)+len(leaf.path)-shared)}
				for k, v := range a.recs {
					na.recs[k] = v
				}
				for i := shared; i < len(leaf.path); i++ {
					na.recs[leaf.path[i].id] = s[i]
				}
				next = append(next, na)
			}
		}
		assigns = next
		for _, n := range leaf.path {
			covered[n.id] = true
		}
		if len(assigns) == 0 {
			return &Result{}, nil
		}
	}
	if !covered[ret] {
		return nil, fmt.Errorf("twig: return fragment %d not covered by any path", ret)
	}
	recs := make([]relstore.Record, 0, len(assigns))
	for _, a := range assigns {
		recs = append(recs, a.recs[ret])
	}
	return &Result{Records: finalize(recs)}, nil
}

func pathIndex(path []*tnode, id int) int {
	for i, n := range path {
		if n.id == id {
			return i
		}
	}
	return -1
}

// --- shared-prefix join keys ---

// joinKeyInline is how many prefix bindings a joinKey holds without
// allocating. Shared prefixes are root-to-branch-point paths, so real
// queries rarely exceed a handful of bindings.
const joinKeyInline = 8

// joinKey identifies a shared-prefix binding by the start positions of
// its records (start positions are unique document positions, so they
// determine the binding). Up to joinKeyInline starts pack into a
// comparable value — the merge's hash joins then build and look up keys
// with zero allocations; deeper prefixes spill the remainder into a
// string. TestJoinKeyZeroAlloc guards the no-allocation property.
type joinKey struct {
	n      uint16
	inline [joinKeyInline]uint32
	spill  string
}

// spillStarts packs the overflow starts into a comparable string
// (one allocation, only for solutions deeper than joinKeyInline).
//
//blas:hotpath
func spillStarts(starts []uint32) string {
	b := make([]byte, 0, 4*len(starts))
	for _, s := range starts {
		b = append(b, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	return string(b)
}

// solutionKey keys the shared prefix of one path solution.
//
//blas:hotpath
func solutionKey(recs []relstore.Record) joinKey {
	k := joinKey{n: uint16(len(recs))}
	if len(recs) > joinKeyInline {
		starts := make([]uint32, 0, len(recs)-joinKeyInline)
		for _, r := range recs[joinKeyInline:] {
			starts = append(starts, r.Start)
		}
		k.spill = spillStarts(starts)
		recs = recs[:joinKeyInline]
	}
	for i, r := range recs {
		k.inline[i] = r.Start
	}
	return k
}

// assignKey keys a partial twig assignment by the bindings of the given
// path prefix.
//
//blas:hotpath
func assignKey(m map[int]relstore.Record, nodes []*tnode) joinKey {
	k := joinKey{n: uint16(len(nodes))}
	if len(nodes) > joinKeyInline {
		starts := make([]uint32, 0, len(nodes)-joinKeyInline)
		for _, n := range nodes[joinKeyInline:] {
			starts = append(starts, m[n.id].Start)
		}
		k.spill = spillStarts(starts)
		nodes = nodes[:joinKeyInline]
	}
	for i, n := range nodes {
		k.inline[i] = m[n.id].Start
	}
	return k
}

func finalize(recs []relstore.Record) []relstore.Record {
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Start < recs[b].Start })
	out := recs[:1]
	for _, r := range recs[1:] {
		if r.Start != out[len(out)-1].Start {
			out = append(out, r)
		}
	}
	return out
}
