package twig

import (
	"testing"

	"repro/internal/relstore"
)

var keySink joinKey

// TestJoinKeyZeroAlloc is the allocation guard for the merge's hash-join
// keys: building a key over a shared prefix of up to joinKeyInline
// bindings must not allocate (the seed built a string key per lookup,
// twice per solution). Spilled keys (deeper prefixes) may allocate.
func TestJoinKeyZeroAlloc(t *testing.T) {
	recs := make([]relstore.Record, joinKeyInline)
	nodes := make([]*tnode, joinKeyInline)
	m := map[int]relstore.Record{}
	for i := range recs {
		recs[i].Start = uint32(i * 7)
		nodes[i] = &tnode{id: i}
		m[i] = recs[i]
	}
	if a := testing.AllocsPerRun(200, func() { keySink = solutionKey(recs) }); a != 0 {
		t.Errorf("solutionKey allocates %.1f times per call, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { keySink = assignKey(m, nodes) }); a != 0 {
		t.Errorf("assignKey allocates %.1f times per call, want 0", a)
	}
}

// TestJoinKeyIdentity: solution and assignment keys over the same
// bindings must collide, different bindings must not — including past
// the inline capacity, where starts spill into the string tail.
func TestJoinKeyIdentity(t *testing.T) {
	for _, n := range []int{1, 3, joinKeyInline, joinKeyInline + 1, joinKeyInline + 5} {
		recs := make([]relstore.Record, n)
		nodes := make([]*tnode, n)
		m := map[int]relstore.Record{}
		for i := range recs {
			recs[i].Start = uint32(1000 + i)
			nodes[i] = &tnode{id: i}
			m[i] = recs[i]
		}
		if solutionKey(recs) != assignKey(m, nodes) {
			t.Fatalf("n=%d: matching bindings produced different keys", n)
		}
		recs[n-1].Start++
		if solutionKey(recs) == assignKey(m, nodes) {
			t.Fatalf("n=%d: differing bindings collided", n)
		}
	}
	// Length must be part of the identity: a 2-prefix whose starts are a
	// prefix of a 3-prefix is a different key.
	a := []relstore.Record{{Start: 1}, {Start: 2}}
	b := []relstore.Record{{Start: 1}, {Start: 2}, {Start: 0}}
	if solutionKey(a) == solutionKey(b) {
		t.Fatal("keys of different prefix lengths collided")
	}
}

// BenchmarkJoinKey tracks the per-solution cost of key construction on
// the merge's hot path (ReportAllocs is the benchmark-level guard).
func BenchmarkJoinKey(b *testing.B) {
	recs := make([]relstore.Record, 4)
	for i := range recs {
		recs[i].Start = uint32(i * 13)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keySink = solutionKey(recs)
	}
}
