package twig

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relstore"
)

// batchSource produces filtered record batches for one stream. next
// returns a nil slice at end of stream; a returned batch stays valid
// until the following next call. close releases any resources (it is
// required even when next has not been drained — e.g. when a sibling
// stream errored mid-sweep).
//
// Both pulling sources size their buffers from the query's batch
// controller (ExecContext.BatchControl) and report every produced batch
// back to it — fill latency and the pager-miss delta it caused — so the
// controller can adapt the batch size while the query runs. A nil
// controller behaves as the fixed defaults.
type batchSource interface {
	next() ([]relstore.Record, error)
	close()
}

// memSource replays an in-memory record slice (the materialized root
// stream of a partition) as a single batch.
type memSource struct {
	recs []relstore.Record
	done bool
}

func (m *memSource) next() ([]relstore.Record, error) {
	if m.done || len(m.recs) == 0 {
		return nil, nil
	}
	m.done = true
	return m.recs, nil
}

func (m *memSource) close() {}

// fillBatch pulls one batch into buf (resized to the controller's
// current target), filters it, and reports the fill to the controller.
// It returns the (possibly re-grown) buffer for reuse, the filtered
// records, and n == 0 at end of stream.
func fillBatch(ctx *relstore.ExecContext, ctl *relstore.BatchController, bi relstore.BatchIter, f core.RecFilter, buf []relstore.Record) ([]relstore.Record, []relstore.Record, int, error) {
	if want := ctl.BatchSize(); want > cap(buf) {
		buf = make([]relstore.Record, want)
	} else {
		buf = buf[:want]
	}
	missBefore := ctx.PageMisses()
	begin := time.Now()
	n, err := bi.NextBatch(buf)
	if err != nil || n == 0 {
		return buf, nil, 0, err
	}
	ctl.ObserveBatch(n, time.Since(begin), ctx.PageMisses()-missBefore)
	return buf, f.Apply(buf[:n]), n, nil
}

// syncSource pulls batches inline on the sweep goroutine — the fully
// sequential (Parallelism = 1) mode.
type syncSource struct {
	ctx    *relstore.ExecContext
	ctl    *relstore.BatchController
	bi     relstore.BatchIter
	filter core.RecFilter
	buf    []relstore.Record
}

func newSyncSource(ctx *relstore.ExecContext, bi relstore.BatchIter, f core.RecFilter) *syncSource {
	ctl := ctx.BatchControl()
	return &syncSource{ctx: ctx, ctl: ctl, bi: bi, filter: f, buf: make([]relstore.Record, ctl.BatchSize())}
}

func (s *syncSource) next() ([]relstore.Record, error) {
	for {
		buf, recs, n, err := fillBatch(s.ctx, s.ctl, s.bi, s.filter, s.buf)
		s.buf = buf
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		if len(recs) > 0 {
			return recs, nil
		}
	}
}

func (s *syncSource) close() {}

// prefetchMsg carries one batch (or the stream's terminal error) from a
// prefetcher to its consumer.
type prefetchMsg struct {
	recs []relstore.Record
	err  error
}

// prefetchSource reads batches on a dedicated goroutine, keeping a
// controller-chosen number of filtered batches buffered ahead of the
// consumer. Each batch gets a fresh buffer, so the consumer may hold one
// while the producer fills the next. The time the consumer spends
// blocked on the channel accumulates under PhasePrefetchStall (when
// traced) and feeds the controller's depth adaptation — though a running
// stream's channel keeps its capacity, so a deepened pipeline takes
// effect on the streams opened after it (the next sweep partitions).
type prefetchSource struct {
	ch     chan prefetchMsg
	stop   chan struct{}
	closed bool
	tr     *obs.Trace
	ctl    *relstore.BatchController
}

func startPrefetch(ctx *relstore.ExecContext, bi relstore.BatchIter, f core.RecFilter) *prefetchSource {
	ctl := ctx.BatchControl()
	s := &prefetchSource{
		ch:   make(chan prefetchMsg, ctl.PrefetchDepth()),
		stop: make(chan struct{}),
		tr:   ctx.Trace(),
		ctl:  ctl,
	}
	go func() {
		defer close(s.ch)
		for {
			buf := make([]relstore.Record, ctl.BatchSize())
			missBefore := ctx.PageMisses()
			begin := time.Now()
			n, err := bi.NextBatch(buf)
			if err != nil {
				select {
				case s.ch <- prefetchMsg{err: err}:
				case <-s.stop:
				}
				return
			}
			if n == 0 {
				return
			}
			ctl.ObserveBatch(n, time.Since(begin), ctx.PageMisses()-missBefore)
			recs := f.Apply(buf[:n])
			if len(recs) == 0 {
				continue
			}
			select {
			case s.ch <- prefetchMsg{recs: recs}:
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

func (s *prefetchSource) next() ([]relstore.Record, error) {
	var begin time.Time
	if s.tr != nil || s.ctl != nil {
		begin = time.Now()
	}
	msg, ok := <-s.ch
	if !begin.IsZero() {
		d := time.Since(begin)
		s.tr.Add(obs.PhasePrefetchStall, d)
		s.ctl.ObserveStall(d)
	}
	if !ok {
		return nil, nil
	}
	if msg.err != nil {
		return nil, msg.err
	}
	return msg.recs, nil
}

// close stops the producer goroutine. Safe to call after the stream is
// drained; must only be called from the consuming goroutine.
func (s *prefetchSource) close() {
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
}

// batchStream is the peekable cursor the sweep drives: head() is the
// next record in document order, advance() moves past it, refilling
// from the source batch by batch.
type batchStream struct {
	src batchSource
	cur []relstore.Record
	i   int
	eof bool
	err error
}

func newBatchStream(src batchSource) *batchStream {
	s := &batchStream{src: src}
	s.fill()
	return s
}

func (s *batchStream) fill() {
	for {
		recs, err := s.src.next()
		if err != nil {
			s.err = err
			s.eof = true
			return
		}
		if recs == nil {
			s.eof = true
			return
		}
		if len(recs) > 0 {
			s.cur, s.i = recs, 0
			return
		}
	}
}

func (s *batchStream) head() relstore.Record { return s.cur[s.i] }

func (s *batchStream) advance() {
	s.i++
	if s.i >= len(s.cur) {
		s.fill()
	}
}

func (s *batchStream) close() { s.src.close() }
