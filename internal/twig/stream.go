package twig

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relstore"
)

// prefetchDepth is how many filtered batches a stream's prefetcher keeps
// in flight ahead of the sweep. Two batches double-buffer: the sweep
// consumes one while the prefetcher fills the next, overlapping page
// decode and backing-store misses with sweep work.
const prefetchDepth = 2

// batchSource produces filtered record batches for one stream. next
// returns a nil slice at end of stream; a returned batch stays valid
// until the following next call. close releases any resources (it is
// required even when next has not been drained — e.g. when a sibling
// stream errored mid-sweep).
type batchSource interface {
	next() ([]relstore.Record, error)
	close()
}

// memSource replays an in-memory record slice (the materialized root
// stream of a partition) as a single batch.
type memSource struct {
	recs []relstore.Record
	done bool
}

func (m *memSource) next() ([]relstore.Record, error) {
	if m.done || len(m.recs) == 0 {
		return nil, nil
	}
	m.done = true
	return m.recs, nil
}

func (m *memSource) close() {}

// syncSource pulls batches inline on the sweep goroutine — the fully
// sequential (Parallelism = 1) mode.
type syncSource struct {
	bi     relstore.BatchIter
	filter core.RecFilter
	buf    []relstore.Record
}

func newSyncSource(bi relstore.BatchIter, f core.RecFilter) *syncSource {
	return &syncSource{bi: bi, filter: f, buf: make([]relstore.Record, relstore.DefaultBatchSize)}
}

func (s *syncSource) next() ([]relstore.Record, error) {
	for {
		n, err := s.bi.NextBatch(s.buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		if recs := s.filter.Apply(s.buf[:n]); len(recs) > 0 {
			return recs, nil
		}
	}
}

func (s *syncSource) close() {}

// prefetchMsg carries one batch (or the stream's terminal error) from a
// prefetcher to its consumer.
type prefetchMsg struct {
	recs []relstore.Record
	err  error
}

// prefetchSource reads batches on a dedicated goroutine, keeping up to
// prefetchDepth filtered batches buffered ahead of the consumer. Each
// batch gets a fresh buffer, so the consumer may hold one while the
// producer fills the next. When tr is non-nil, the time the consumer
// spends blocked on the channel accumulates under PhasePrefetchStall —
// the sweep-side measure of how far prefetching fell behind.
type prefetchSource struct {
	ch     chan prefetchMsg
	stop   chan struct{}
	closed bool
	tr     *obs.Trace
}

func startPrefetch(bi relstore.BatchIter, f core.RecFilter, tr *obs.Trace) *prefetchSource {
	s := &prefetchSource{
		ch:   make(chan prefetchMsg, prefetchDepth),
		stop: make(chan struct{}),
		tr:   tr,
	}
	go func() {
		defer close(s.ch)
		for {
			buf := make([]relstore.Record, relstore.DefaultBatchSize)
			n, err := bi.NextBatch(buf)
			if err != nil {
				select {
				case s.ch <- prefetchMsg{err: err}:
				case <-s.stop:
				}
				return
			}
			if n == 0 {
				return
			}
			recs := f.Apply(buf[:n])
			if len(recs) == 0 {
				continue
			}
			select {
			case s.ch <- prefetchMsg{recs: recs}:
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

func (s *prefetchSource) next() ([]relstore.Record, error) {
	begin := s.tr.Begin()
	msg, ok := <-s.ch
	s.tr.End(obs.PhasePrefetchStall, begin)
	if !ok {
		return nil, nil
	}
	if msg.err != nil {
		return nil, msg.err
	}
	return msg.recs, nil
}

// close stops the producer goroutine. Safe to call after the stream is
// drained; must only be called from the consuming goroutine.
func (s *prefetchSource) close() {
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
}

// batchStream is the peekable cursor the sweep drives: head() is the
// next record in document order, advance() moves past it, refilling
// from the source batch by batch.
type batchStream struct {
	src batchSource
	cur []relstore.Record
	i   int
	eof bool
	err error
}

func newBatchStream(src batchSource) *batchStream {
	s := &batchStream{src: src}
	s.fill()
	return s
}

func (s *batchStream) fill() {
	for {
		recs, err := s.src.next()
		if err != nil {
			s.err = err
			s.eof = true
			return
		}
		if recs == nil {
			s.eof = true
			return
		}
		if len(recs) > 0 {
			s.cur, s.i = recs, 0
			return
		}
	}
}

func (s *batchStream) head() relstore.Record { return s.cur[s.i] }

func (s *batchStream) advance() {
	s.i++
	if s.i >= len(s.cur) {
		s.fill()
	}
}

func (s *batchStream) close() { s.src.close() }
