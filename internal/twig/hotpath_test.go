package twig

import (
	"sort"
	"testing"

	"repro/internal/analysis"
)

// TestHotpathAnnotations pins the //blas:hotpath annotation set to the
// functions the zero-alloc guards (TestJoinKeyZeroAlloc /
// BenchmarkJoinKey) actually measure. If an annotation drifts off a
// benchmarked function — renamed, moved, deleted — this fails loudly
// instead of letting hotalloc silently check nothing while the
// benchmark guards a function the analyzer no longer covers.
func TestHotpathAnnotations(t *testing.T) {
	got, err := analysis.HotpathFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"assignKey", "collectSolutions", "solutionKey", "spillStarts", "sweep"}
	for _, name := range want {
		if !got[name] {
			t.Errorf("%s lost its //blas:hotpath annotation; the BenchmarkJoinKey zero-alloc guard and hotalloc no longer cover the same code", name)
		}
	}
	if len(got) != len(want) {
		var names []string
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Errorf("//blas:hotpath set = %v, want exactly %v: annotate new hot functions here and add a zero-alloc benchmark guard for them", names, want)
	}
}
