package twig

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/translate"
	"repro/internal/xpath"
)

// TestManyLeavesSharedPrefix exercises the path-solution merge with
// three and four leaves hanging off nested branch points: the
// shared-prefix hash join must key on progressively longer prefixes.
func TestManyLeavesSharedPrefix(t *testing.T) {
	doc := `<db>
	  <rec><a>1</a><b>2</b><c>3</c><d><e>4</e><f>5</f></d></rec>
	  <rec><a>1</a><b>2</b><d><e>4</e></d></rec>
	  <rec><b>2</b><c>3</c><d><f>5</f></d></rec>
	  <rec><a>1</a><b>2</b><c>3</c><d><e>4</e><f>5</f></d></rec>
	</db>`
	st, tree, err := enginetest.MustBuild(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	queries := []string{
		"//rec[a][b][c]/d",                // three branches + continuation
		"//rec[a and b and c]/d[e and f]", // nested branch points
		"//rec[a][d/e]/c",
		"//rec[d[e][f]]/a",
		`//rec[a="1" and d[e="4"]]/c`,
	}
	for _, qs := range queries {
		want, err := enginetest.EvalStarts(tree, qs)
		if err != nil {
			t.Fatal(err)
		}
		for _, trName := range []string{"dlabel", "split", "pushup", "unfold"} {
			tr, _ := translate.ByName(trName)
			plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(qs))
			if err != nil {
				t.Fatalf("%s/%s: %v", qs, trName, err)
			}
			res, err := Execute(nil, st, planner.Fixed(plan), core.ExecConfig{})
			if err != nil {
				t.Fatalf("%s/%s: %v", qs, trName, err)
			}
			if !enginetest.StartsEqual(res.Starts(), want) {
				t.Errorf("%s [%s]: got %s want %s\n%s", qs, trName,
					enginetest.FormatStarts(res.Starts()), enginetest.FormatStarts(want), plan)
			}
		}
	}
}

// TestUnfoldFallbackEndToEnd: on a schema where unfolded fragments have
// ambiguous level gaps, Unfold degrades to Push-up — and must still
// return exactly the right answer on both engines.
func TestUnfoldFallbackEndToEnd(t *testing.T) {
	// b nests under both a and b, so //b unfolds to paths of different
	// lengths that are prefixes of each other: the ambiguous-gap case.
	doc := `<a>
	  <b><x>1</x><b><x>2</x><c>k</c></b></b>
	  <b><x>3</x></b>
	  <c>top</c>
	</a>`
	st, tree, err := enginetest.MustBuild(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
	q := "//b[x]/c"
	plan, err := translate.Unfold(ctx, xpath.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Note == "" {
		t.Fatalf("expected fallback for ambiguous gaps, got:\n%s", plan)
	}
	want, err := enginetest.EvalStarts(tree, q)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := relengine.Execute(nil, st, planner.Fixed(plan), relengine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !enginetest.StartsEqual(rres.Starts(), want) {
		t.Fatalf("relational fallback wrong: got %v want %v", rres.Starts(), want)
	}
	tres, err := Execute(nil, st, planner.Fixed(plan), core.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !enginetest.StartsEqual(tres.Starts(), want) {
		t.Fatalf("twig fallback wrong: got %v want %v", tres.Starts(), want)
	}
}

// TestPLabelSetStreams: recursive schemas make Unfold produce plabel-set
// fragments (unions of equality selections); both engines must merge the
// per-label runs into document order correctly.
func TestPLabelSetStreams(t *testing.T) {
	doc := `<site><desc>
	  <parlist><listitem>l1<parlist><listitem>l2</listitem></parlist></listitem><listitem>l3</listitem></parlist>
	</desc><desc><parlist><listitem>l4</listitem></parlist></desc></site>`
	st, tree, err := enginetest.MustBuild(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}

	q := "/site/desc//listitem"
	plan, err := translate.Unfold(ctx, xpath.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	ret := plan.Fragments[plan.Return]
	if ret.Access.Kind != translate.AccessPLabelSet {
		t.Fatalf("expected a plabel-set fragment, got %v\n%s", ret.Access.Kind, plan)
	}
	want, _ := enginetest.EvalStarts(tree, q)
	res, err := Execute(nil, st, planner.Fixed(plan), core.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !enginetest.StartsEqual(res.Starts(), want) {
		t.Fatalf("twig set-scan: got %v want %v", res.Starts(), want)
	}
	rres, err := relengine.Execute(nil, st, planner.Fixed(plan), relengine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !enginetest.StartsEqual(rres.Starts(), want) {
		t.Fatalf("relational set-scan: got %v want %v", rres.Starts(), want)
	}
}

// TestDeepRecursionStress: heavily self-nested documents produce deep
// stacks and many path solutions per leaf; differential-check against
// the reference evaluator.
func TestDeepRecursionStress(t *testing.T) {
	rnd := rand.New(rand.NewSource(4242))
	p := enginetest.DocParams{
		Tags:     []string{"n", "m"}, // tiny alphabet = heavy self-nesting
		MaxDepth: 10,
		MaxKids:  3,
		Values:   []string{"", "", "v1", "v2"},
	}
	for docIdx := 0; docIdx < 6; docIdx++ {
		tree := enginetest.RandomDoc(rnd, p)
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range []string{
			"//n//n//n",
			"//n[m]/n",
			"//n[n[m]]//m",
			"//m//n/m",
			"/n//n[n and m]",
		} {
			want, err := enginetest.EvalStarts(tree, qs)
			if err != nil {
				t.Fatal(err)
			}
			for _, trName := range []string{"dlabel", "split", "pushup"} {
				tr, _ := translate.ByName(trName)
				plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(qs))
				if err != nil {
					t.Fatal(err)
				}
				res, err := Execute(nil, st, planner.Fixed(plan), core.ExecConfig{})
				if err != nil {
					t.Fatalf("%s/%s: %v", qs, trName, err)
				}
				if !enginetest.StartsEqual(res.Starts(), want) {
					t.Errorf("doc %d %s [%s]: got %s want %s", docIdx, qs, trName,
						enginetest.FormatStarts(res.Starts()), enginetest.FormatStarts(want))
				}
			}
		}
		st.Close()
	}
}
