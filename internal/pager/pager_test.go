package pager

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestAllocReadWriteMem(t *testing.T) {
	f := OpenMem(4)
	defer f.Close()

	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first page id = %d", id)
	}
	if err := f.Update(id, func(p []byte) error {
		copy(p, "hello page")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := f.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("hello page")) {
		t.Fatalf("read back %q", buf[:16])
	}
}

func TestOutOfRange(t *testing.T) {
	f := OpenMem(4)
	defer f.Close()
	if err := f.Read(0, make([]byte, PageSize)); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestEvictionAndCounters(t *testing.T) {
	f := OpenMem(2) // tiny pool to force eviction
	defer f.Close()

	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Update(id, func(p []byte) error {
			p[0] = byte(i + 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// All four pages must read back correctly despite evictions.
	for i, id := range ids {
		buf := make([]byte, PageSize)
		if err := f.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d byte = %d, want %d", id, buf[0], i+1)
		}
	}
	st := f.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with pool of 2 and 4 pages")
	}
	if st.Misses == 0 {
		t.Fatal("expected misses after eviction")
	}
	if st.Reads < st.Misses {
		t.Fatalf("reads %d < misses %d", st.Reads, st.Misses)
	}
}

func TestHitsNoMissWhenResident(t *testing.T) {
	f := OpenMem(8)
	defer f.Close()
	id, _ := f.Alloc()
	_ = f.Update(id, func(p []byte) error { p[0] = 9; return nil })
	f.ResetStats()
	buf := make([]byte, PageSize)
	for i := 0; i < 5; i++ {
		if err := f.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Misses != 0 {
		t.Fatalf("misses = %d, want 0 (page resident)", st.Misses)
	}
	if st.Hits() != 5 {
		t.Fatalf("hits = %d, want 5", st.Hits())
	}
}

func TestDropCacheForcesColdReads(t *testing.T) {
	f := OpenMem(8)
	defer f.Close()
	id, _ := f.Alloc()
	_ = f.Update(id, func(p []byte) error { p[0] = 7; return nil })
	if err := f.DropCache(); err != nil {
		t.Fatal(err)
	}
	f.ResetStats()
	buf := make([]byte, PageSize)
	if err := f.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("data lost across DropCache")
	}
	if f.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1 after cold cache", f.Stats().Misses)
	}
}

func TestDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.pg")
	f, err := Open(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Update(id, func(p []byte) error {
			p[100] = byte(i * 3)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 10 {
		t.Fatalf("NumPages = %d, want 10", f2.NumPages())
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if err := f2.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[100] != byte(i*3) {
			t.Fatalf("page %d: byte = %d, want %d", id, buf[100], i*3)
		}
	}
}

func TestOpenRejectsCorruptSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pg")
	f, err := Open(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Append garbage to desync the size.
	if err := appendByte(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 4); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestRandomizedPagesAgainstShadow(t *testing.T) {
	f := OpenMem(3)
	defer f.Close()
	r := rand.New(rand.NewSource(5))
	shadow := map[PageID][]byte{}
	var ids []PageID
	for step := 0; step < 2000; step++ {
		switch {
		case len(ids) == 0 || r.Intn(10) == 0:
			id, err := f.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			shadow[id] = make([]byte, PageSize)
		case r.Intn(2) == 0: // write
			id := ids[r.Intn(len(ids))]
			off := r.Intn(PageSize)
			b := byte(r.Intn(256))
			if err := f.Update(id, func(p []byte) error {
				p[off] = b
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			shadow[id][off] = b
		default: // read & verify
			id := ids[r.Intn(len(ids))]
			if err := f.View(id, func(p []byte) error {
				if !bytes.Equal(p, shadow[id]) {
					t.Fatalf("step %d: page %d diverged from shadow", step, id)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestShardCountCappedByPoolSize(t *testing.T) {
	f := OpenMemConfig(Config{PoolPages: 2, Shards: 64})
	defer f.Close()
	if got := f.NumShards(); got > 2 {
		t.Fatalf("NumShards = %d, want <= PoolPages (2)", got)
	}
	f2 := OpenMemConfig(Config{PoolPages: 512, Shards: 3})
	defer f2.Close()
	if got := f2.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4 (next power of two >= 3)", got)
	}
}

// TestViewSurvivesDropCache exercises the pin contract directly: a view
// callback that drops the whole cache mid-read must keep seeing its own
// page's bytes (the frame's buffer is discarded, never reused), and the
// page must still read back correctly afterwards.
func TestViewSurvivesDropCache(t *testing.T) {
	f := OpenMemConfig(Config{PoolPages: 4, Shards: 1})
	defer f.Close()
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Update(id, func(p []byte) error { p[0] = 42; return nil }); err != nil {
		t.Fatal(err)
	}
	err = f.View(id, func(p []byte) error {
		if p[0] != 42 {
			t.Fatalf("before drop: p[0] = %d", p[0])
		}
		if err := f.DropCache(); err != nil {
			return err
		}
		if p[0] != 42 {
			t.Fatalf("after drop: pinned view lost its data (p[0] = %d)", p[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := f.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("reread after drop: byte = %d, want 42", buf[0])
	}
	if f.Stats().Misses == 0 {
		t.Fatal("expected a miss after DropCache")
	}
}

// TestEvictionSkipsPinnedFrame pins one page and then drives enough
// traffic through its (only) shard to evict everything evictable; the
// pinned page's buffer must stay intact throughout.
func TestEvictionSkipsPinnedFrame(t *testing.T) {
	f := OpenMemConfig(Config{PoolPages: 2, Shards: 1})
	defer f.Close()
	const pages = 8
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Update(id, func(p []byte) error { p[0] = byte(i + 1); return nil }); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	err := f.View(ids[0], func(p []byte) error {
		// Touch every other page; with cap 2 and one shard this evicts on
		// nearly every access, but never the pinned frame.
		for round := 0; round < 3; round++ {
			for i := 1; i < pages; i++ {
				if err := f.View(ids[i], func(q []byte) error {
					if q[0] != byte(i+1) {
						t.Fatalf("page %d: byte = %d, want %d", ids[i], q[0], i+1)
					}
					return nil
				}); err != nil {
					return err
				}
			}
			if p[0] != 1 {
				t.Fatalf("round %d: pinned page corrupted (byte = %d)", round, p[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().Evictions == 0 {
		t.Fatal("expected evictions under cache pressure")
	}
}

func appendByte(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0xAB})
	return err
}

// TestShardStatsAggregate pins the per-shard counter contract: File.Stats
// reads/misses/evictions are exactly the sum over ShardStats, requests
// actually land on the shard owning the page, and ResetStats zeroes the
// shard counters too.
func TestShardStatsAggregate(t *testing.T) {
	const pages = 32
	f := OpenMemConfig(Config{PoolPages: 8, Shards: 4})
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Update(id, func(p []byte) error { p[0] = byte(i); return nil }); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := f.DropCache(); err != nil {
		t.Fatal(err)
	}
	f.ResetStats()

	// Two sweeps: the first misses everywhere (pool is cold and smaller
	// than the file, with evictions), the second adds reads on every shard.
	for round := 0; round < 2; round++ {
		for _, id := range ids {
			if err := f.View(id, func([]byte) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
	}

	shards := f.ShardStats()
	if len(shards) != f.NumShards() {
		t.Fatalf("ShardStats has %d rows, NumShards = %d", len(shards), f.NumShards())
	}
	var sum ShardStats
	for i, sh := range shards {
		if sh.Reads == 0 {
			t.Errorf("shard %d saw no reads; expected the sweep to hit every stripe", i)
		}
		sum.Reads += sh.Reads
		sum.Misses += sh.Misses
		sum.Evictions += sh.Evictions
	}
	st := f.Stats()
	if st.Reads != sum.Reads || st.Misses != sum.Misses || st.Evictions != sum.Evictions {
		t.Fatalf("Stats (%d/%d/%d) != shard sums (%d/%d/%d)",
			st.Reads, st.Misses, st.Evictions, sum.Reads, sum.Misses, sum.Evictions)
	}
	if st.Reads != 2*pages {
		t.Errorf("reads = %d, want %d", st.Reads, 2*pages)
	}
	if st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("cold sweep over an 8-frame pool should miss and evict (misses %d, evictions %d)", st.Misses, st.Evictions)
	}

	f.ResetStats()
	st = f.Stats()
	if st.Reads != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("after ResetStats: %+v", st)
	}
	for i, sh := range f.ShardStats() {
		if sh != (ShardStats{}) {
			t.Fatalf("after ResetStats shard %d = %+v", i, sh)
		}
	}
}
