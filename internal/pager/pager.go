// Package pager provides a paged file abstraction with a sharded,
// pinning LRU buffer pool.
//
// BLAS stores its relations and indexes in fixed-size pages. All reads go
// through the buffer pool, whose miss counter is the concrete realization
// of the paper's "disk access" metric: a page that is not resident costs
// one disk access, a resident page costs none. The experiments in §5
// compare approaches by the number of such accesses, so the pool keeps
// per-file statistics that the benchmark harness reports.
//
// The pager supports both on-disk files (via os.File) and in-memory files
// (for tests and ephemeral stores).
//
// # Sharding
//
// The pool is striped into N shards (N a power of two, default
// nextPow2(GOMAXPROCS), capped at the pool capacity), each with its own
// mutex, frame map and LRU list. Page id i lives in shard i&(N-1), so a
// sequential scan round-robins across shards and two goroutines scanning
// different pages contend only when their pages share a shard. All stats
// counters are atomics, so hot-path accounting never takes a lock;
// reads, misses and evictions are kept per shard (ShardStats) and
// aggregated by Stats, giving metrics exporters a view of how page
// traffic spreads across the stripes.
//
// # Pinning
//
// View, ViewCounted and Update pin the frame, release the shard lock,
// run the callback, then unpin. Page decoding and backing-store misses of
// different pages therefore overlap instead of serializing on a
// file-wide mutex. The pin protocol callers must observe:
//
//   - The page slice passed to a callback is valid only for the duration
//     of the call. Copy anything that must outlive it (all in-tree
//     callers do: pbtree copies whole pages, relstore decodes records by
//     value).
//   - Pinned frames are eviction-exempt: eviction scans the LRU from the
//     tail for an unpinned victim and, if every frame in the shard is
//     pinned, grows the shard transiently past its capacity rather than
//     reusing a buffer a reader is still looking at.
//   - Readers never mutate the page; writers (Update) must not run
//     concurrently with readers of the same page. BLAS satisfies this by
//     lifecycle: relations are written single-threaded at build time and
//     immutable afterwards.
//
// DropCache may run concurrently with readers: it discards frames from
// the pool without reusing their buffers, so a pinned reader keeps a
// valid (garbage-collector-protected) snapshot while subsequent requests
// for the page miss and fetch a fresh frame.
package pager

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every page in bytes.
const PageSize = 8192

// PageID identifies a page within a file.
type PageID uint32

// Stats counts buffer pool traffic.
type Stats struct {
	Reads      uint64 // page requests
	Misses     uint64 // requests that had to fetch from the backing file
	Writes     uint64 // page writes to the backing file
	Allocs     uint64 // pages allocated
	Evictions  uint64 // pages evicted from the pool
	BytesRead  uint64
	BytesWrite uint64
}

// Hits returns the number of requests served from the pool.
func (s Stats) Hits() uint64 { return s.Reads - s.Misses }

// ShardStats counts one pool shard's traffic. Reads, misses and
// evictions are maintained per shard (File.Stats aggregates them), so a
// metrics exporter can see whether page traffic actually spreads across
// the lock stripes or piles onto a hot shard.
type ShardStats struct {
	Reads     uint64 // page requests routed to this shard
	Misses    uint64 // requests that fetched from the backing file
	Evictions uint64 // frames evicted from this shard
}

// fileStats is the live, atomically-updated form of the file-wide Stats
// counters: the hot path increments these without holding any lock.
// Reads, misses and evictions live on the shards instead.
type fileStats struct {
	writes     atomic.Uint64
	allocs     atomic.Uint64
	bytesRead  atomic.Uint64
	bytesWrite atomic.Uint64
}

func (s *fileStats) reset() {
	s.writes.Store(0)
	s.allocs.Store(0)
	s.bytesRead.Store(0)
	s.bytesWrite.Store(0)
}

// Counters accumulates page-access statistics for one caller — the
// per-query attribution that File.Stats (a lifetime aggregate shared by
// every reader of the file) cannot provide. A nil *Counters is valid and
// discards the counts. Safe for concurrent use.
type Counters struct {
	Reads  atomic.Uint64 // page requests
	Misses atomic.Uint64 // requests that went to the backing file
}

// count records one page request, nil-safely.
func (c *Counters) count(miss bool) {
	if c == nil {
		return
	}
	c.Reads.Add(1)
	if miss {
		c.Misses.Add(1)
	}
}

// backing abstracts the storage under a paged file.
type backing interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Close() error
	Sync() error
}

// memBacking is an in-memory backing store. Reads take the read lock so
// that concurrent pool misses in different shards overlap, mirroring how
// independent preads overlap on an os.File.
type memBacking struct {
	mu  sync.RWMutex
	buf []byte
}

func (m *memBacking) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (m *memBacking) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		grown := make([]byte, need)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func (m *memBacking) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.buf)) {
		m.buf = m.buf[:size]
	}
	return nil
}

func (m *memBacking) Close() error { return nil }
func (m *memBacking) Sync() error  { return nil }

// Config configures a paged file's buffer pool.
type Config struct {
	// PoolPages is the total pool capacity in pages across all shards;
	// <= 0 selects DefaultPoolPages.
	PoolPages int
	// Shards is the number of lock-striped pool shards, rounded up to a
	// power of two and capped at PoolPages; <= 0 selects
	// nextPow2(GOMAXPROCS).
	Shards int
}

// File is a paged file fronted by a sharded buffer pool.
type File struct {
	back   backing
	npages atomic.Uint32
	shards []shard
	mask   uint32 // len(shards)-1; shard of page id is id&mask
	stats  fileStats
}

// shard is one lock stripe of the pool: a frame map plus an LRU list,
// guarded by its own mutex. Frames are looked up, pinned and unpinned
// under mu; callbacks run outside it. The traffic counters are atomics
// so ShardStats snapshots never take the shard locks.
type shard struct {
	mu      sync.Mutex
	pool    map[PageID]*frame
	lruHead *frame // most recently used
	lruTail *frame // least recently used
	cap     int

	reads     atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

func (sh *shard) statsSnapshot() ShardStats {
	return ShardStats{
		Reads:     sh.reads.Load(),
		Misses:    sh.misses.Load(),
		Evictions: sh.evictions.Load(),
	}
}

type frame struct {
	id         PageID
	data       []byte
	dirty      bool
	pins       int // readers currently outside the shard lock; guarded by shard.mu
	prev, next *frame
}

// DefaultPoolPages is the default buffer pool capacity in pages (4 MiB).
const DefaultPoolPages = 512

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open opens (or creates) a paged file at path with the given buffer pool
// capacity in pages and the default shard count. poolPages <= 0 selects
// DefaultPoolPages.
func Open(path string, poolPages int) (*File, error) {
	return OpenConfig(path, Config{PoolPages: poolPages})
}

// OpenConfig opens (or creates) a paged file at path with an explicit
// pool configuration.
func OpenConfig(path string, cfg Config) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("pager: %s: size %d is not a multiple of the page size", path, info.Size())
	}
	return newFile(f, uint32(info.Size()/PageSize), cfg), nil
}

// OpenMem returns a paged file backed by memory, for tests and ephemeral
// stores. Pool misses still count, so access statistics remain meaningful.
func OpenMem(poolPages int) *File {
	return OpenMemConfig(Config{PoolPages: poolPages})
}

// OpenMemConfig is OpenMem with an explicit pool configuration.
func OpenMemConfig(cfg Config) *File {
	return newFile(&memBacking{}, 0, cfg)
}

func newFile(b backing, npages uint32, cfg Config) *File {
	poolPages := cfg.PoolPages
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	nshards = nextPow2(nshards)
	// A shard needs at least one frame of capacity; tiny pools get fewer
	// shards rather than a silently inflated capacity.
	for nshards > 1 && nshards > poolPages {
		nshards >>= 1
	}
	f := &File{
		back:   b,
		shards: make([]shard, nshards),
		mask:   uint32(nshards - 1),
	}
	f.npages.Store(npages)
	for i := range f.shards {
		// Distribute the capacity; the first poolPages%nshards shards
		// absorb the remainder so the total is exactly poolPages.
		c := poolPages / nshards
		if i < poolPages%nshards {
			c++
		}
		f.shards[i] = shard{pool: make(map[PageID]*frame, c), cap: c}
	}
	return f
}

// shardOf returns the shard owning page id.
func (f *File) shardOf(id PageID) *shard { return &f.shards[uint32(id)&f.mask] }

// NumShards returns the number of pool shards (for tests and tuning).
func (f *File) NumShards() int { return len(f.shards) }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() uint32 { return f.npages.Load() }

// Stats returns a snapshot of the access statistics: the file-level
// counters plus the per-shard reads/misses/evictions summed across
// shards.
func (f *File) Stats() Stats {
	s := Stats{
		Writes:     f.stats.writes.Load(),
		Allocs:     f.stats.allocs.Load(),
		BytesRead:  f.stats.bytesRead.Load(),
		BytesWrite: f.stats.bytesWrite.Load(),
	}
	for i := range f.shards {
		sh := f.shards[i].statsSnapshot()
		s.Reads += sh.Reads
		s.Misses += sh.Misses
		s.Evictions += sh.Evictions
	}
	return s
}

// ShardStats returns a snapshot of each pool shard's traffic, indexed
// like the shards themselves (page id & mask). The snapshot is taken
// lock-free shard by shard; under concurrent traffic the per-shard rows
// may be skewed against each other, but each row is self-consistent and
// the totals match what Stats aggregates.
func (f *File) ShardStats() []ShardStats {
	out := make([]ShardStats, len(f.shards))
	for i := range f.shards {
		out[i] = f.shards[i].statsSnapshot()
	}
	return out
}

// ResetStats zeroes the access statistics (the buffer pool contents are
// kept; use DropCache to empty the pool as well).
func (f *File) ResetStats() {
	f.stats.reset()
	for i := range f.shards {
		sh := &f.shards[i]
		sh.reads.Store(0)
		sh.misses.Store(0)
		sh.evictions.Store(0)
	}
}

// DropCache flushes and evicts every pooled page, simulating a cold cache.
// The paper's experiments run on a cold cache (§5.1). A dirty-page write
// error does not abort the drain: every frame is still dropped, and the
// first error is returned. Concurrent readers are unaffected — their
// pinned frames keep valid buffers, which are discarded rather than
// reused (see the package documentation).
func (f *File) DropCache() error {
	var firstErr error
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for id, fr := range sh.pool {
			if fr.dirty {
				if err := f.writeFrame(fr); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			sh.lruUnlink(fr)
			delete(sh.pool, id)
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Alloc allocates a fresh zeroed page and returns its id.
func (f *File) Alloc() (PageID, error) {
	id := PageID(f.npages.Add(1) - 1)
	f.stats.allocs.Add(1)
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr, err := f.frameFor(sh, id, false)
	if err != nil {
		return 0, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.dirty = true
	return id, nil
}

// Read copies page id into a caller-owned buffer of PageSize bytes.
func (f *File) Read(id PageID, dst []byte) error {
	return f.ReadCounted(id, dst, nil)
}

// ReadCounted is Read with per-caller page accounting: the request (and
// miss, if any) is also recorded in c when c is non-nil.
func (f *File) ReadCounted(id PageID, dst []byte, c *Counters) error {
	return f.ViewCounted(id, c, func(page []byte) error {
		copy(dst, page)
		return nil
	})
}

// View calls fn with the contents of page id. The slice is only valid for
// the duration of the call and must not be modified.
func (f *File) View(id PageID, fn func(page []byte) error) error {
	return f.ViewCounted(id, nil, fn)
}

// ViewCounted is View with per-caller page accounting into c (nil c
// counts only into the file's lifetime Stats). The frame is pinned and
// the shard lock released before fn runs, so concurrent views of
// different pages — including their backing-store misses — overlap.
func (f *File) ViewCounted(id PageID, c *Counters, fn func(page []byte) error) error {
	sh := f.shardOf(id)
	sh.mu.Lock()
	fr, err := f.pageIn(sh, id, c)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	fr.pins++
	sh.mu.Unlock()
	// Unpin via defer: a panicking callback (or runtime.Goexit from a
	// test helper) must not leave the frame eviction-exempt forever.
	defer func() {
		sh.mu.Lock()
		fr.pins--
		sh.mu.Unlock()
	}()
	return fn(fr.data)
}

// Update calls fn with the mutable contents of page id and marks it
// dirty. Like View it pins the frame and runs fn outside the shard lock;
// callers must not update a page that concurrent readers may be viewing
// (BLAS builds single-threaded, then reads immutably).
func (f *File) Update(id PageID, fn func(page []byte) error) error {
	sh := f.shardOf(id)
	sh.mu.Lock()
	fr, err := f.pageIn(sh, id, nil)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	fr.dirty = true
	fr.pins++
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		fr.pins--
		sh.mu.Unlock()
	}()
	return fn(fr.data)
}

// pageIn returns the frame for id, fetching it on a miss.
// Caller holds sh.mu; sh owns id.
func (f *File) pageIn(sh *shard, id PageID, c *Counters) (*frame, error) {
	if id >= PageID(f.npages.Load()) {
		return nil, fmt.Errorf("pager: page %d out of range (have %d)", id, f.npages.Load())
	}
	sh.reads.Add(1)
	if fr, ok := sh.pool[id]; ok {
		sh.lruTouch(fr)
		c.count(false)
		return fr, nil
	}
	sh.misses.Add(1)
	c.count(true)
	return f.frameFor(sh, id, true)
}

// frameFor finds a frame for id, evicting if necessary, optionally
// loading the page contents from the backing store. Pinned frames are
// never chosen as eviction victims — their buffers are in use outside
// the lock — so an all-pinned shard grows past its capacity transiently
// instead. Caller holds sh.mu; sh owns id.
func (f *File) frameFor(sh *shard, id PageID, load bool) (*frame, error) {
	if fr, ok := sh.pool[id]; ok {
		sh.lruTouch(fr)
		return fr, nil
	}
	var fr *frame
	// Evict least-recently-used unpinned frames until the insert below
	// lands within capacity. Usually that is one eviction (or none), but
	// a shard that overflowed while all its frames were pinned shrinks
	// back here as soon as pins release. The first victim's buffer is
	// reused; surplus victims are dropped for the GC.
	for len(sh.pool) >= sh.cap {
		victim := sh.lruTail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			break // every frame pinned: grow transiently
		}
		if victim.dirty {
			if err := f.writeFrame(victim); err != nil {
				return nil, err
			}
		}
		sh.lruUnlink(victim)
		delete(sh.pool, victim.id)
		sh.evictions.Add(1)
		if fr == nil {
			fr = victim
			fr.dirty = false
		}
	}
	if fr == nil {
		fr = &frame{data: make([]byte, PageSize)}
	}
	fr.id = id
	if load {
		n, err := f.back.ReadAt(fr.data, int64(id)*PageSize)
		if err != nil && !(err == io.EOF && n == 0) && err != io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pager: read page %d: %w", id, err)
		}
		// Pages past the materialized end of file read as zeroes.
		for i := n; i < PageSize; i++ {
			fr.data[i] = 0
		}
		f.stats.bytesRead.Add(PageSize)
	}
	sh.pool[id] = fr
	sh.lruPush(fr)
	return fr, nil
}

// writeFrame flushes one dirty frame. Caller holds the owning shard's mu
// (the backing store is itself safe for concurrent WriteAt calls from
// different shards).
func (f *File) writeFrame(fr *frame) error {
	if _, err := f.back.WriteAt(fr.data, int64(fr.id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	f.stats.writes.Add(1)
	f.stats.bytesWrite.Add(PageSize)
	return nil
}

// Flush writes all dirty pages to the backing store and syncs it.
func (f *File) Flush() error {
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, fr := range sh.pool {
			if fr.dirty {
				if err := f.writeFrame(fr); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	return f.back.Sync()
}

// Close flushes and closes the file.
func (f *File) Close() error {
	if err := f.Flush(); err != nil {
		_ = f.back.Close()
		return err
	}
	return f.back.Close()
}

// --- LRU list maintenance (caller holds the shard's mu) ---

func (sh *shard) lruPush(fr *frame) {
	fr.prev = nil
	fr.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = fr
	}
	sh.lruHead = fr
	if sh.lruTail == nil {
		sh.lruTail = fr
	}
}

func (sh *shard) lruUnlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else if sh.lruHead == fr {
		sh.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else if sh.lruTail == fr {
		sh.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (sh *shard) lruTouch(fr *frame) {
	if sh.lruHead == fr {
		return
	}
	sh.lruUnlink(fr)
	sh.lruPush(fr)
}
