// Package pager provides a paged file abstraction with an LRU buffer pool.
//
// BLAS stores its relations and indexes in fixed-size pages. All reads go
// through the buffer pool, whose miss counter is the concrete realization
// of the paper's "disk access" metric: a page that is not resident costs
// one disk access, a resident page costs none. The experiments in §5
// compare approaches by the number of such accesses, so the pool keeps
// per-file statistics that the benchmark harness reports.
//
// The pager supports both on-disk files (via os.File) and in-memory files
// (for tests and ephemeral stores).
package pager

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every page in bytes.
const PageSize = 8192

// PageID identifies a page within a file.
type PageID uint32

// Stats counts buffer pool traffic.
type Stats struct {
	Reads      uint64 // page requests
	Misses     uint64 // requests that had to fetch from the backing file
	Writes     uint64 // page writes to the backing file
	Allocs     uint64 // pages allocated
	Evictions  uint64 // pages evicted from the pool
	BytesRead  uint64
	BytesWrite uint64
}

// Hits returns the number of requests served from the pool.
func (s Stats) Hits() uint64 { return s.Reads - s.Misses }

// Counters accumulates page-access statistics for one caller — the
// per-query attribution that File.Stats (a lifetime aggregate shared by
// every reader of the file) cannot provide. A nil *Counters is valid and
// discards the counts. Safe for concurrent use.
type Counters struct {
	Reads  atomic.Uint64 // page requests
	Misses atomic.Uint64 // requests that went to the backing file
}

// count records one page request, nil-safely.
func (c *Counters) count(miss bool) {
	if c == nil {
		return
	}
	c.Reads.Add(1)
	if miss {
		c.Misses.Add(1)
	}
}

// backing abstracts the storage under a paged file.
type backing interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Close() error
	Sync() error
}

// memBacking is an in-memory backing store.
type memBacking struct {
	mu  sync.Mutex
	buf []byte
}

func (m *memBacking) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (m *memBacking) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		grown := make([]byte, need)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func (m *memBacking) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.buf)) {
		m.buf = m.buf[:size]
	}
	return nil
}

func (m *memBacking) Close() error { return nil }
func (m *memBacking) Sync() error  { return nil }

// File is a paged file fronted by a buffer pool.
type File struct {
	mu      sync.Mutex
	back    backing
	npages  uint32
	pool    map[PageID]*frame
	lruHead *frame // most recently used
	lruTail *frame // least recently used
	cap     int
	stats   Stats
}

type frame struct {
	id         PageID
	data       []byte
	dirty      bool
	prev, next *frame
}

// DefaultPoolPages is the default buffer pool capacity in pages (4 MiB).
const DefaultPoolPages = 512

// Open opens (or creates) a paged file at path with the given buffer pool
// capacity in pages. poolPages <= 0 selects DefaultPoolPages.
func Open(path string, poolPages int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s: size %d is not a multiple of the page size", path, info.Size())
	}
	return newFile(f, uint32(info.Size()/PageSize), poolPages), nil
}

// OpenMem returns a paged file backed by memory, for tests and ephemeral
// stores. Pool misses still count, so access statistics remain meaningful.
func OpenMem(poolPages int) *File {
	return newFile(&memBacking{}, 0, poolPages)
}

func newFile(b backing, npages uint32, poolPages int) *File {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	return &File{
		back:   b,
		npages: npages,
		pool:   make(map[PageID]*frame, poolPages),
		cap:    poolPages,
	}
}

// NumPages returns the number of allocated pages.
func (f *File) NumPages() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.npages
}

// Stats returns a snapshot of the access statistics.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ResetStats zeroes the access statistics (the buffer pool contents are
// kept; use DropCache to empty the pool as well).
func (f *File) ResetStats() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = Stats{}
}

// DropCache flushes and evicts every pooled page, simulating a cold cache.
// The paper's experiments run on a cold cache (§5.1).
func (f *File) DropCache() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, fr := range f.pool {
		if fr.dirty {
			if err := f.writeFrame(fr); err != nil {
				return err
			}
		}
		f.lruUnlink(fr)
		delete(f.pool, id)
	}
	return nil
}

// Alloc allocates a fresh zeroed page and returns its id.
func (f *File) Alloc() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := PageID(f.npages)
	f.npages++
	f.stats.Allocs++
	fr, err := f.frameFor(id, false)
	if err != nil {
		return 0, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.dirty = true
	return id, nil
}

// Read copies page id into a caller-owned buffer of PageSize bytes.
func (f *File) Read(id PageID, dst []byte) error {
	return f.ReadCounted(id, dst, nil)
}

// ReadCounted is Read with per-caller page accounting: the request (and
// miss, if any) is also recorded in c when c is non-nil.
func (f *File) ReadCounted(id PageID, dst []byte, c *Counters) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fr, err := f.pageIn(id, c)
	if err != nil {
		return err
	}
	copy(dst, fr.data)
	return nil
}

// View calls fn with the contents of page id. The slice is only valid for
// the duration of the call and must not be modified.
func (f *File) View(id PageID, fn func(page []byte) error) error {
	return f.ViewCounted(id, nil, fn)
}

// ViewCounted is View with per-caller page accounting into c (nil c
// counts only into the file's lifetime Stats).
func (f *File) ViewCounted(id PageID, c *Counters, fn func(page []byte) error) error {
	f.mu.Lock()
	fr, err := f.pageIn(id, c)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	// Hold the lock during fn: frames may be evicted concurrently otherwise.
	defer f.mu.Unlock()
	return fn(fr.data)
}

// Update calls fn with the mutable contents of page id and marks it dirty.
func (f *File) Update(id PageID, fn func(page []byte) error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fr, err := f.pageIn(id, nil)
	if err != nil {
		return err
	}
	fr.dirty = true
	return fn(fr.data)
}

// pageIn returns the frame for id, fetching it on a miss.
// Caller holds f.mu.
func (f *File) pageIn(id PageID, c *Counters) (*frame, error) {
	if id >= PageID(f.npages) {
		return nil, fmt.Errorf("pager: page %d out of range (have %d)", id, f.npages)
	}
	f.stats.Reads++
	if fr, ok := f.pool[id]; ok {
		f.lruTouch(fr)
		c.count(false)
		return fr, nil
	}
	f.stats.Misses++
	c.count(true)
	fr, err := f.frameFor(id, true)
	if err != nil {
		return nil, err
	}
	return fr, nil
}

// frameFor finds a frame for id, evicting if necessary, optionally loading
// the page contents from the backing store. Caller holds f.mu.
func (f *File) frameFor(id PageID, load bool) (*frame, error) {
	if fr, ok := f.pool[id]; ok {
		f.lruTouch(fr)
		return fr, nil
	}
	var fr *frame
	if len(f.pool) >= f.cap {
		// Evict the least recently used frame.
		victim := f.lruTail
		if victim == nil {
			return nil, fmt.Errorf("pager: buffer pool corrupted: no LRU tail with %d frames", len(f.pool))
		}
		if victim.dirty {
			if err := f.writeFrame(victim); err != nil {
				return nil, err
			}
		}
		f.lruUnlink(victim)
		delete(f.pool, victim.id)
		f.stats.Evictions++
		fr = victim
		fr.dirty = false
	} else {
		fr = &frame{data: make([]byte, PageSize)}
	}
	fr.id = id
	if load {
		n, err := f.back.ReadAt(fr.data, int64(id)*PageSize)
		if err != nil && !(err == io.EOF && n == 0) && err != io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pager: read page %d: %w", id, err)
		}
		// Pages past the materialized end of file read as zeroes.
		for i := n; i < PageSize; i++ {
			fr.data[i] = 0
		}
		f.stats.BytesRead += uint64(PageSize)
	}
	f.pool[id] = fr
	f.lruPush(fr)
	return fr, nil
}

func (f *File) writeFrame(fr *frame) error {
	if _, err := f.back.WriteAt(fr.data, int64(fr.id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	f.stats.Writes++
	f.stats.BytesWrite += uint64(PageSize)
	return nil
}

// Flush writes all dirty pages to the backing store and syncs it.
func (f *File) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fr := range f.pool {
		if fr.dirty {
			if err := f.writeFrame(fr); err != nil {
				return err
			}
		}
	}
	return f.back.Sync()
}

// Close flushes and closes the file.
func (f *File) Close() error {
	if err := f.Flush(); err != nil {
		f.back.Close()
		return err
	}
	return f.back.Close()
}

// --- LRU list maintenance (caller holds f.mu) ---

func (f *File) lruPush(fr *frame) {
	fr.prev = nil
	fr.next = f.lruHead
	if f.lruHead != nil {
		f.lruHead.prev = fr
	}
	f.lruHead = fr
	if f.lruTail == nil {
		f.lruTail = fr
	}
}

func (f *File) lruUnlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else if f.lruHead == fr {
		f.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else if f.lruTail == fr {
		f.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (f *File) lruTouch(fr *frame) {
	if f.lruHead == fr {
		return
	}
	f.lruUnlink(fr)
	f.lruPush(fr)
}
