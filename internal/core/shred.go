package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/dlabel"
	"repro/internal/plabel"
	"repro/internal/relstore"
	"repro/internal/sax"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// The index generator (paper Fig. 6, §4): consume SAX events, assign the
// D-label and P-label of every element and attribute node, collect text
// values, and bulk-load the SP and SD relations.
//
// P-labeling needs the tag universe before the first node is labeled, so
// shredding is a two-pass process: pass 1 collects tags, the schema graph
// and the maximum depth; pass 2 assigns labels. BuildFromTree walks an
// in-memory tree twice; BuildFromFile streams the file twice, keeping
// memory proportional to the record set, not the document.

// BuildFromTree shreds an in-memory document tree into a new store.
func BuildFromTree(root *xmltree.Node, opts Options) (*Store, error) {
	if root == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	// Pass 1: tag universe, schema, depth.
	graph := schema.FromTree(root)
	tags := xmltree.DistinctTags(root)
	scheme, err := plabel.NewScheme(tags)
	if err != nil {
		return nil, err
	}

	// Pass 2: labels.
	sh := newShredder(scheme)
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		if n.IsAttr() {
			return sh.attr(n.Tag, n.Text)
		}
		if err := sh.start(n.Tag); err != nil {
			return err
		}
		if n.Text != "" {
			sh.text(n.Text)
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		sh.end()
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return finishBuild(sh, graph, opts)
}

// BuildFromReader shreds a document supplied by a re-readable source.
// open is called twice, once per pass.
func BuildFromReader(open func() (io.ReadCloser, error), opts Options) (*Store, error) {
	// Pass 1: tags, schema, depth.
	r1, err := open()
	if err != nil {
		return nil, err
	}
	graph := schema.New()
	var stack []string
	tagSet := map[string]bool{}
	h1 := sax.FuncHandler{
		Start: func(name string, attrs []sax.Attr) error {
			tagSet[name] = true
			if len(stack) == 0 {
				graph.AddRoot(name)
			} else {
				graph.AddEdge(stack[len(stack)-1], name)
			}
			stack = append(stack, name)
			graph.ObserveDepth(len(stack))
			for _, a := range attrs {
				at := "@" + a.Name
				tagSet[at] = true
				graph.AddEdge(name, at)
				graph.ObserveDepth(len(stack) + 1)
			}
			return nil
		},
		End: func(string) error {
			stack = stack[:len(stack)-1]
			return nil
		},
	}
	if err := sax.Parse(r1, h1); err != nil {
		_ = r1.Close()
		return nil, err
	}
	if err := r1.Close(); err != nil {
		return nil, err
	}
	tags := make([]string, 0, len(tagSet))
	for t := range tagSet {
		tags = append(tags, t)
	}
	scheme, err := plabel.NewScheme(tags)
	if err != nil {
		return nil, err
	}

	// Pass 2: labels.
	r2, err := open()
	if err != nil {
		return nil, err
	}
	defer r2.Close()
	sh := newShredder(scheme)
	h2 := sax.FuncHandler{
		Start: func(name string, attrs []sax.Attr) error {
			if err := sh.start(name); err != nil {
				return err
			}
			for _, a := range attrs {
				if err := sh.attr("@"+a.Name, a.Value); err != nil {
					return err
				}
			}
			return nil
		},
		Chars: func(text string) error {
			sh.text(text)
			return nil
		},
		End: func(string) error {
			sh.end()
			return nil
		},
	}
	if err := sax.Parse(r2, h2); err != nil {
		return nil, err
	}
	return finishBuild(sh, graph, opts)
}

// BuildFromFile shreds an XML file into a new store.
func BuildFromFile(path string, opts Options) (*Store, error) {
	return BuildFromReader(func() (io.ReadCloser, error) { return os.Open(path) }, opts)
}

// shredder assigns labels and accumulates records.
type shredder struct {
	scheme  *plabel.Scheme
	dl      *dlabel.Assigner
	pl      *plabel.Labeler
	open    []openElem
	records []relstore.Record
}

type openElem struct {
	tagID  uint32
	start  uint32
	level  uint16
	plabel relstore.Record // partially filled: PLabel only
	text   string
}

func newShredder(scheme *plabel.Scheme) *shredder {
	return &shredder{
		scheme: scheme,
		dl:     dlabel.NewAssigner(),
		pl:     scheme.NewLabeler(),
	}
}

func (s *shredder) start(tag string) error {
	p, err := s.pl.Enter(tag)
	if err != nil {
		return err
	}
	digit, _ := s.scheme.TagDigit(tag)
	start, level := s.dl.Enter()
	s.open = append(s.open, openElem{
		tagID:  uint32(digit),
		start:  start,
		level:  level,
		plabel: relstore.Record{PLabel: p},
	})
	return nil
}

func (s *shredder) text(t string) {
	s.dl.Text()
	top := &s.open[len(s.open)-1]
	if top.text == "" {
		top.text = t
	} else {
		top.text += " " + t
	}
}

func (s *shredder) attr(tag, value string) error {
	p, err := s.pl.Enter(tag)
	if err != nil {
		return err
	}
	s.pl.Leave()
	digit, _ := s.scheme.TagDigit(tag)
	l := s.dl.Attr()
	s.records = append(s.records, relstore.Record{
		PLabel: p,
		TagID:  uint32(digit),
		Start:  l.Start,
		End:    l.End,
		Level:  l.Level,
		Data:   value,
	})
	return nil
}

func (s *shredder) end() {
	top := s.open[len(s.open)-1]
	s.open = s.open[:len(s.open)-1]
	l := s.dl.Leave()
	s.pl.Leave()
	s.records = append(s.records, relstore.Record{
		PLabel: top.plabel.PLabel,
		TagID:  top.tagID,
		Start:  top.start,
		End:    l.End,
		Level:  top.level,
		Data:   top.text,
	})
}

func finishBuild(sh *shredder, graph *schema.Graph, opts Options) (*Store, error) {
	if len(sh.open) != 0 {
		return nil, fmt.Errorf("core: document left %d elements open", len(sh.open))
	}
	spFile, sdFile, err := openFiles(opts, true)
	if err != nil {
		return nil, err
	}
	sp, err := relstore.Build(spFile, relstore.ClusterPLabel, sh.records)
	if err != nil {
		closeBoth(spFile, sdFile)
		return nil, fmt.Errorf("core: build SP: %w", err)
	}
	sd, err := relstore.Build(sdFile, relstore.ClusterTag, sh.records)
	if err != nil {
		closeBoth(spFile, sdFile)
		return nil, fmt.Errorf("core: build SD: %w", err)
	}

	var edges [][2]string
	for _, p := range graph.Tags() {
		for _, c := range graph.Children(p) {
			edges = append(edges, [2]string{p, c})
		}
	}
	meta := storeMeta{
		Tags:     sh.scheme.Tags(),
		Roots:    graph.Roots(),
		Edges:    edges,
		MaxDepth: graph.MaxDepth(),
		Nodes:    uint64(len(sh.records)),
		Units:    sh.dl.Pos() - 1,
	}
	if opts.Dir != "" {
		if err := saveMeta(opts.Dir, meta); err != nil {
			closeBoth(spFile, sdFile)
			return nil, err
		}
	}
	st := &Store{
		scheme: sh.scheme,
		graph:  graph,
		sp:     sp,
		sd:     sd,
		spFile: spFile,
		sdFile: sdFile,
		meta:   meta,
	}
	return st, nil
}
