package core

import (
	"fmt"
	"runtime"

	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/uint128"
)

// ExecConfig carries the engine-independent execution knobs that
// blas.QueryOptions threads down into both query engines. The zero value
// selects the defaults.
type ExecConfig struct {
	// Parallelism bounds the worker pool one query may use — fragment
	// scans and partitioned D-joins on the relational engine, stream
	// prefetchers and partitioned sweeps on the twig engine. 0 selects
	// runtime.GOMAXPROCS(0); 1 runs the query fully sequentially (no
	// extra goroutines). Negative values are rejected by Validate. The
	// result set is identical at every setting.
	Parallelism int

	// BatchSize pins the record-batch size of the query's streams. 0
	// (the default) lets the per-query batch controller adapt it within
	// [relstore.MinBatchSize, relstore.MaxBatchSize] from observed pager
	// miss latency and consumer drain rate; a positive value fixes it
	// (clamped to the same bounds). Negative values are rejected by
	// Validate. Like Parallelism, the setting never changes results —
	// only buffer sizes.
	BatchSize int

	// PrefetchDepth pins the number of in-flight batches each stream
	// prefetcher keeps. 0 (the default) adapts it from observed consumer
	// stalls; a positive value fixes it (clamped to [1, 8]). Negative
	// values are rejected by Validate.
	PrefetchDepth int
}

// Validate rejects malformed configurations. Both engines call it on
// entry so misuse fails identically everywhere.
func (c ExecConfig) Validate() error {
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", c.Parallelism)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("core: BatchSize must be >= 0 (0 = adaptive), got %d", c.BatchSize)
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("core: PrefetchDepth must be >= 0 (0 = adaptive), got %d", c.PrefetchDepth)
	}
	return nil
}

// BatchController builds the per-query batch controller this
// configuration asks for. Engines attach it to the query's ExecContext
// (unless the caller already attached one) so every stream of the query
// shares one controller and one batch-size histogram.
func (c ExecConfig) BatchController() *relstore.BatchController {
	return relstore.NewBatchController(c.BatchSize, c.PrefetchDepth)
}

// Workers resolves the effective worker count.
func (c ExecConfig) Workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// FragmentStream prepares the document-order batched stream of one plan
// fragment's selection so it can be opened repeatedly over disjoint
// start ranges. Both engines read fragments through it: the relational
// engine drains one full-range stream per fragment, the twig engine's
// partitioned sweep opens one restricted stream per partition.
//
// Preparation resolves everything that must not be repeated per
// partition — in particular the distinct P-label runs of a range
// selection (a skip scan over the cluster index). Open then only
// descends the index once per run, and a record whose start falls in
// [lo, hi) is fetched by exactly one partition, which keeps the
// visited-elements statistic independent of how the stream is split.
type FragmentStream struct {
	st      *Store
	frag    *translate.Fragment
	plabels []uint128.Uint128 // resolved runs of a range selection
}

// PrepareFragmentStream resolves fragment f's access path against the
// store. The skip scan for range selections is accounted to ctx (index
// pages only — no records are fetched).
func (s *Store) PrepareFragmentStream(ctx *relstore.ExecContext, f *translate.Fragment) (*FragmentStream, error) {
	fs := &FragmentStream{st: s, frag: f}
	switch f.Access.Kind {
	case translate.AccessPLabelEq, translate.AccessPLabelSet, translate.AccessTag, translate.AccessAll:
		// No preparation needed.
	case translate.AccessPLabelRange:
		plabels, err := s.sp.DistinctPLabels(ctx, f.Access.Range.Lo, f.Access.Range.Hi)
		if err != nil {
			return nil, err
		}
		fs.plabels = plabels
	default:
		return nil, fmt.Errorf("core: unknown access kind %v", f.Access.Kind)
	}
	return fs, nil
}

// KnownEmpty reports that the prepared stream can produce no records
// under any start restriction: a range selection whose skip scan
// resolved zero P-label runs. Engines use it to terminate early without
// opening (and sweeping) the plan's other streams.
func (fs *FragmentStream) KnownEmpty() bool {
	return fs.frag.Access.Kind == translate.AccessPLabelRange && len(fs.plabels) == 0
}

// Open returns the fragment's records whose start position lies in
// [lo, hi) — hi == 0 means unbounded — as a batched stream in document
// (start) order. Fragment-local predicates (value, level, attribute
// exclusion) are NOT applied; they are engine policy and cheap to apply
// on the decoded batches.
func (fs *FragmentStream) Open(ctx *relstore.ExecContext, lo, hi uint32) (relstore.BatchIter, error) {
	f := fs.frag
	switch f.Access.Kind {
	case translate.AccessPLabelEq:
		return fs.st.sp.ScanPLabelExactBatch(ctx, f.Access.Range.Lo, lo, hi), nil
	case translate.AccessPLabelRange:
		runs := make([]relstore.BatchIter, 0, len(fs.plabels))
		for _, p := range fs.plabels {
			runs = append(runs, fs.st.sp.ScanPLabelExactBatch(ctx, p, lo, hi))
		}
		if len(runs) == 0 {
			return emptyBatchIter{}, nil
		}
		return relstore.MergeBatchesByStart(runs, ctx.BatchControl().BatchSize())
	case translate.AccessPLabelSet:
		runs := make([]relstore.BatchIter, 0, len(f.Access.Labels))
		for _, l := range f.Access.Labels {
			runs = append(runs, fs.st.sp.ScanPLabelExactBatch(ctx, l, lo, hi))
		}
		if len(runs) == 0 {
			return emptyBatchIter{}, nil
		}
		return relstore.MergeBatchesByStart(runs, ctx.BatchControl().BatchSize())
	case translate.AccessTag:
		return fs.st.sd.ScanTagBatch(ctx, f.Access.TagID, lo, hi), nil
	case translate.AccessAll:
		return fs.st.sd.ScanStartRangeBatch(ctx, lo, hi), nil
	default:
		return nil, fmt.Errorf("core: unknown access kind %v", f.Access.Kind)
	}
}

// emptyBatchIter is the stream of a selection with no runs.
type emptyBatchIter struct{}

func (emptyBatchIter) NextBatch([]relstore.Record) (int, error) { return 0, nil }

// RecFilter applies a fragment's local predicates — value equality,
// exact level, attribute-tag exclusion for wildcards — to decoded
// record batches. Both engines filter through it so the predicate
// semantics cannot diverge.
type RecFilter struct {
	Value       *string
	LevelEq     uint16
	ExcludeTags map[uint32]bool
}

// FragmentFilter builds fragment f's record filter.
func (s *Store) FragmentFilter(f *translate.Fragment) RecFilter {
	return RecFilter{Value: f.Value, LevelEq: f.LevelEq, ExcludeTags: s.AttrTagIDs(f)}
}

// Active reports whether the filter can drop any record.
func (f RecFilter) Active() bool {
	return f.Value != nil || f.LevelEq != 0 || f.ExcludeTags != nil
}

// Apply filters recs in place and returns the kept prefix.
func (f RecFilter) Apply(recs []relstore.Record) []relstore.Record {
	if !f.Active() {
		return recs
	}
	out := recs[:0]
	for _, rec := range recs {
		if f.Value != nil && rec.Data != *f.Value {
			continue
		}
		if f.LevelEq != 0 && rec.Level != f.LevelEq {
			continue
		}
		if f.ExcludeTags != nil && f.ExcludeTags[rec.TagID] {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// AttrTagIDs returns the attribute tag ids a wildcard (AccessAll)
// fragment must exclude — XPath * matches elements only — or nil when
// the fragment needs no exclusion.
func (s *Store) AttrTagIDs(f *translate.Fragment) map[uint32]bool {
	if f.Access.Kind != translate.AccessAll {
		return nil
	}
	m := map[uint32]bool{}
	for _, tag := range s.Scheme().Tags() {
		if len(tag) > 0 && tag[0] == '@' {
			if id, ok := s.TagID(tag); ok {
				m[id] = true
			}
		}
	}
	return m
}
