package core

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/relstore"
	"repro/internal/xmltree"
)

const sampleDoc = `<proteinDatabase>
  <proteinEntry>
    <protein>
      <name>cytochrome c</name>
      <classification><superfamily>cytochrome c</superfamily></classification>
    </protein>
    <reference>
      <refinfo>
        <authors><author>Evans, M.J.</author></authors>
        <year>2001</year>
        <title>The human somatic cytochrome c gene</title>
      </refinfo>
    </reference>
  </proteinEntry>
</proteinDatabase>`

func buildSample(t *testing.T) *Store {
	t.Helper()
	tree, err := xmltree.ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildFromTree(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildFromTreeBasics(t *testing.T) {
	st := buildSample(t)
	defer st.Close()

	// 12 element nodes, no attributes.
	if st.NodeCount() != 12 {
		t.Fatalf("NodeCount = %d, want 12", st.NodeCount())
	}
	if st.SP().Count() != 12 || st.SD().Count() != 12 {
		t.Fatalf("relation counts = %d, %d", st.SP().Count(), st.SD().Count())
	}
	if st.Scheme().NumTags() != 12 {
		t.Fatalf("tags = %d, want 12", st.Scheme().NumTags())
	}
	if !st.Schema().HasEdge("protein", "classification") {
		t.Fatal("schema edge missing")
	}
	if st.Schema().MaxDepth() != 6 {
		t.Fatalf("depth = %d, want 6", st.Schema().MaxDepth())
	}
}

func TestSuffixPathSelection(t *testing.T) {
	st := buildSample(t)
	defer st.Close()

	// /proteinDatabase/proteinEntry/protein/name resolves to one node via
	// a single P-label selection (the heart of the paper).
	lbl, err := st.Scheme().LabelPath([]string{"proteinDatabase", "proteinEntry", "protein", "name"})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := relstore.Collect(st.SP().ScanPLabelExact(nil, lbl))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Data != "cytochrome c" {
		t.Fatalf("data = %q", recs[0].Data)
	}
	if recs[0].Level != 4 {
		t.Fatalf("level = %d, want 4", recs[0].Level)
	}
}

func TestDLabelNesting(t *testing.T) {
	st := buildSample(t)
	defer st.Close()

	id, ok := st.TagID("proteinEntry")
	if !ok {
		t.Fatal("tag missing")
	}
	entries, err := relstore.Collect(st.SD().ScanTag(nil, id))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries: %d, %v", len(entries), err)
	}
	yid, _ := st.TagID("year")
	years, err := relstore.Collect(st.SD().ScanTag(nil, yid))
	if err != nil || len(years) != 1 {
		t.Fatalf("years: %d, %v", len(years), err)
	}
	e, y := entries[0], years[0]
	if !(e.Start < y.Start && e.End > y.End) {
		t.Fatalf("year %v not nested in entry %v", y, e)
	}
	if y.Data != "2001" {
		t.Fatalf("year data = %q", y.Data)
	}
}

func TestAttributesShredded(t *testing.T) {
	tree, _ := xmltree.ParseString(`<site><person id="p1"><name>n</name></person></site>`)
	st, err := BuildFromTree(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if st.NodeCount() != 4 { // site, person, @id, name
		t.Fatalf("NodeCount = %d, want 4", st.NodeCount())
	}
	id, ok := st.TagID("@id")
	if !ok {
		t.Fatal("@id not in scheme")
	}
	attrs, err := relstore.Collect(st.SD().ScanTag(nil, id))
	if err != nil || len(attrs) != 1 {
		t.Fatalf("attrs: %d, %v", len(attrs), err)
	}
	if attrs[0].Data != "p1" {
		t.Fatalf("attr data = %q", attrs[0].Data)
	}
	if attrs[0].Level != 3 {
		t.Fatalf("attr level = %d, want 3", attrs[0].Level)
	}
}

func TestTagNameRoundTrip(t *testing.T) {
	st := buildSample(t)
	defer st.Close()
	for _, tag := range st.Scheme().Tags() {
		id, ok := st.TagID(tag)
		if !ok {
			t.Fatalf("TagID(%s) missing", tag)
		}
		name, ok := st.TagName(id)
		if !ok || name != tag {
			t.Fatalf("TagName(%d) = %q, want %q", id, name, tag)
		}
	}
	if _, ok := st.TagName(0); ok {
		t.Fatal("TagName(0) should fail")
	}
	if _, ok := st.TagName(9999); ok {
		t.Fatal("TagName(9999) should fail")
	}
}

func TestBuildFromReaderMatchesTree(t *testing.T) {
	open := func() (io.ReadCloser, error) {
		return io.NopCloser(strings.NewReader(sampleDoc)), nil
	}
	st1, err := BuildFromReader(open, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	st2 := buildSample(t)
	defer st2.Close()

	if st1.NodeCount() != st2.NodeCount() {
		t.Fatalf("node counts differ: %d vs %d", st1.NodeCount(), st2.NodeCount())
	}
	r1, err := relstore.Collect(st1.SP().ScanAll(nil))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := relstore.Collect(st2.SP().ScanAll(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestPersistAndOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	tree, _ := xmltree.ParseString(sampleDoc)
	st, err := BuildFromTree(tree, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	nodes := st.NodeCount()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NodeCount() != nodes {
		t.Fatalf("NodeCount after reopen = %d", st2.NodeCount())
	}
	if st2.Scheme().NumTags() != 12 {
		t.Fatalf("tags after reopen = %d", st2.Scheme().NumTags())
	}
	if !st2.Schema().HasEdge("refinfo", "year") {
		t.Fatal("schema lost")
	}
	lbl, _ := st2.Scheme().LabelPath([]string{"proteinDatabase", "proteinEntry", "protein", "name"})
	recs, err := relstore.Collect(st2.SP().ScanPLabelExact(nil, lbl))
	if err != nil || len(recs) != 1 {
		t.Fatalf("scan after reopen: %d, %v", len(recs), err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without dir should fail")
	}
	if _, err := Open(Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open of empty dir should fail")
	}
}

func TestBuildFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := BuildFromFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NodeCount() != 12 {
		t.Fatalf("NodeCount = %d", st.NodeCount())
	}
}

func TestCountersAndCaches(t *testing.T) {
	st := buildSample(t)
	defer st.Close()
	if err := st.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ctx := relstore.NewExecContext()
	lbl, _ := st.Scheme().LabelPath([]string{"proteinDatabase", "proteinEntry"})
	if _, err := relstore.Collect(st.SP().ScanPLabelExact(ctx, lbl)); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Visited(); got != 1 {
		t.Fatalf("visited = %d, want 1", got)
	}
	if ctx.PageMisses() == 0 {
		t.Fatal("expected cold-cache page misses")
	}
}

func TestBuildNilTree(t *testing.T) {
	if _, err := BuildFromTree(nil, Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMalformedFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(path, []byte("<a><b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFromFile(path, Options{}); err == nil {
		t.Fatal("expected parse error")
	}
}
