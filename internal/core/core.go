package core
