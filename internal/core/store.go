// Package core assembles the BLAS system (paper Fig. 6): the index
// generator that shreds an XML document into bi-labeled relations, and
// the Store that owns the relations, the P-labeling scheme, and the
// schema graph that the Unfold translator consumes.
//
// A Store holds both of the paper's relations:
//
//	SP(plabel, start, end, level, data) clustered by {plabel, start}
//	SD(tag,    start, end, level, data) clustered by {tag, start}
//
// SP serves the BLAS translators, SD the D-labeling baseline, so every
// experiment in §5 runs against one store.
//
// A Store is immutable once built or opened and safe for any number of
// concurrent readers. Per-query execution statistics (visited elements,
// page reads/misses) live in the relstore.ExecContext each engine
// threads through its scans — the store itself holds no query-scoped
// mutable state.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/pager"
	"repro/internal/plabel"
	"repro/internal/relstore"
	"repro/internal/schema"
)

// Options configures store construction and opening.
type Options struct {
	// Dir is the directory holding the store files (sp.pg, sd.pg,
	// meta.json). Empty means an in-memory store.
	Dir string
	// PoolPages is the buffer pool capacity per relation file;
	// 0 selects the pager default.
	PoolPages int
	// PoolShards is the number of lock-striped buffer pool shards per
	// relation file; 0 selects the pager default
	// (nextPow2(GOMAXPROCS)). More shards let more concurrent scans of
	// one relation proceed without lock contention.
	PoolShards int
}

// Store is an open BLAS store.
type Store struct {
	scheme *plabel.Scheme
	graph  *schema.Graph
	sp     *relstore.Relation
	sd     *relstore.Relation
	spFile *pager.File
	sdFile *pager.File
	meta   storeMeta
}

type storeMeta struct {
	Tags     []string    `json:"tags"`
	Roots    []string    `json:"roots"`
	Edges    [][2]string `json:"edges"`
	MaxDepth int         `json:"max_depth"`
	Nodes    uint64      `json:"nodes"`
	Units    uint32      `json:"units"` // total position units in the document
}

// Scheme returns the store's P-labeling scheme.
func (s *Store) Scheme() *plabel.Scheme { return s.scheme }

// Schema returns the schema graph extracted at shred time.
func (s *Store) Schema() *schema.Graph { return s.graph }

// SP returns the plabel-clustered relation.
func (s *Store) SP() *relstore.Relation { return s.sp }

// SD returns the tag-clustered relation.
func (s *Store) SD() *relstore.Relation { return s.sd }

// NodeCount returns the number of nodes (element + attribute).
func (s *Store) NodeCount() uint64 { return s.meta.Nodes }

// TagID returns the P-label digit used as the tag id of tag.
func (s *Store) TagID(tag string) (uint32, bool) {
	d, ok := s.scheme.TagDigit(tag)
	return uint32(d), ok
}

// TagName returns the tag whose id is id.
func (s *Store) TagName(id uint32) (string, bool) {
	tags := s.scheme.Tags()
	if id < 1 || int(id) > len(tags) {
		return "", false
	}
	return tags[id-1], true
}

// DropCaches empties both buffer pools (the paper's experiments run on a
// cold cache, §5.1). It is a benchmark-harness control, not part of the
// serving path; running it concurrently with in-flight scans is memory-
// safe (pinned frames keep their buffers until released) but skews the
// miss counts of those scans.
// Like pager.File.DropCache, it drains both pools even when one errors
// and reports the first error.
func (s *Store) DropCaches() error {
	err1 := s.spFile.DropCache()
	err2 := s.sdFile.DropCache()
	if err1 != nil {
		return err1
	}
	return err2
}

// Close flushes and closes the store files.
func (s *Store) Close() error {
	err1 := s.spFile.Close()
	err2 := s.sdFile.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func openFiles(opts Options, create bool) (sp, sd *pager.File, err error) {
	cfg := pager.Config{PoolPages: opts.PoolPages, Shards: opts.PoolShards}
	if opts.Dir == "" {
		return pager.OpenMemConfig(cfg), pager.OpenMemConfig(cfg), nil
	}
	if create {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
	}
	sp, err = pager.OpenConfig(filepath.Join(opts.Dir, "sp.pg"), cfg)
	if err != nil {
		return nil, nil, err
	}
	sd, err = pager.OpenConfig(filepath.Join(opts.Dir, "sd.pg"), cfg)
	if err != nil {
		_ = sp.Close()
		return nil, nil, err
	}
	return sp, sd, nil
}

// closeBoth releases both relation files on an error path. The closes
// are best-effort: the error already being returned is the one the
// caller reports.
func closeBoth(spFile, sdFile *pager.File) {
	_ = spFile.Close()
	_ = sdFile.Close()
}

// Open opens an existing on-disk store.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: Open requires a directory")
	}
	raw, err := os.ReadFile(filepath.Join(opts.Dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var meta storeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("core: bad meta.json: %w", err)
	}
	spFile, sdFile, err := openFiles(opts, false)
	if err != nil {
		return nil, err
	}
	return assemble(meta, spFile, sdFile)
}

func assemble(meta storeMeta, spFile, sdFile *pager.File) (*Store, error) {
	scheme, err := plabel.NewScheme(meta.Tags)
	if err != nil {
		closeBoth(spFile, sdFile)
		return nil, err
	}
	g := schema.New()
	for _, r := range meta.Roots {
		g.AddRoot(r)
	}
	for _, e := range meta.Edges {
		g.AddEdge(e[0], e[1])
	}
	g.ObserveDepth(meta.MaxDepth)

	sp, err := relstore.Open(spFile)
	if err != nil {
		closeBoth(spFile, sdFile)
		return nil, fmt.Errorf("core: open SP: %w", err)
	}
	if sp.Kind() != relstore.ClusterPLabel {
		closeBoth(spFile, sdFile)
		return nil, fmt.Errorf("core: sp.pg has clustering %v", sp.Kind())
	}
	sd, err := relstore.Open(sdFile)
	if err != nil {
		closeBoth(spFile, sdFile)
		return nil, fmt.Errorf("core: open SD: %w", err)
	}
	if sd.Kind() != relstore.ClusterTag {
		closeBoth(spFile, sdFile)
		return nil, fmt.Errorf("core: sd.pg has clustering %v", sd.Kind())
	}
	return &Store{
		scheme: scheme,
		graph:  g,
		sp:     sp,
		sd:     sd,
		spFile: spFile,
		sdFile: sdFile,
		meta:   meta,
	}, nil
}

// saveMeta writes meta.json for on-disk stores.
func saveMeta(dir string, meta storeMeta) error {
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), raw, 0o644)
}
