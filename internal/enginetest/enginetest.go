// Package enginetest provides shared test support for the BLAS query
// engines: ground-truth evaluation (the naive evaluator's results mapped
// to D-label start positions), store construction helpers, and random
// document/query generators for differential testing.
package enginetest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dlabel"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// LabelTree assigns D-labels to every node of a document tree in exactly
// the order the core shredder does, so tree nodes can be matched to store
// records by start position.
func LabelTree(root *xmltree.Node) map[*xmltree.Node]dlabel.Label {
	labels := map[*xmltree.Node]dlabel.Label{}
	a := dlabel.NewAssigner()
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if n.IsAttr() {
			labels[n] = a.Attr()
			return
		}
		a.Enter()
		if n.Text != "" {
			a.Text()
		}
		for _, c := range n.Children {
			walk(c)
		}
		labels[n] = a.Leave()
	}
	walk(root)
	return labels
}

// EvalStarts evaluates a query with the reference evaluator and returns
// the start positions of the result nodes in ascending order.
func EvalStarts(root *xmltree.Node, query string) ([]uint32, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	labels := LabelTree(root)
	nodes := xpath.Eval(root, q)
	out := make([]uint32, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, labels[n].Start)
	}
	// The reference evaluator returns document order, which is start
	// order.
	return out, nil
}

// MustBuild shreds a document string into an in-memory store.
func MustBuild(doc string) (*core.Store, *xmltree.Node, error) {
	tree, err := xmltree.ParseString(doc)
	if err != nil {
		return nil, nil, err
	}
	st, err := core.BuildFromTree(tree, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return st, tree, nil
}

// DocParams controls random document generation.
type DocParams struct {
	Tags     []string // tag alphabet
	MaxDepth int
	MaxKids  int
	Values   []string // text value alphabet ("" allowed)
	AttrProb float64  // probability of an @id attribute per element
}

// DefaultDocParams returns parameters producing small, branchy documents
// with repeated tags (so // and branch semantics are exercised).
func DefaultDocParams() DocParams {
	return DocParams{
		Tags:     []string{"a", "b", "c", "d"},
		MaxDepth: 6,
		MaxKids:  4,
		Values:   []string{"", "", "v1", "v2"},
		AttrProb: 0.2,
	}
}

// RandomDoc generates a random document tree.
func RandomDoc(rnd *rand.Rand, p DocParams) *xmltree.Node {
	root := xmltree.New(p.Tags[0])
	var grow func(n *xmltree.Node, depth int)
	grow = func(n *xmltree.Node, depth int) {
		if rnd.Float64() < p.AttrProb {
			n.SetAttr("id", fmt.Sprintf("id%d", rnd.Intn(3)))
		}
		if v := p.Values[rnd.Intn(len(p.Values))]; v != "" {
			n.Text = v
		}
		if depth >= p.MaxDepth {
			return
		}
		kids := rnd.Intn(p.MaxKids + 1)
		for i := 0; i < kids; i++ {
			c := n.AppendNew(p.Tags[rnd.Intn(len(p.Tags))])
			grow(c, depth+1)
		}
	}
	grow(root, 1)
	return root
}

// RandomQuery generates a random query over the tag alphabet, exercising
// /, //, branches, value predicates and the occasional wildcard.
func RandomQuery(rnd *rand.Rand, p DocParams) string {
	var b strings.Builder
	steps := 1 + rnd.Intn(4)
	for i := 0; i < steps; i++ {
		if rnd.Intn(3) == 0 {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		switch {
		case rnd.Intn(10) == 0:
			b.WriteString("*")
		default:
			b.WriteString(p.Tags[rnd.Intn(len(p.Tags))])
		}
		// Branch predicate.
		if rnd.Intn(4) == 0 {
			b.WriteString("[")
			if rnd.Intn(3) == 0 {
				b.WriteString("//")
			}
			b.WriteString(p.Tags[rnd.Intn(len(p.Tags))])
			if rnd.Intn(3) == 0 {
				fmt.Fprintf(&b, `="%s"`, p.Values[2+rnd.Intn(len(p.Values)-2)])
			}
			b.WriteString("]")
		}
		// Value predicate on the last step.
		if i == steps-1 && rnd.Intn(5) == 0 {
			fmt.Fprintf(&b, `="%s"`, p.Values[2+rnd.Intn(len(p.Values)-2)])
		}
	}
	return b.String()
}

// StartsEqual compares two ascending start lists.
func StartsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatStarts renders a start list for failure messages.
func FormatStarts(s []uint32) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
