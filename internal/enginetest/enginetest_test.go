package enginetest

import (
	"math/rand"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestLabelTreeMatchesShredder(t *testing.T) {
	// The helper must assign exactly the labels the core shredder does;
	// MustBuild + a P-label lookup cross-checks one known node.
	doc := `<a><b attr="v">text</b><c/></a>`
	st, tree, err := MustBuild(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	labels := LabelTree(tree)

	// Verify against the store: every (start, end, level) must appear.
	lbl, err := st.Scheme().LabelPath([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	it := st.SP().ScanPLabelExact(nil, lbl)
	if !it.Next() {
		t.Fatal("b not found in store")
	}
	rec := it.Record()
	b := tree.Children[0]
	if labels[b].Start != rec.Start || labels[b].End != rec.End || labels[b].Level != rec.Level {
		t.Fatalf("helper labels %v != store record %d,%d,%d", labels[b], rec.Start, rec.End, rec.Level)
	}
}

func TestRandomQueriesParse(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	p := DefaultDocParams()
	for i := 0; i < 500; i++ {
		q := RandomQuery(rnd, p)
		parsed, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("RandomQuery produced unparseable %q: %v", q, err)
		}
		// Round trip through String must be stable.
		again, err := xpath.Parse(parsed.String())
		if err != nil {
			t.Fatalf("rendered query %q unparseable: %v", parsed.String(), err)
		}
		if again.String() != parsed.String() {
			t.Fatalf("unstable rendering: %q -> %q", parsed.String(), again.String())
		}
	}
}

func TestRandomDocsWellFormed(t *testing.T) {
	rnd := rand.New(rand.NewSource(10))
	p := DefaultDocParams()
	for i := 0; i < 50; i++ {
		doc := RandomDoc(rnd, p)
		s := doc.String()
		back, err := xmltree.ParseString(s)
		if err != nil {
			t.Fatalf("random doc does not round-trip: %v\n%s", err, s)
		}
		if back.String() != s {
			t.Fatal("unstable serialization")
		}
	}
}

func TestEvalStartsSortedAndErrors(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><x/><y><x/></y></r>`)
	starts, err := EvalStarts(doc, "//x")
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 2 || starts[0] >= starts[1] {
		t.Fatalf("starts = %v", starts)
	}
	if _, err := EvalStarts(doc, "not a query"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestStartsEqualAndFormat(t *testing.T) {
	if !StartsEqual([]uint32{1, 2}, []uint32{1, 2}) {
		t.Fatal("equal lists reported unequal")
	}
	if StartsEqual([]uint32{1}, []uint32{1, 2}) || StartsEqual([]uint32{1, 3}, []uint32{1, 2}) {
		t.Fatal("unequal lists reported equal")
	}
	if FormatStarts([]uint32{1, 2}) != "[1 2]" {
		t.Fatalf("format = %s", FormatStarts([]uint32{1, 2}))
	}
}

func TestMustBuildErrors(t *testing.T) {
	if _, _, err := MustBuild("<broken"); err == nil {
		t.Fatal("malformed doc accepted")
	}
}
