package translate

import (
	"strings"
	"testing"

	"repro/internal/plabel"
	"repro/internal/schema"
	"repro/internal/xpath"
)

// Shakespeare-shaped scheme and schema for the paper's QS3 example.
func shakespeareCtx(t *testing.T) Context {
	t.Helper()
	tags := []string{"PLAYS", "PLAY", "ACT", "SCENE", "TITLE", "SPEECH", "LINE", "SPEAKER", "STAGEDIR", "EPILOGUE"}
	s, err := plabel.NewScheme(tags)
	if err != nil {
		t.Fatal(err)
	}
	g := schema.New()
	g.AddRoot("PLAYS")
	edges := [][2]string{
		{"PLAYS", "PLAY"}, {"PLAY", "TITLE"}, {"PLAY", "ACT"}, {"PLAY", "EPILOGUE"},
		{"ACT", "TITLE"}, {"ACT", "SCENE"},
		{"SCENE", "TITLE"}, {"SCENE", "SPEECH"}, {"SCENE", "STAGEDIR"},
		{"SPEECH", "SPEAKER"}, {"SPEECH", "LINE"}, {"SPEECH", "STAGEDIR"},
		{"EPILOGUE", "TITLE"}, {"EPILOGUE", "LINE"}, {"LINE", "STAGEDIR"},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	g.ObserveDepth(7)
	return Context{Scheme: s, Schema: g}
}

const qs3 = `/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`

func mustPlan(t *testing.T, tr Translator, ctx Context, q string) *Plan {
	t.Helper()
	p, err := tr(ctx, xpath.MustParse(q))
	if err != nil {
		t.Fatalf("translate %s: %v", q, err)
	}
	return p
}

// TestFigureElevenQS3 checks the plan shapes of Fig. 11: D-labeling needs
// 5 D-joins for QS3; Split, Push-up and Unfold need 2. Split uses two
// range and one equality selection, Push-up one range and two equality,
// Unfold three equality.
func TestFigureElevenQS3(t *testing.T) {
	ctx := shakespeareCtx(t)

	base := mustPlan(t, Baseline, ctx, qs3)
	if base.NumJoins() != 5 {
		t.Fatalf("baseline joins = %d, want 5", base.NumJoins())
	}
	if len(base.Fragments) != 6 {
		t.Fatalf("baseline fragments = %d, want 6", len(base.Fragments))
	}

	split := mustPlan(t, Split, ctx, qs3)
	if split.NumJoins() != 2 {
		t.Fatalf("split joins = %d, want 2\n%s", split.NumJoins(), split)
	}
	eq, rng := split.SelectionKinds()
	if eq != 1 || rng != 2 {
		t.Fatalf("split selections = %d eq, %d range; want 1, 2\n%s", eq, rng, split)
	}

	push := mustPlan(t, PushUp, ctx, qs3)
	if push.NumJoins() != 2 {
		t.Fatalf("pushup joins = %d, want 2", push.NumJoins())
	}
	eq, rng = push.SelectionKinds()
	if eq != 2 || rng != 1 {
		t.Fatalf("pushup selections = %d eq, %d range; want 2, 1\n%s", eq, rng, push)
	}

	unfold := mustPlan(t, Unfold, ctx, qs3)
	if unfold.Note != "" {
		t.Fatalf("unfold fell back: %s", unfold.Note)
	}
	if unfold.NumJoins() != 2 {
		t.Fatalf("unfold joins = %d, want 2\n%s", unfold.NumJoins(), unfold)
	}
	eq, rng = unfold.SelectionKinds()
	if eq != 3 || rng != 0 {
		t.Fatalf("unfold selections = %d eq, %d range; want 3, 0\n%s", eq, rng, unfold)
	}
}

func TestSplitFragmentShapesQS3(t *testing.T) {
	ctx := shakespeareCtx(t)
	p := mustPlan(t, Split, ctx, qs3)
	if len(p.Fragments) != 3 {
		t.Fatalf("fragments = %d\n%s", len(p.Fragments), p)
	}
	// Root: absolute simple path -> equality.
	if p.Fragments[0].Access.Kind != AccessPLabelEq {
		t.Fatalf("root access = %v", p.Fragments[0].Access.Kind)
	}
	if got := p.Fragments[0].Access.Query.String(); got != "/PLAYS/PLAY/ACT/SCENE" {
		t.Fatalf("root query = %s", got)
	}
	// Branch: //TITLE with the value predicate.
	title := p.Fragments[1]
	if title.Access.Query.String() != "//TITLE" || title.Value == nil {
		t.Fatalf("title fragment = %+v", title)
	}
	// Continuation: //LINE, the return fragment.
	line := p.Fragments[2]
	if line.Access.Query.String() != "//LINE" || p.Return != line.ID {
		t.Fatalf("line fragment = %+v, return = %d", line, p.Return)
	}
	// Joins: SCENE->TITLE exact gap 1; SCENE->LINE min gap 1.
	j0, j1 := p.Joins[0], p.Joins[1]
	if !(j0.Anc == 0 && j0.Desc == 1 && j0.Gap == 1 && j0.Exact) {
		t.Fatalf("join 0 = %+v", j0)
	}
	if !(j1.Anc == 0 && j1.Desc == 2 && j1.Gap == 1 && !j1.Exact) {
		t.Fatalf("join 1 = %+v", j1)
	}
}

func TestPushUpPrefixesQS3(t *testing.T) {
	ctx := shakespeareCtx(t)
	p := mustPlan(t, PushUp, ctx, qs3)
	// The TITLE branch is pushed up to the full path.
	title := p.Fragments[1]
	if title.Access.Query.String() != "/PLAYS/PLAY/ACT/SCENE/TITLE" {
		t.Fatalf("title query = %s", title.Access.Query)
	}
	if title.Access.Kind != AccessPLabelEq {
		t.Fatalf("title access = %v", title.Access.Kind)
	}
	// The //LINE piece crossed a descendant cut: no prefix.
	if p.Fragments[2].Access.Query.String() != "//LINE" {
		t.Fatalf("line query = %s", p.Fragments[2].Access.Query)
	}
}

func TestUnfoldEnumeratesLine(t *testing.T) {
	ctx := shakespeareCtx(t)
	p := mustPlan(t, Unfold, ctx, qs3)
	line := p.Fragments[2]
	// SCENE//LINE unfolds to exactly SCENE/SPEECH/LINE under this schema.
	if line.Access.Kind != AccessPLabelEq {
		t.Fatalf("line access = %v\n%s", line.Access.Kind, p)
	}
	want := "PLAYS/PLAY/ACT/SCENE/SPEECH/LINE"
	if got := strings.Join(line.Access.Paths[0], "/"); got != want {
		t.Fatalf("line path = %s, want %s", got, want)
	}
	// Unfold joins carry exact gaps derived from path lengths.
	for _, j := range p.Joins {
		if !j.Exact {
			t.Fatalf("unfold join not exact: %+v", j)
		}
	}
}

// The paper's running example Q (Fig. 2/3): l=9 tags, d=2, b=4.
// Baseline: 8 joins. Split/Push-up: 6 joins (7 fragments). Unfold: 4.
func TestPaperQueryJoinCounts(t *testing.T) {
	tags := []string{"proteinDatabase", "proteinEntry", "protein", "name",
		"classification", "superfamily", "reference", "refinfo", "authors",
		"author", "year", "title", "citation"}
	s, err := plabel.NewScheme(tags)
	if err != nil {
		t.Fatal(err)
	}
	g := schema.New()
	g.AddRoot("proteinDatabase")
	for _, e := range [][2]string{
		{"proteinDatabase", "proteinEntry"},
		{"proteinEntry", "protein"}, {"proteinEntry", "reference"},
		{"protein", "name"}, {"protein", "classification"},
		{"classification", "superfamily"},
		{"reference", "refinfo"},
		{"refinfo", "authors"}, {"refinfo", "year"}, {"refinfo", "title"}, {"refinfo", "citation"},
		{"authors", "author"},
	} {
		g.AddEdge(e[0], e[1])
	}
	g.ObserveDepth(7)
	ctx := Context{Scheme: s, Schema: g}

	q := `/proteinDatabase/proteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`

	base := mustPlan(t, Baseline, ctx, q)
	if base.NumJoins() != 8 {
		t.Fatalf("baseline joins = %d, want 8 (the paper's 'total of 8 joins')", base.NumJoins())
	}
	split := mustPlan(t, Split, ctx, q)
	if split.NumJoins() != 6 || len(split.Fragments) != 7 {
		t.Fatalf("split: %d joins, %d fragments; want 6, 7\n%s", split.NumJoins(), len(split.Fragments), split)
	}
	push := mustPlan(t, PushUp, ctx, q)
	if push.NumJoins() != 6 {
		t.Fatalf("pushup joins = %d, want 6", push.NumJoins())
	}
	unfold := mustPlan(t, Unfold, ctx, q)
	if unfold.Note != "" {
		t.Fatalf("unfold fell back: %s", unfold.Note)
	}
	// Unfold eliminates the joins caused by interior descendant axes on
	// chains (protein//superfamily collapses into one equality fragment),
	// but a descendant-axis *branch* (refinfo[//author=...]) still needs
	// its semijoin — the predicate must be checked against some binding.
	// So the count is the number of branch-point outgoing edges: 5 here,
	// strictly below Split's 6 (= b+d) and the baseline's 8 (= l-1).
	if unfold.NumJoins() != 5 {
		t.Fatalf("unfold joins = %d, want 5\n%s", unfold.NumJoins(), unfold)
	}
	// §4.2's bound: split joins <= b + d.
	query := xpath.MustParse(q)
	b, d := query.CountBranchEdges(), query.CountDescendantEdges()
	if split.NumJoins() > b+d {
		t.Fatalf("split joins %d exceed b+d = %d", split.NumJoins(), b+d)
	}
	if base.NumJoins() != query.CountNodes()-1 {
		t.Fatal("baseline join count must be l-1")
	}
}

func TestSuffixPathSingleFragment(t *testing.T) {
	ctx := shakespeareCtx(t)
	for _, q := range []string{"/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE", "//SPEECH/LINE", "//LINE"} {
		for _, tr := range []Translator{Split, PushUp} {
			p := mustPlan(t, tr, ctx, q)
			if len(p.Fragments) != 1 || p.NumJoins() != 0 {
				t.Fatalf("%s: %d fragments, %d joins\n%s", q, len(p.Fragments), p.NumJoins(), p)
			}
			if p.Return != 0 {
				t.Fatalf("%s: return = %d", q, p.Return)
			}
		}
	}
	// Absolute suffix path is an equality selection; descendant-rooted is
	// a range.
	p := mustPlan(t, Split, ctx, "/PLAYS/PLAY")
	if p.Fragments[0].Access.Kind != AccessPLabelEq {
		t.Fatal("absolute suffix path should be an equality selection")
	}
	p = mustPlan(t, Split, ctx, "//PLAY")
	if p.Fragments[0].Access.Kind != AccessPLabelRange {
		t.Fatal("descendant-rooted suffix path should be a range selection")
	}
}

func TestUnknownTagYieldsEmptyPlan(t *testing.T) {
	ctx := shakespeareCtx(t)
	for _, tr := range []Translator{Baseline, Split, PushUp} {
		p := mustPlan(t, tr, ctx, "/PLAYS/NOPE")
		if !p.Empty() {
			t.Fatalf("plan not empty: %s", p)
		}
	}
	p := mustPlan(t, Unfold, ctx, "/PLAYS/NOPE")
	if !p.Empty() {
		t.Fatalf("unfold plan not empty: %s", p)
	}
}

func TestWildcardElision(t *testing.T) {
	ctx := shakespeareCtx(t)
	// /PLAYS/*/ACT: the * binds nothing and is elided; join gap 2 exact.
	p := mustPlan(t, Split, ctx, "/PLAYS/*/ACT")
	if len(p.Fragments) != 2 {
		t.Fatalf("fragments = %d\n%s", len(p.Fragments), p)
	}
	j := p.Joins[0]
	if !(j.Gap == 2 && j.Exact) {
		t.Fatalf("join = %+v, want gap 2 exact", j)
	}
	// /PLAYS/* with * as return node: the wildcard must bind (All scan).
	p = mustPlan(t, Split, ctx, "/PLAYS/*")
	if len(p.Fragments) != 2 || p.Fragments[1].Access.Kind != AccessAll {
		t.Fatalf("wildcard return plan: %s", p)
	}
	// //*//LINE: descendant edges around the wildcard: min gap 2.
	p = mustPlan(t, Split, ctx, "//PLAY/*//LINE")
	j = p.Joins[len(p.Joins)-1]
	if j.Exact || j.Gap != 2 {
		t.Fatalf("join = %+v, want min gap 2", j)
	}
}

func TestUnfoldWildcard(t *testing.T) {
	ctx := shakespeareCtx(t)
	// /PLAYS/PLAY/* unfolds to the three children of PLAY.
	p := mustPlan(t, Unfold, ctx, "/PLAYS/PLAY/*")
	ret := p.Fragments[p.Return]
	if ret.Access.Kind != AccessPLabelSet || len(ret.Access.Labels) != 3 {
		t.Fatalf("wildcard unfold: %s", p)
	}
}

func TestUnfoldRequiresSchema(t *testing.T) {
	ctx := shakespeareCtx(t)
	ctx.Schema = nil
	if _, err := Unfold(ctx, xpath.MustParse("/PLAYS/PLAY")); err == nil {
		t.Fatal("expected error without schema")
	}
}

func TestUnfoldRecursiveSchemaBounded(t *testing.T) {
	tags := []string{"site", "description", "parlist", "listitem", "text"}
	s, _ := plabel.NewScheme(tags)
	g := schema.New()
	g.AddRoot("site")
	g.AddEdge("site", "description")
	g.AddEdge("description", "parlist")
	g.AddEdge("parlist", "listitem")
	g.AddEdge("listitem", "parlist")
	g.AddEdge("listitem", "text")
	g.ObserveDepth(8) // recursion unrolled to depth 8
	ctx := Context{Scheme: s, Schema: g}

	p := mustPlan(t, Unfold, ctx, "/site/description//listitem")
	ret := p.Fragments[p.Return]
	// listitem at depths 4, 6, 8: three unfolded paths.
	if len(ret.Access.Labels) != 3 {
		t.Fatalf("recursive unfold labels = %d\n%s", len(ret.Access.Labels), p)
	}
}

func TestUnfoldFallbackOnExplosion(t *testing.T) {
	tags := []string{"a", "b"}
	s, _ := plabel.NewScheme(tags)
	g := schema.New()
	g.AddRoot("a")
	g.AddEdge("a", "a")
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	g.AddEdge("b", "b")
	g.ObserveDepth(30)
	ctx := Context{Scheme: s, Schema: g, MaxUnfoldPaths: 16}

	p := mustPlan(t, Unfold, ctx, "//a//b//a")
	if p.Note == "" {
		t.Fatalf("expected fallback note, got plan:\n%s", p)
	}
	if p.Translator != "unfold" {
		t.Fatalf("translator = %s", p.Translator)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestValuePredicateOnReturn(t *testing.T) {
	ctx := shakespeareCtx(t)
	p := mustPlan(t, PushUp, ctx, `//SPEECH/LINE="x"`)
	ret := p.Fragments[p.Return]
	if ret.Value == nil || *ret.Value != "x" {
		t.Fatalf("value lost: %+v", ret)
	}
}

func TestInteriorValueCutsFragment(t *testing.T) {
	ctx := shakespeareCtx(t)
	// //ACT="x"/SCENE: the value binds to ACT, so ACT ends its fragment
	// and SCENE joins with an exact gap of 1.
	p := mustPlan(t, Split, ctx, `//ACT="x"/SCENE`)
	if len(p.Fragments) != 2 {
		t.Fatalf("fragments = %d\n%s", len(p.Fragments), p)
	}
	if p.Fragments[0].Value == nil {
		t.Fatal("ACT fragment lost its value")
	}
	j := p.Joins[0]
	if !(j.Gap == 1 && j.Exact) {
		t.Fatalf("join = %+v", j)
	}
}

func TestBranchOnReturnNode(t *testing.T) {
	ctx := shakespeareCtx(t)
	p := mustPlan(t, PushUp, ctx, "/PLAYS/PLAY/ACT[TITLE]")
	// Return is ACT (fragment 0); TITLE is a branch fragment.
	if p.Return != 0 || len(p.Fragments) != 2 {
		t.Fatalf("plan: %s", p)
	}
}

func TestDeepBranchNesting(t *testing.T) {
	ctx := shakespeareCtx(t)
	q := `/PLAYS/PLAY[ACT[SCENE[TITLE="x"]]/SCENE]/TITLE`
	for _, tr := range []Translator{Baseline, Split, PushUp, Unfold} {
		p := mustPlan(t, tr, ctx, q)
		if p.Return < 0 || p.Return >= len(p.Fragments) {
			t.Fatalf("bad return fragment: %s", p)
		}
	}
}
