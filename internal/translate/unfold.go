package translate

import (
	"fmt"
	"sort"

	"repro/internal/plabel"
	"repro/internal/uint128"
	"repro/internal/xpath"
)

// Unfold implements the paper's §4.1.3: the query tree is cut only at
// branching points (and interior value predicates); descendant axes and
// wildcards inside each piece are eliminated by enumerating, over the
// schema graph, every simple path the piece can denote (bounded by the
// observed document depth for recursive schemas). Every piece then
// becomes a union of equality selections on P-labels, and only the
// branch-point D-joins remain — the paper's b-join bound.
//
// When a piece would unfold into more than ctx.MaxUnfoldPaths paths, or a
// join's level gap is ambiguous across the unfolded path combinations,
// Unfold falls back to the Push-up plan (annotated in Plan.Note).
func Unfold(ctx Context, q xpath.Query) (*Plan, error) {
	if ctx.Schema == nil {
		return nil, fmt.Errorf("translate: Unfold requires schema information")
	}
	if q.Root == nil {
		return nil, fmt.Errorf("translate: empty query")
	}
	maxPaths := ctx.MaxUnfoldPaths
	if maxPaths <= 0 {
		maxPaths = DefaultMaxUnfoldPaths
	}
	p := newPlan("unfold", q)
	u := &unfolder{ctx: ctx, plan: p, ret: p.Source.Return(), maxPaths: maxPaths}
	if err := u.emit(p.Source.Root, -1, nil); err != nil {
		if _, ok := err.(fallbackError); ok {
			fb, ferr := PushUp(ctx, q)
			if ferr != nil {
				return nil, ferr
			}
			fb.Translator = "unfold"
			fb.Note = fmt.Sprintf("fell back to push-up: %v", err)
			return fb, nil
		}
		return nil, err
	}
	if !u.retSeen {
		return nil, fmt.Errorf("translate: internal error: return node not assigned a fragment")
	}
	return p, nil
}

// fallbackError marks conditions under which Unfold degrades to Push-up.
type fallbackError struct{ reason string }

func (e fallbackError) Error() string { return e.reason }

type unfolder struct {
	ctx      Context
	plan     *Plan
	ret      *xpath.Node
	retSeen  bool
	maxPaths int
}

type fragStep struct {
	axis xpath.Axis
	tag  string // may be "*"
}

// emit creates the fragment whose leaf is reached from the query root via
// stepsSoFar plus the chain starting at n, then recurses into cuts.
func (u *unfolder) emit(n *xpath.Node, anc int, stepsSoFar []fragStep) error {
	// Collect the chain: Unfold pieces extend through descendant edges
	// and wildcards; only branches, value predicates and path ends cut.
	chain := []*xpath.Node{n}
	leaf := n
	for leaf.Value == nil && len(leaf.Branches) == 0 && leaf.Next != nil {
		leaf = leaf.Next
		chain = append(chain, leaf)
	}
	steps := append(append([]fragStep(nil), stepsSoFar...), stepsOf(chain)...)

	paths, err := u.enumerate(steps)
	if err != nil {
		return err
	}
	f := &Fragment{Value: leaf.Value}
	f.Access, f.Empty, err = u.accessFor(paths)
	if err != nil {
		return err
	}
	id := u.plan.addFragment(f)
	if anc >= 0 {
		join, empty, err := u.joinFor(anc, id)
		if err != nil {
			return err
		}
		if empty {
			f.Empty = true
		} else {
			u.plan.Joins = append(u.plan.Joins, join)
		}
	}
	if leaf == u.ret {
		u.plan.Return = id
		u.retSeen = true
	}
	for _, br := range leaf.Branches {
		if err := u.emit(br, id, steps); err != nil {
			return err
		}
	}
	if leaf.Next != nil {
		return u.emit(leaf.Next, id, steps)
	}
	return nil
}

func stepsOf(chain []*xpath.Node) []fragStep {
	out := make([]fragStep, len(chain))
	for i, c := range chain {
		out[i] = fragStep{axis: c.Axis, tag: c.Tag}
	}
	return out
}

// enumerate expands a step sequence into the absolute simple tag paths it
// denotes under the schema.
func (u *unfolder) enumerate(steps []fragStep) ([][]string, error) {
	g := u.ctx.Schema
	depth := g.MaxDepth()
	var cur [][]string

	// First step starts at the document root.
	first := steps[0]
	switch {
	case first.axis == xpath.Child && first.tag == "*":
		for _, r := range g.Roots() {
			cur = append(cur, []string{r})
		}
	case first.axis == xpath.Child:
		for _, r := range g.Roots() {
			if r == first.tag {
				cur = append(cur, []string{r})
			}
		}
	case first.tag == "*": // //*: any node at all
		for _, r := range g.Roots() {
			cur = append(cur, []string{r})
			chains, err := g.AllChains(r, depth-1, u.maxPaths)
			if err != nil {
				return nil, fallbackError{err.Error()}
			}
			for _, c := range chains {
				cur = append(cur, append([]string{r}, c...))
			}
		}
	default:
		paths, err := g.PathsFromRoot(first.tag, depth, u.maxPaths)
		if err != nil {
			return nil, fallbackError{err.Error()}
		}
		cur = paths
	}

	for _, st := range steps[1:] {
		var next [][]string
		for _, p := range cur {
			last := p[len(p)-1]
			budget := depth - len(p)
			if budget <= 0 {
				continue
			}
			switch {
			case st.axis == xpath.Child && st.tag == "*":
				for _, c := range g.Children(last) {
					next = append(next, extend(p, c))
				}
			case st.axis == xpath.Child:
				if g.HasEdge(last, st.tag) {
					next = append(next, extend(p, st.tag))
				}
			default:
				var chains [][]string
				var err error
				if st.tag == "*" {
					chains, err = g.AllChains(last, budget, u.maxPaths-len(next))
				} else {
					chains, err = g.ChainsBetween(last, st.tag, budget, u.maxPaths-len(next))
				}
				if err != nil {
					return nil, fallbackError{err.Error()}
				}
				for _, c := range chains {
					next = append(next, append(append([]string(nil), p...), c...))
				}
			}
			if len(next) > u.maxPaths {
				return nil, fallbackError{fmt.Sprintf("unfolding exceeds %d paths", u.maxPaths)}
			}
		}
		cur = next
	}
	return cur, nil
}

func extend(p []string, tag string) []string {
	return append(append([]string(nil), p...), tag)
}

// accessFor converts a path set into a fragment access: a single path
// becomes an equality selection, several become a plabel set.
func (u *unfolder) accessFor(paths [][]string) (Access, bool, error) {
	type entry struct {
		label uint128.Uint128
		path  []string
	}
	var entries []entry
	seen := map[uint128.Uint128]bool{}
	for _, p := range paths {
		if len(p) > u.ctx.Scheme.MaxDepth() {
			continue // no node can be this deep under the scheme
		}
		l, err := u.ctx.Scheme.LabelPath(p)
		if err != nil {
			// Tag outside the scheme: this path matches nothing.
			continue
		}
		if seen[l] {
			continue
		}
		seen[l] = true
		entries = append(entries, entry{label: l, path: p})
	}
	if len(entries) == 0 {
		return Access{Kind: AccessPLabelSet}, true, nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].label.Less(entries[j].label) })
	if len(entries) == 1 {
		q := plabel.Query{Absolute: true, Tags: entries[0].path}
		rng, err := u.ctx.Scheme.QueryRange(q)
		if err != nil {
			return Access{}, false, err
		}
		return Access{Kind: AccessPLabelEq, Range: rng, Query: q, Labels: []uint128.Uint128{entries[0].label}, Paths: [][]string{entries[0].path}}, false, nil
	}
	a := Access{Kind: AccessPLabelSet}
	for _, e := range entries {
		a.Labels = append(a.Labels, e.label)
		a.Paths = append(a.Paths, e.path)
	}
	return a, false, nil
}

// joinFor builds the D-join between two unfolded fragments. The desc
// fragment's paths all extend anc paths; the level gap is the difference
// in path lengths. If that difference is not unique across valid
// (anc path, desc path) combinations the join cannot be expressed as one
// predicate and Unfold falls back to Push-up.
func (u *unfolder) joinFor(anc, desc int) (Join, bool, error) {
	ancPaths := u.plan.Fragments[anc].Access.Paths
	descPaths := u.plan.Fragments[desc].Access.Paths
	if u.plan.Fragments[anc].Empty || u.plan.Fragments[desc].Empty {
		return Join{}, true, nil
	}
	gaps := map[int]bool{}
	for _, pa := range ancPaths {
		for _, pd := range descPaths {
			if isPrefix(pa, pd) {
				gaps[len(pd)-len(pa)] = true
			}
		}
	}
	switch len(gaps) {
	case 0:
		return Join{}, true, nil // no combination is possible
	case 1:
		for g := range gaps {
			return Join{Anc: anc, Desc: desc, Gap: g, Exact: true}, false, nil
		}
	}
	return Join{}, false, fallbackError{"ambiguous level gap between unfolded fragments"}
}

func isPrefix(pre, full []string) bool {
	if len(pre) >= len(full) {
		return false
	}
	for i := range pre {
		if pre[i] != full[i] {
			return false
		}
	}
	return true
}
