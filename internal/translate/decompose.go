package translate

import (
	"fmt"

	"repro/internal/plabel"
	"repro/internal/xpath"
)

// Split implements the paper's Algorithms 3+4: descendant-axis
// elimination cuts the query tree at every interior // edge, branch
// elimination cuts it at every branching point; each resulting piece is a
// suffix path query (leading // for every non-root piece) evaluated as a
// single P-label range selection, and pieces are recombined with D-joins
// that carry level-gap constraints for child-edge cuts.
func Split(ctx Context, q xpath.Query) (*Plan, error) {
	return decompose(ctx, q, false, "split")
}

// PushUp implements the paper's Algorithm 5: like Split, but at each
// branching point the path from the root of the current //-section is
// pushed into the child pieces, making the selections as specific as
// possible (a piece anchored at the document root becomes an equality
// selection).
func PushUp(ctx Context, q xpath.Query) (*Plan, error) {
	return decompose(ctx, q, true, "pushup")
}

func decompose(ctx Context, q xpath.Query, pushUp bool, name string) (*Plan, error) {
	if q.Root == nil {
		return nil, fmt.Errorf("translate: empty query")
	}
	p := newPlan(name, q)
	d := &decomposer{ctx: ctx, plan: p, pushUp: pushUp, ret: p.Source.Return()}
	root := p.Source.Root
	err := d.emit(root, cut{
		axis:     root.Axis,
		anc:      -1,
		gapExtra: 0,
		allChild: root.Axis == xpath.Child,
	}, nil, root.Axis == xpath.Child)
	if err != nil {
		return nil, err
	}
	if !d.retSeen {
		return nil, fmt.Errorf("translate: internal error: return node not assigned a fragment")
	}
	return p, nil
}

type decomposer struct {
	ctx     Context
	plan    *Plan
	pushUp  bool
	ret     *xpath.Node
	retSeen bool
}

// cut describes the edge over which a fragment is reached.
type cut struct {
	axis     xpath.Axis // axis of the final edge into the fragment's first node
	anc      int        // anchor fragment id; -1 for the query root
	gapExtra int        // edges skipped over elided wildcard steps
	allChild bool       // every edge from the anchor to the first node is a child edge
}

// emit creates the fragment starting at n and recurses into the cuts
// below it. For Push-up, prefix carries the tag path from the root of the
// current //-section, and prefixAbs says whether that path is anchored at
// the document root.
func (d *decomposer) emit(n *xpath.Node, c cut, prefix []string, prefixAbs bool) error {
	isRoot := c.anc < 0
	if !isRoot && (c.axis == xpath.Descendant || c.gapExtra > 0) {
		// Prefixes never cross a descendant cut (paper §4.1.2: descendant
		// elimination runs before push-up branch elimination) nor an
		// elided wildcard stretch.
		prefix, prefixAbs = nil, false
	}

	// Collect the chain of consecutive child steps rooted at n. A chain
	// ends at a value predicate, a branching point, a descendant edge, a
	// wildcard, or the end of the path.
	chain := []*xpath.Node{n}
	leaf := n
	if !n.IsWildcard() {
		for leaf.Value == nil && len(leaf.Branches) == 0 &&
			leaf.Next != nil && leaf.Next.Axis == xpath.Child &&
			!leaf.Next.IsWildcard() {
			leaf = leaf.Next
			chain = append(chain, leaf)
		}
	}

	// Build the fragment.
	f := &Fragment{Value: leaf.Value}
	if n.IsWildcard() {
		f.Access = Access{Kind: AccessAll}
		if isRoot && c.axis == xpath.Child {
			f.LevelEq = 1
		}
	} else {
		var tags []string
		abs := false
		if d.pushUp {
			tags = append(tags, prefix...)
			abs = prefixAbs
		}
		for _, cn := range chain {
			tags = append(tags, cn.Tag)
		}
		if isRoot {
			abs = c.axis == xpath.Child
		}
		query := plabel.Query{Absolute: abs, Tags: tags}
		rng, err := d.ctx.Scheme.QueryRange(query)
		if err != nil {
			return err
		}
		kind := AccessPLabelRange
		if rng.Exact {
			kind = AccessPLabelEq
		}
		f.Access = Access{Kind: kind, Range: rng, Query: query}
		f.Empty = rng.Empty
	}
	id := d.plan.addFragment(f)
	if !isRoot {
		d.plan.Joins = append(d.plan.Joins, Join{
			Anc:   c.anc,
			Desc:  id,
			Gap:   c.gapExtra + len(chain),
			Exact: c.allChild,
		})
	}
	if leaf == d.ret {
		d.plan.Return = id
		d.retSeen = true
	}

	// The tag path of this fragment extends the prefix of its child cuts.
	var childPrefix []string
	childAbs := false
	if d.pushUp && !n.IsWildcard() {
		childPrefix = append(append([]string(nil), prefix...), tagsOf(chain)...)
		childAbs = prefixAbs
		if isRoot {
			childAbs = c.axis == xpath.Child
		}
	}

	// Recurse into the cuts: the leaf's branches and its continuation.
	for _, br := range leaf.Branches {
		if err := d.emitCut(br, id, childPrefix, childAbs); err != nil {
			return err
		}
	}
	if leaf.Next != nil {
		return d.emitCut(leaf.Next, id, childPrefix, childAbs)
	}
	return nil
}

func tagsOf(chain []*xpath.Node) []string {
	out := make([]string, len(chain))
	for i, c := range chain {
		out[i] = c.Tag
	}
	return out
}

// emitCut handles one cut edge from fragment anc to the subtree rooted at
// n. Wildcard steps that bind nothing (no value, no branches, not the
// return node, not a path end) are elided: /a/*/b needs no fragment for
// *, only a level gap of 2 on the a-b join.
func (d *decomposer) emitCut(n *xpath.Node, anc int, prefix []string, prefixAbs bool) error {
	c := cut{axis: n.Axis, anc: anc, allChild: n.Axis == xpath.Child}
	for n.IsWildcard() && n.Value == nil && len(n.Branches) == 0 && n != d.ret && n.Next != nil {
		n = n.Next
		c.gapExtra++
		c.axis = n.Axis
		c.allChild = c.allChild && n.Axis == xpath.Child
	}
	return d.emit(n, c, prefix, prefixAbs)
}
