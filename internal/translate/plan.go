// Package translate turns XPath query trees into logical query plans over
// the BLAS relations, implementing the paper's four strategies:
//
//	Baseline — the pure D-labeling approach (§1, §5): one tag scan per
//	          query node, one D-join per query edge.
//	Split   — Algorithms 3+4 (§4.1.1): cut the query tree at descendant
//	          edges and branch points; each piece is a suffix path query
//	          answered by one P-label range selection; pieces are
//	          recombined with D-joins.
//	Push-up — Algorithm 5 (§4.1.2): like Split, but each piece is
//	          prefixed with the full path from the root of its
//	          //-section, making selections more specific (absolute
//	          pieces become equality selections).
//	Unfold  — §4.1.3: with schema information, interior descendant axes
//	          and wildcards are unfolded into unions of simple paths, so
//	          only branch-point joins remain and every selection is an
//	          equality.
//
// A plan is a set of fragments (each one selection over SP or SD, plus
// optional value predicate) and a set of structural joins between
// fragment bindings. Both query engines (relational and holistic twig
// join) execute these plans; sqlgen renders them as SQL.
//
// # Plan reuse
//
// A *Plan is immutable once a translator returns it: the physical
// planner, both engines and sqlgen only read it, and the translators
// clone the source query tree into Plan.Source rather than aliasing
// caller memory. One plan may therefore be wrapped and executed any
// number of times, concurrently, on either engine — this is what
// blas.PreparedQuery and the blasd plan cache build on (they hold a
// planner.Physical, which wraps a *Plan under the same immutability
// contract). The one caveat is that a plan's P-label ranges are minted
// by one store's labeling scheme, so a plan is only reusable against
// the store whose Context translated it; cache layers key plans by
// store generation for exactly this reason. Code extending the engines
// must preserve the read-only contract (annotate per-execution state on
// the ExecContext, never on the plan).
//
// A translated plan is purely LOGICAL: Fragments and Joins state what
// to evaluate, and their order carries no execution semantics. The
// physical decisions — which fragment to scan first, which join to run
// first, whether the plan is provably empty — live in package planner,
// which wraps the logical plan in an ordered planner.Physical that both
// engines execute.
package translate

import (
	"fmt"
	"strings"

	"repro/internal/plabel"
	"repro/internal/schema"
	"repro/internal/uint128"
	"repro/internal/xpath"
)

// Context supplies what the translators need from a store.
type Context struct {
	Scheme *plabel.Scheme
	Schema *schema.Graph // nil disables Unfold
	// MaxUnfoldPaths caps schema-based path enumeration; 0 selects
	// DefaultMaxUnfoldPaths.
	MaxUnfoldPaths int
}

// DefaultMaxUnfoldPaths caps the number of simple paths one fragment may
// unfold into before Unfold falls back to a D-join.
const DefaultMaxUnfoldPaths = 512

// AccessKind says how a fragment's records are obtained.
type AccessKind int

// Access kinds.
const (
	AccessPLabelRange AccessKind = iota // range selection on SP.plabel
	AccessPLabelEq                      // equality selection on SP.plabel
	AccessPLabelSet                     // union of equality selections (Unfold)
	AccessTag                           // tag selection on SD (baseline)
	AccessAll                           // every element node (wildcard)
)

func (k AccessKind) String() string {
	switch k {
	case AccessPLabelRange:
		return "plabel-range"
	case AccessPLabelEq:
		return "plabel-eq"
	case AccessPLabelSet:
		return "plabel-set"
	case AccessTag:
		return "tag"
	default:
		return "all"
	}
}

// Access describes one fragment's selection.
type Access struct {
	Kind AccessKind

	// AccessPLabelRange / AccessPLabelEq:
	Range plabel.Range // the P-label interval (Lo==Hi semantics for Eq)
	Query plabel.Query // provenance: the suffix path this selects

	// AccessPLabelSet:
	Labels []uint128.Uint128 // sorted, deduplicated exact labels
	Paths  [][]string        // provenance: one absolute path per label

	// AccessTag:
	TagID uint32
	Tag   string
}

// Fragment is one evaluation unit: a selection plus local predicates.
// Its bindings are the records matching the selection.
type Fragment struct {
	ID      int
	Access  Access
	Value   *string // data = *Value on the fragment's binding
	LevelEq uint16  // non-zero: binding.level must equal this (baseline root)
	// Empty marks a fragment that can bind nothing (unknown tag or
	// impossible path); the whole plan's result is then empty.
	Empty bool
}

// Join is a structural (D-) join between two fragments' bindings:
// anc.start < desc.start && anc.end > desc.end, plus a level constraint.
type Join struct {
	Anc, Desc int // fragment IDs
	// Gap is the required level difference desc.level - anc.level.
	// Exact: difference == Gap. !Exact: difference >= Gap (Gap <= 1 is
	// then plain containment).
	Gap   int
	Exact bool
}

// Plan is a translated query.
type Plan struct {
	Translator string
	Source     xpath.Query
	Fragments  []*Fragment
	Joins      []Join
	Return     int    // fragment whose bindings are the query result
	Note       string // non-empty: a degradation note (e.g. Unfold fallback)
}

// LevelOK checks the join's level constraint for an (ancestor,
// descendant) pair that already satisfies interval containment.
func (j Join) LevelOK(ancLevel, descLevel uint16) bool {
	diff := int(descLevel) - int(ancLevel)
	if j.Exact {
		return diff == j.Gap
	}
	min := j.Gap
	if min < 1 {
		min = 1
	}
	return diff >= min
}

// NumJoins returns the number of D-joins (the paper's headline cost).
func (p *Plan) NumJoins() int { return len(p.Joins) }

// Empty reports whether the plan is statically empty.
func (p *Plan) Empty() bool {
	for _, f := range p.Fragments {
		if f.Empty {
			return true
		}
	}
	return false
}

// SelectionKinds counts equality and range selections (paper §5.2.2
// compares translators by exactly this). A plabel-set counts one equality
// per member path.
func (p *Plan) SelectionKinds() (eq, rng int) {
	for _, f := range p.Fragments {
		switch f.Access.Kind {
		case AccessPLabelEq:
			eq++
		case AccessPLabelSet:
			eq += len(f.Access.Labels)
		case AccessPLabelRange:
			rng++
		case AccessTag, AccessAll:
			// Baseline tag selections are equality predicates on tag.
			eq++
		}
	}
	return eq, rng
}

// Fragment returns the fragment with the given id.
func (p *Plan) Fragment(id int) *Fragment { return p.Fragments[id] }

// String renders a compact human-readable plan description.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan[%s] %s\n", p.Translator, p.Source.String())
	for _, f := range p.Fragments {
		fmt.Fprintf(&b, "  F%d: %s", f.ID, f.Access.describe())
		if f.Value != nil {
			fmt.Fprintf(&b, " [data=%q]", *f.Value)
		}
		if f.LevelEq != 0 {
			fmt.Fprintf(&b, " [level=%d]", f.LevelEq)
		}
		if f.Empty {
			b.WriteString(" [empty]")
		}
		if f.ID == p.Return {
			b.WriteString(" -> return")
		}
		b.WriteString("\n")
	}
	for _, j := range p.Joins {
		op := ">="
		if j.Exact {
			op = "=="
		}
		fmt.Fprintf(&b, "  F%d contains F%d (level gap %s %d)\n", j.Anc, j.Desc, op, j.Gap)
	}
	return b.String()
}

func (a Access) describe() string {
	switch a.Kind {
	case AccessPLabelRange:
		return fmt.Sprintf("range %s in [%s,%s]", a.Query, a.Range.Lo, a.Range.Hi)
	case AccessPLabelEq:
		return fmt.Sprintf("eq %s = %s", a.Query, a.Range.Lo)
	case AccessPLabelSet:
		parts := make([]string, len(a.Paths))
		for i, p := range a.Paths {
			parts[i] = "/" + strings.Join(p, "/")
		}
		return fmt.Sprintf("set {%s}", strings.Join(parts, ", "))
	case AccessTag:
		return fmt.Sprintf("tag %s", a.Tag)
	default:
		return "all-elements"
	}
}

// newPlan allocates an empty plan.
func newPlan(name string, q xpath.Query) *Plan {
	return &Plan{Translator: name, Source: q.Clone()}
}

// addFragment appends a fragment and returns its id.
func (p *Plan) addFragment(f *Fragment) int {
	f.ID = len(p.Fragments)
	p.Fragments = append(p.Fragments, f)
	return f.ID
}

// Translator is a named translation strategy.
type Translator func(ctx Context, q xpath.Query) (*Plan, error)

// ByName returns the translator with the given name: "dlabel" (baseline),
// "split", "pushup" or "unfold".
func ByName(name string) (Translator, error) {
	switch strings.ToLower(name) {
	case "dlabel", "baseline", "d-labeling":
		return Baseline, nil
	case "split":
		return Split, nil
	case "pushup", "push-up":
		return PushUp, nil
	case "unfold":
		return Unfold, nil
	}
	return nil, fmt.Errorf("translate: unknown translator %q", name)
}

// Names lists the translator names in the paper's comparison order.
func Names() []string { return []string{"dlabel", "split", "pushup", "unfold"} }
