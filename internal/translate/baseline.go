package translate

import (
	"fmt"

	"repro/internal/xpath"
)

// Baseline translates a query the way a pure D-labeling system does
// (paper §1, §5): every query-tree node becomes a tag selection over the
// SD relation, and every query-tree edge becomes a D-join. A query with
// l tags costs l-1 joins.
func Baseline(ctx Context, q xpath.Query) (*Plan, error) {
	if q.Root == nil {
		return nil, fmt.Errorf("translate: empty query")
	}
	p := newPlan("dlabel", q)
	// The clone inside the plan is the tree we walk, so node identity is
	// stable for locating the return node.
	retNode := p.Source.Return()

	var emit func(n *xpath.Node, anc int) error
	emit = func(n *xpath.Node, anc int) error {
		f := &Fragment{Value: n.Value}
		if n.IsWildcard() {
			f.Access = Access{Kind: AccessAll}
		} else {
			digit, ok := ctx.Scheme.TagDigit(n.Tag)
			if !ok {
				f.Empty = true
			}
			f.Access = Access{Kind: AccessTag, TagID: uint32(digit), Tag: n.Tag}
		}
		if anc < 0 && n.Axis == xpath.Child {
			// A leading "/" pins the root element: level 1.
			f.LevelEq = 1
		}
		id := p.addFragment(f)
		if anc >= 0 {
			p.Joins = append(p.Joins, Join{Anc: anc, Desc: id, Gap: 1, Exact: n.Axis == xpath.Child})
		}
		if n == retNode {
			p.Return = id
		}
		for _, b := range n.Branches {
			if err := emit(b, id); err != nil {
				return err
			}
		}
		if n.Next != nil {
			return emit(n.Next, id)
		}
		return nil
	}
	if err := emit(p.Source.Root, -1); err != nil {
		return nil, err
	}
	return p, nil
}
