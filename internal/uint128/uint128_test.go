package uint128

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func fromPair(hi, lo uint64) Uint128 { return Uint128{Hi: hi, Lo: lo} }

func TestBasicConstants(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero is not zero")
	}
	if One.Cmp(From64(1)) != 0 {
		t.Fatal("One != From64(1)")
	}
	if Max.Add(One).Cmp(Zero) != 0 {
		t.Fatal("Max+1 should wrap to 0")
	}
	if Zero.Sub(One).Cmp(Max) != 0 {
		t.Fatal("0-1 should wrap to Max")
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Uint128
		want int
	}{
		{Zero, Zero, 0},
		{Zero, One, -1},
		{One, Zero, 1},
		{fromPair(1, 0), fromPair(0, ^uint64(0)), 1},
		{fromPair(0, ^uint64(0)), fromPair(1, 0), -1},
		{fromPair(5, 7), fromPair(5, 7), 0},
		{fromPair(5, 7), fromPair(5, 8), -1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%v,%v) = %v", c.a, c.b, got)
		}
		if got := c.a.Leq(c.b); got != (c.want <= 0) {
			t.Errorf("Leq(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestAddCarry(t *testing.T) {
	a := fromPair(0, ^uint64(0))
	got := a.Add(One)
	if got != fromPair(1, 0) {
		t.Fatalf("carry: got %v", got)
	}
	if a.Add64(1) != fromPair(1, 0) {
		t.Fatal("Add64 carry failed")
	}
}

func TestSubBorrow(t *testing.T) {
	a := fromPair(1, 0)
	got := a.Sub(One)
	if got != fromPair(0, ^uint64(0)) {
		t.Fatalf("borrow: got %v", got)
	}
	if a.Sub64(1) != fromPair(0, ^uint64(0)) {
		t.Fatal("Sub64 borrow failed")
	}
}

func TestShifts(t *testing.T) {
	one := One
	if one.Lsh(64) != fromPair(1, 0) {
		t.Fatal("1<<64")
	}
	if one.Lsh(127) != fromPair(1<<63, 0) {
		t.Fatal("1<<127")
	}
	if one.Lsh(128) != Zero {
		t.Fatal("1<<128 should be 0")
	}
	if fromPair(1, 0).Rsh(64) != One {
		t.Fatal("2^64>>64")
	}
	if fromPair(1<<63, 0).Rsh(127) != One {
		t.Fatal("2^127>>127")
	}
	if Max.Rsh(128) != Zero {
		t.Fatal("Max>>128 should be 0")
	}
	if Max.Lsh(0) != Max || Max.Rsh(0) != Max {
		t.Fatal("shift by 0 should be identity")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		u    Uint128
		want string
	}{
		{Zero, "0"},
		{From64(42), "42"},
		{From64(^uint64(0)), "18446744073709551615"},
		{fromPair(1, 0), "18446744073709551616"},
		{Max, "340282366920938463463374607431768211455"},
	}
	for _, c := range cases {
		if got := c.u.String(); got != c.want {
			t.Errorf("String(%v/%v) = %q, want %q", c.u.Hi, c.u.Lo, got, c.want)
		}
	}
}

func TestQuoRem64(t *testing.T) {
	u := fromPair(7, 9)
	q, r := u.QuoRem64(3)
	// Verify via big.Int.
	want, _ := new(big.Int).QuoRem(u.Big(), big.NewInt(3), new(big.Int))
	if q.Big().Cmp(want) != 0 {
		t.Fatalf("quo mismatch: %v", q)
	}
	check := q.Mul64(3).Add64(r)
	if check != u {
		t.Fatalf("q*3+r != u: %v", check)
	}
}

func TestQuoRemPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on division by zero")
		}
	}()
	One.QuoRem64(0)
}

func TestBytesRoundTrip(t *testing.T) {
	vals := []Uint128{Zero, One, Max, fromPair(0xdeadbeef, 0xcafebabe), fromPair(1, 0)}
	for _, v := range vals {
		b := v.AppendBytes(nil)
		if len(b) != 16 {
			t.Fatalf("encoding length %d", len(b))
		}
		if got := FromBytes(b); got != v {
			t.Errorf("roundtrip %v -> %v", v, got)
		}
	}
}

func TestBitLen(t *testing.T) {
	if Zero.BitLen() != 0 {
		t.Fatal("BitLen(0)")
	}
	if One.BitLen() != 1 {
		t.Fatal("BitLen(1)")
	}
	if fromPair(1, 0).BitLen() != 65 {
		t.Fatal("BitLen(2^64)")
	}
	if Max.BitLen() != 128 {
		t.Fatal("BitLen(Max)")
	}
}

func TestFromBig(t *testing.T) {
	u, ok := FromBig(big.NewInt(12345))
	if !ok || u.Cmp(From64(12345)) != 0 {
		t.Fatal("FromBig small")
	}
	if _, ok := FromBig(big.NewInt(-1)); ok {
		t.Fatal("FromBig(-1) should be inexact")
	}
	over := new(big.Int).Lsh(big.NewInt(1), 128)
	if _, ok := FromBig(over); ok {
		t.Fatal("FromBig(2^128) should be inexact")
	}
	u, ok = FromBig(Max.Big())
	if !ok || u != Max {
		t.Fatal("FromBig(Max)")
	}
}

// --- property-based tests against math/big ---

func randU128(r *rand.Rand) Uint128 {
	return Uint128{Hi: r.Uint64(), Lo: r.Uint64()}
}

var mod128 = new(big.Int).Lsh(big.NewInt(1), 128)

func TestQuickAdd(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := fromPair(ah, al), fromPair(bh, bl)
		want := new(big.Int).Add(a.Big(), b.Big())
		want.Mod(want, mod128)
		return a.Add(b).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSub(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := fromPair(ah, al), fromPair(bh, bl)
		want := new(big.Int).Sub(a.Big(), b.Big())
		want.Mod(want, mod128)
		return a.Sub(b).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMul64(t *testing.T) {
	f := func(ah, al, v uint64) bool {
		a := fromPair(ah, al)
		want := new(big.Int).Mul(a.Big(), new(big.Int).SetUint64(v))
		want.Mod(want, mod128)
		return a.Mul64(v).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShifts(t *testing.T) {
	f := func(ah, al uint64, nRaw uint8) bool {
		a := fromPair(ah, al)
		n := uint(nRaw) % 130
		wantL := new(big.Int).Lsh(a.Big(), n)
		wantL.Mod(wantL, mod128)
		wantR := new(big.Int).Rsh(a.Big(), n)
		return a.Lsh(n).Big().Cmp(wantL) == 0 && a.Rsh(n).Big().Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpMatchesBig(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := fromPair(ah, al), fromPair(bh, bl)
		return a.Cmp(b) == a.Big().Cmp(b.Big())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesOrderPreserving(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := fromPair(ah, al), fromPair(bh, bl)
		ab, bb := a.AppendBytes(nil), b.AppendBytes(nil)
		cmpBytes := 0
		for i := range ab {
			if ab[i] != bb[i] {
				if ab[i] < bb[i] {
					cmpBytes = -1
				} else {
					cmpBytes = 1
				}
				break
			}
		}
		return cmpBytes == a.Cmp(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		u := randU128(r)
		if u.String() != u.Big().String() {
			t.Fatalf("String mismatch for %v/%v: %s vs %s", u.Hi, u.Lo, u.String(), u.Big().String())
		}
	}
}

func TestQuickQuoRem(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		u := randU128(r)
		v := r.Uint64()
		if v == 0 {
			v = 1
		}
		q, rem := u.QuoRem64(v)
		br := new(big.Int)
		bq, _ := new(big.Int).QuoRem(u.Big(), new(big.Int).SetUint64(v), br)
		if q.Big().Cmp(bq) != 0 || br.Uint64() != rem {
			t.Fatalf("QuoRem64(%s, %d) = (%s, %d), want (%s, %s)", u, v, q, rem, bq, br)
		}
	}
}

func TestQuickBitwise(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := fromPair(ah, al), fromPair(bh, bl)
		and := new(big.Int).And(a.Big(), b.Big())
		or := new(big.Int).Or(a.Big(), b.Big())
		xor := new(big.Int).Xor(a.Big(), b.Big())
		return a.And(b).Big().Cmp(and) == 0 &&
			a.Or(b).Big().Cmp(or) == 0 &&
			a.Xor(b).Big().Cmp(xor) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
