// Package uint128 implements 128-bit unsigned integer arithmetic.
//
// BLAS P-labels live in an integer domain of size m >= (n+1)^h, where n is
// the number of distinct tags in a document and h its depth (paper §3.2.2).
// For realistic documents (e.g. the Auction data set: 77 tags, depth 12)
// that domain exceeds 2^64, so the labeling scheme is built on this package.
//
// The zero value is the number 0 and is ready to use. Values are immutable;
// all operations return new values.
package uint128

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Uint128 is an unsigned 128-bit integer: Hi*2^64 + Lo.
type Uint128 struct {
	Hi uint64
	Lo uint64
}

// Common constants.
var (
	Zero = Uint128{}
	One  = Uint128{Lo: 1}
	Max  = Uint128{Hi: ^uint64(0), Lo: ^uint64(0)}
)

// From64 returns v as a Uint128.
func From64(v uint64) Uint128 { return Uint128{Lo: v} }

// FromBig converts b to a Uint128. It reports whether the conversion was
// exact; values outside [0, 2^128) are truncated to the low 128 bits and
// negative values report false.
func FromBig(b *big.Int) (Uint128, bool) {
	if b.Sign() < 0 {
		var t big.Int
		t.And(b, maxBig())
		u, _ := FromBig(&t)
		return u, false
	}
	var lo, hi big.Int
	lo.And(b, mask64Big())
	hi.Rsh(b, 64)
	exact := hi.BitLen() <= 64
	var t big.Int
	t.And(&hi, mask64Big())
	return Uint128{Hi: t.Uint64(), Lo: lo.Uint64()}, exact
}

func mask64Big() *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), 64)
	return m.Sub(m, big.NewInt(1))
}

func maxBig() *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), 128)
	return m.Sub(m, big.NewInt(1))
}

// Big returns u as a math/big integer.
func (u Uint128) Big() *big.Int {
	b := new(big.Int).SetUint64(u.Hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(u.Lo))
}

// IsZero reports whether u == 0.
func (u Uint128) IsZero() bool { return u.Hi == 0 && u.Lo == 0 }

// Cmp compares u and v, returning -1 if u < v, 0 if u == v, +1 if u > v.
func (u Uint128) Cmp(v Uint128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	}
	return 0
}

// Less reports whether u < v.
func (u Uint128) Less(v Uint128) bool { return u.Cmp(v) < 0 }

// Leq reports whether u <= v.
func (u Uint128) Leq(v Uint128) bool { return u.Cmp(v) <= 0 }

// Add returns u + v mod 2^128.
func (u Uint128) Add(v Uint128) Uint128 {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, _ := bits.Add64(u.Hi, v.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}
}

// Add64 returns u + v mod 2^128.
func (u Uint128) Add64(v uint64) Uint128 { return u.Add(From64(v)) }

// Sub returns u - v mod 2^128.
func (u Uint128) Sub(v Uint128) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(u.Hi, v.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}
}

// Sub64 returns u - v mod 2^128.
func (u Uint128) Sub64(v uint64) Uint128 { return u.Sub(From64(v)) }

// Mul64 returns u * v mod 2^128.
func (u Uint128) Mul64(v uint64) Uint128 {
	hi, lo := bits.Mul64(u.Lo, v)
	hi += u.Hi * v
	return Uint128{Hi: hi, Lo: lo}
}

// Lsh returns u << n. Shifts of 128 or more return zero.
func (u Uint128) Lsh(n uint) Uint128 {
	switch {
	case n >= 128:
		return Zero
	case n >= 64:
		return Uint128{Hi: u.Lo << (n - 64)}
	case n == 0:
		return u
	}
	return Uint128{Hi: u.Hi<<n | u.Lo>>(64-n), Lo: u.Lo << n}
}

// Rsh returns u >> n. Shifts of 128 or more return zero.
func (u Uint128) Rsh(n uint) Uint128 {
	switch {
	case n >= 128:
		return Zero
	case n >= 64:
		return Uint128{Lo: u.Hi >> (n - 64)}
	case n == 0:
		return u
	}
	return Uint128{Hi: u.Hi >> n, Lo: u.Lo>>n | u.Hi<<(64-n)}
}

// And returns u & v.
func (u Uint128) And(v Uint128) Uint128 { return Uint128{Hi: u.Hi & v.Hi, Lo: u.Lo & v.Lo} }

// Or returns u | v.
func (u Uint128) Or(v Uint128) Uint128 { return Uint128{Hi: u.Hi | v.Hi, Lo: u.Lo | v.Lo} }

// Xor returns u ^ v.
func (u Uint128) Xor(v Uint128) Uint128 { return Uint128{Hi: u.Hi ^ v.Hi, Lo: u.Lo ^ v.Lo} }

// Not returns ^u.
func (u Uint128) Not() Uint128 { return Uint128{Hi: ^u.Hi, Lo: ^u.Lo} }

// LeadingZeros returns the number of leading zero bits in u; 128 for u == 0.
func (u Uint128) LeadingZeros() int {
	if u.Hi != 0 {
		return bits.LeadingZeros64(u.Hi)
	}
	return 64 + bits.LeadingZeros64(u.Lo)
}

// BitLen returns the number of bits required to represent u; 0 for u == 0.
func (u Uint128) BitLen() int { return 128 - u.LeadingZeros() }

// QuoRem64 returns the quotient and remainder of u divided by v.
// It panics if v == 0.
func (u Uint128) QuoRem64(v uint64) (q Uint128, r uint64) {
	if v == 0 {
		panic("uint128: division by zero")
	}
	q.Hi, r = u.Hi/v, u.Hi%v
	q.Lo, r = bits.Div64(r, u.Lo, v)
	return q, r
}

// String returns the decimal representation of u.
func (u Uint128) String() string {
	if u.Hi == 0 {
		return fmt.Sprintf("%d", u.Lo)
	}
	// Peel off base-1e19 digits.
	var buf []byte
	for !u.IsZero() {
		var r uint64
		u, r = u.QuoRem64(1e19)
		if u.IsZero() {
			buf = append([]byte(fmt.Sprintf("%d", r)), buf...)
		} else {
			buf = append([]byte(fmt.Sprintf("%019d", r)), buf...)
		}
	}
	return string(buf)
}

// AppendBytes appends the 16-byte big-endian encoding of u to dst.
// The encoding preserves order: for any u, v, bytes(u) < bytes(v)
// lexicographically iff u < v.
func (u Uint128) AppendBytes(dst []byte) []byte {
	for i := 56; i >= 0; i -= 8 {
		dst = append(dst, byte(u.Hi>>uint(i)))
	}
	for i := 56; i >= 0; i -= 8 {
		dst = append(dst, byte(u.Lo>>uint(i)))
	}
	return dst
}

// FromBytes decodes a 16-byte big-endian encoding produced by AppendBytes.
// It panics if b is shorter than 16 bytes.
func FromBytes(b []byte) Uint128 {
	_ = b[15]
	var u Uint128
	for i := 0; i < 8; i++ {
		u.Hi = u.Hi<<8 | uint64(b[i])
	}
	for i := 8; i < 16; i++ {
		u.Lo = u.Lo<<8 | uint64(b[i])
	}
	return u
}
