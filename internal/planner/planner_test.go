package planner

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/xpath"
)

func skewedStore(t *testing.T) *core.Store {
	t.Helper()
	tree, err := datagen.ByName(datagen.NameSkewed, datagen.Options{Seed: 1, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.BuildFromTree(tree, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

func mustTranslate(t *testing.T, st *core.Store, translator, query string) *translate.Plan {
	t.Helper()
	tr, err := translate.ByName(translator)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(query))
	if err != nil {
		t.Fatalf("translate %s: %v", query, err)
	}
	return lp
}

func TestFixedIsIdentityOrder(t *testing.T) {
	st := skewedStore(t)
	lp := mustTranslate(t, st, "pushup", `//item[id][val="frozen"]`)
	p := Fixed(lp)
	if p.Reordered || p.KnownEmpty || p.ProbedEmpty() || p.Est != nil {
		t.Fatalf("Fixed plan has planner state: %+v", p)
	}
	if len(p.Scans) != len(lp.Fragments) {
		t.Fatalf("Scans = %v", p.Scans)
	}
	for i, id := range p.Scans {
		if id != i {
			t.Fatalf("Scans = %v, want identity", p.Scans)
		}
	}
	for i := range p.Joins {
		if p.Joins[i] != lp.Joins[i] {
			t.Fatalf("Joins reordered: %v vs %v", p.Joins, lp.Joins)
		}
	}
}

// TestGreedyOrdersMostSelectiveFirst is the skewed corpus's core claim:
// the tiny val fragment (3 cold records) is scanned and joined before
// the ~4000-record item and id fragments the translator lists first.
func TestGreedyOrdersMostSelectiveFirst(t *testing.T) {
	st := skewedStore(t)
	lp := mustTranslate(t, st, "pushup", `//item[id][val="`+datagen.DecoyVal+`"]`)
	if len(lp.Fragments) != 3 {
		t.Fatalf("fragments = %d, want 3", len(lp.Fragments))
	}
	ctx := relstore.NewExecContext()
	p, err := Plan(ctx, st, lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Reordered || p.KnownEmpty {
		t.Fatalf("Reordered=%v KnownEmpty=%v", p.Reordered, p.KnownEmpty)
	}
	if ctx.PageReads() == 0 {
		t.Error("probe page reads were not attributed to ctx")
	}
	if p.Scans[0] != 2 {
		t.Errorf("Scans = %v (est %v), want the val fragment F2 first", p.Scans, p.Est)
	}
	if p.Joins[0].Desc != 2 {
		t.Errorf("Joins = %+v, want the F2 join first", p.Joins)
	}
	if p.Est[2] >= p.Est[1] || p.Est[2] >= p.Est[0] {
		t.Errorf("Est = %v, want F2 smallest", p.Est)
	}
	// Accuracy: the id run holds ~4000 records, the val run 3 cold
	// records (capped further by the decoy value's data run of 1).
	if p.Est[1] < 2000 || p.Est[1] > 8000 {
		t.Errorf("Est[1] = %d, want ~4000", p.Est[1])
	}
	if p.Est[2] < 1 || p.Est[2] > 8 {
		t.Errorf("Est[2] = %d, want tiny", p.Est[2])
	}
	// The join order must stay a bound tree: every join's ancestor is
	// the root or a prior join's endpoint.
	bound := map[int]bool{p.Joins[0].Anc: true}
	for _, j := range p.Joins {
		if !bound[j.Anc] {
			t.Fatalf("join order not bound: %+v", p.Joins)
		}
		bound[j.Desc] = true
	}
}

func TestNoReorderKeepsTranslationOrder(t *testing.T) {
	st := skewedStore(t)
	lp := mustTranslate(t, st, "pushup", `//item[id][val="`+datagen.DecoyVal+`"]`)
	ctx := relstore.NewExecContext()
	p, err := Plan(ctx, st, lp, Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reordered || p.Est != nil {
		t.Fatalf("NoReorder plan probed the store: %+v", p)
	}
	if ctx.PageReads() != 0 {
		t.Errorf("NoReorder read %d pages, want 0", ctx.PageReads())
	}
	for i, id := range p.Scans {
		if id != i {
			t.Fatalf("Scans = %v, want identity", p.Scans)
		}
	}
}

// TestProbeProvenEmpty: no hot item has a val child, so the suffix path
// hot/item/val resolves an empty P-label run and the probe proves the
// whole plan empty before any record is fetched.
func TestProbeProvenEmpty(t *testing.T) {
	st := skewedStore(t)
	lp := mustTranslate(t, st, "pushup", `//hot/item[val]`)
	if lp.Empty() {
		t.Fatal("plan is statically empty; the probe proof is untested")
	}
	p, err := Plan(relstore.NewExecContext(), st, lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.KnownEmpty || !p.ProbedEmpty() {
		t.Fatalf("KnownEmpty=%v ProbedEmpty=%v, want probe-proven empty", p.KnownEmpty, p.ProbedEmpty())
	}
	if p.EmptyFragment != 1 {
		t.Errorf("EmptyFragment = %d, want 1 (the val fragment)", p.EmptyFragment)
	}
	if p.Est[1] != 0 {
		t.Errorf("Est[1] = %d, want 0", p.Est[1])
	}
}

// TestNonTreeJoinsFallBack: join sets both engines reject (a fragment
// with two parents, multiple roots) must come back in translated order
// so the planner never changes error behavior.
func TestNonTreeJoinsFallBack(t *testing.T) {
	st := skewedStore(t)
	all := func(id int) *translate.Fragment {
		return &translate.Fragment{ID: id, Access: translate.Access{Kind: translate.AccessAll}}
	}
	cases := map[string][]translate.Join{
		"two parents":    {{Anc: 0, Desc: 1}, {Anc: 0, Desc: 2}, {Anc: 1, Desc: 2}},
		"multiple roots": {{Anc: 0, Desc: 1}, {Anc: 2, Desc: 3}},
	}
	for name, joins := range cases {
		n := 0
		for _, j := range joins {
			if j.Anc > n {
				n = j.Anc
			}
			if j.Desc > n {
				n = j.Desc
			}
		}
		frags := make([]*translate.Fragment, n+1)
		for i := range frags {
			frags[i] = all(i)
		}
		lp := &translate.Plan{Translator: "test", Fragments: frags, Joins: joins}
		p, err := Plan(relstore.NewExecContext(), st, lp, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range joins {
			if p.Joins[i] != joins[i] {
				t.Errorf("%s: join order changed: %+v", name, p.Joins)
				break
			}
		}
	}
}

func TestStringRendersOrder(t *testing.T) {
	st := skewedStore(t)
	lp := mustTranslate(t, st, "pushup", `//item[id][val="`+datagen.DecoyVal+`"]`)
	p, err := Plan(relstore.NewExecContext(), st, lp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"order[greedy]", "scan F2 (est ", "join F0 contains F2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if f := Fixed(lp).String(); !strings.Contains(f, "order[fixed]") {
		t.Errorf("Fixed String() = %q", f)
	}
}
