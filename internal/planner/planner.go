// Package planner turns a translated logical plan into an ordered
// physical plan — the logical→physical split of the query path.
//
// Translation (internal/translate) decides WHAT to evaluate: which
// fragment selections and which structural joins. The planner decides in
// what ORDER, using the one statistic BLAS gets for free: a fragment's
// P-label run length is readable from the clustered B+ tree in O(log n)
// before any record is fetched (relstore's Estimate probes). Following
// the greedy statistics-free discipline, fragment scans are ordered
// most-selective-first and the join tree is expanded greedily from its
// root, always picking the frontier edge whose descendant fragment has
// the smallest estimate — so the join order stays a bound tree (each
// join's ancestor already joined), which is exactly the invariant both
// engines require.
//
// Because a zero estimate is definitive (see pbtree.EstimateRange), the
// planner can also prove a plan empty before execution: Physical.
// KnownEmpty short-circuits both engines with zero further page reads.
//
// # Plan reuse
//
// A *Physical is immutable once Plan returns it, like the *translate.
// Plan it wraps: engines only read it, so one physical plan may be
// executed any number of times, concurrently, on either engine. This is
// what blas.PreparedQuery and the blasd plan cache store. The estimates
// (and therefore the chosen order and any KnownEmpty proof) were read
// from one store's indexes, so a physical plan is only valid against the
// store that planned it — cache layers key plans by store generation for
// exactly this reason.
package planner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/translate"
)

// maxSetProbes caps per-label probing of an AccessPLabelSet (Unfold can
// emit hundreds of labels); beyond the cap the sum is extrapolated.
const maxSetProbes = 16

// Options configures planning.
type Options struct {
	// NoReorder skips the selectivity probes and keeps the translator's
	// fixed order — the A/B escape hatch behind blasquery -no-reorder.
	NoReorder bool
}

// Physical is an ordered physical plan: the logical plan plus the
// execution order both engines follow. Immutable after Plan returns.
type Physical struct {
	// Logical is the translated plan this order was derived from.
	Logical *translate.Plan
	// Scans lists every fragment id in scan order (most selective
	// first; translation order when not reordered).
	Scans []int
	// Joins holds the logical plan's joins in execution order. The
	// order is always a bound tree: each join's Anc fragment is the
	// root or a prior join's endpoint.
	Joins []translate.Join
	// Est holds per-fragment cardinality estimates indexed by fragment
	// id; nil when planning ran with NoReorder. A zero entry is a
	// proof of emptiness, not an estimate.
	Est []uint64
	// KnownEmpty reports that the plan can bind nothing — statically
	// (translate marked a fragment empty) or proven by a probe.
	KnownEmpty bool
	// EmptyFragment is the fragment a probe proved empty (-1 if none);
	// set only when KnownEmpty came from a probe rather than a static
	// translate mark.
	EmptyFragment int
	// Reordered reports whether greedy ordering ran (false for Fixed
	// and NoReorder plans).
	Reordered bool
}

// ProbedEmpty reports whether emptiness was proven by a planner probe
// (as opposed to statically by translation). Engines count this as an
// early termination: scan and join work was provably skipped.
func (p *Physical) ProbedEmpty() bool { return p.KnownEmpty && p.EmptyFragment >= 0 }

// Fixed wraps a logical plan in translation order, without probing the
// store: scans run in fragment-id order and joins exactly as translated.
// This is the pre-planner behavior, kept for A/B comparison and for
// tests that execute hand-built plans.
func Fixed(lp *translate.Plan) *Physical {
	scans := make([]int, len(lp.Fragments))
	for i := range scans {
		scans[i] = i
	}
	return &Physical{
		Logical:       lp,
		Scans:         scans,
		Joins:         lp.Joins,
		KnownEmpty:    lp.Empty(),
		EmptyFragment: -1,
	}
}

// Plan orders lp for execution against st. Probe page reads are
// accounted to ctx (nil discards them), so planning cost is visible in
// the same per-query metrics as execution.
func Plan(ctx *relstore.ExecContext, st *core.Store, lp *translate.Plan, opts Options) (*Physical, error) {
	if opts.NoReorder || lp.Empty() {
		return Fixed(lp), nil
	}

	est := make([]uint64, len(lp.Fragments))
	for _, f := range lp.Fragments {
		e, provable, err := estimateFragment(ctx, st, f)
		if err != nil {
			return nil, fmt.Errorf("planner: fragment %d: %w", f.ID, err)
		}
		est[f.ID] = e
		if e == 0 && provable {
			// Probe-proven empty fragment: every join is an inner join,
			// so the whole plan is empty. Keep the fixed order (it will
			// not run) and let the engines short-circuit.
			p := Fixed(lp)
			p.Est = est
			p.KnownEmpty = true
			p.EmptyFragment = f.ID
			p.Reordered = true
			return p, nil
		}
		if e == 0 {
			est[f.ID] = 1 // not provable: keep it orderable but non-zero
		}
	}

	p := &Physical{
		Logical:       lp,
		Scans:         orderScans(lp, est),
		Joins:         orderJoins(lp, est),
		Est:           est,
		EmptyFragment: -1,
		Reordered:     true,
	}
	return p, nil
}

// orderScans returns fragment ids by ascending estimate (ties in id
// order, so the order is deterministic).
func orderScans(lp *translate.Plan, est []uint64) []int {
	scans := make([]int, len(lp.Fragments))
	for i := range scans {
		scans[i] = i
	}
	sort.SliceStable(scans, func(a, b int) bool {
		if est[scans[a]] != est[scans[b]] {
			return est[scans[a]] < est[scans[b]]
		}
		return scans[a] < scans[b]
	})
	return scans
}

// orderJoins greedily expands the join tree from its root, always taking
// the frontier edge (ancestor already bound) whose descendant has the
// smallest estimate; ties fall back to translation order. If the joins
// do not form a single-rooted tree (which both engines reject anyway),
// the translated order is returned unchanged so error behavior is
// identical with and without the planner.
func orderJoins(lp *translate.Plan, est []uint64) []translate.Join {
	if len(lp.Joins) <= 1 {
		return lp.Joins
	}
	// Find the root: a fragment that appears as an ancestor (or is the
	// return fragment) and never as a descendant.
	isDesc := map[int]bool{}
	for _, j := range lp.Joins {
		if isDesc[j.Desc] {
			return lp.Joins // two parents: not a tree
		}
		isDesc[j.Desc] = true
	}
	root := -1
	for _, j := range lp.Joins {
		if !isDesc[j.Anc] {
			if root != -1 && root != j.Anc {
				return lp.Joins // multiple roots
			}
			root = j.Anc
		}
	}
	if root == -1 {
		return lp.Joins // cyclic
	}

	bound := map[int]bool{root: true}
	used := make([]bool, len(lp.Joins))
	out := make([]translate.Join, 0, len(lp.Joins))
	for len(out) < len(lp.Joins) {
		pick := -1
		for i, j := range lp.Joins {
			if used[i] || !bound[j.Anc] {
				continue
			}
			if pick == -1 || est[j.Desc] < est[lp.Joins[pick].Desc] {
				pick = i
			}
		}
		if pick == -1 {
			return lp.Joins // disconnected: keep translated order
		}
		used[pick] = true
		bound[lp.Joins[pick].Desc] = true
		out = append(out, lp.Joins[pick])
	}
	return out
}

// estimateFragment probes the store for one fragment's output
// cardinality. provable reports that a zero estimate is a proof of
// emptiness (an interpolated or extrapolated zero is returned as the
// floor value 1 by the probes themselves, so zeros here are exact).
func estimateFragment(ctx *relstore.ExecContext, st *core.Store, f *translate.Fragment) (e uint64, provable bool, err error) {
	if f.Empty {
		return 0, true, nil
	}
	switch f.Access.Kind {
	case translate.AccessPLabelEq:
		e, err = st.SP().EstimatePLabelExact(ctx, f.Access.Range.Lo)
		provable = true
	case translate.AccessPLabelRange:
		if f.Access.Range.Empty {
			return 0, true, nil
		}
		e, err = st.SP().EstimatePLabelRange(ctx, f.Access.Range.Lo, f.Access.Range.Hi)
		provable = true
	case translate.AccessPLabelSet:
		labels := f.Access.Labels
		probed := len(labels)
		if probed > maxSetProbes {
			probed = maxSetProbes
		}
		var sum uint64
		for _, l := range labels[:probed] {
			var le uint64
			if le, err = st.SP().EstimatePLabelExact(ctx, l); err != nil {
				return 0, false, err
			}
			sum += le
		}
		if probed == len(labels) {
			return sum, true, nil
		}
		// Extrapolate the unprobed tail; a zero partial sum proves
		// nothing about it, so floor at 1.
		e = sum * uint64(len(labels)) / uint64(probed)
		if e == 0 {
			e = 1
		}
		return e, false, nil
	case translate.AccessTag:
		e, err = st.SD().EstimateTag(ctx, f.Access.TagID)
		provable = true
	case translate.AccessAll:
		// Free: the relation count is exact.
		return st.SD().Count(), true, nil
	default:
		return 0, false, fmt.Errorf("unknown access kind %v", f.Access.Kind)
	}
	if err != nil {
		return 0, false, err
	}
	// A value predicate caps the output by the data index's run for that
	// exact value — and an absent value proves the fragment empty.
	if f.Value != nil {
		dv, derr := st.SP().EstimateData(ctx, *f.Value)
		if derr != nil {
			return 0, false, derr
		}
		if dv < e {
			e = dv
		}
	}
	return e, provable, nil
}

// String renders the physical order for Explain output: scans with
// their estimates, then the join order.
func (p *Physical) String() string {
	var b strings.Builder
	mode := "fixed"
	if p.Reordered {
		mode = "greedy"
	}
	fmt.Fprintf(&b, "order[%s]", mode)
	if p.KnownEmpty {
		if p.EmptyFragment >= 0 {
			fmt.Fprintf(&b, " empty (fragment F%d proven empty by probe)", p.EmptyFragment)
		} else {
			b.WriteString(" empty (static)")
		}
		b.WriteString("\n")
		return b.String()
	}
	b.WriteString("\n")
	for _, id := range p.Scans {
		fmt.Fprintf(&b, "  scan F%d", id)
		if p.Est != nil {
			fmt.Fprintf(&b, " (est %d)", p.Est[id])
		}
		b.WriteString("\n")
	}
	for _, j := range p.Joins {
		fmt.Fprintf(&b, "  join F%d contains F%d", j.Anc, j.Desc)
		if p.Est != nil {
			fmt.Fprintf(&b, " (est %d)", p.Est[j.Desc])
		}
		b.WriteString("\n")
	}
	return b.String()
}
