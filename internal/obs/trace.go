// Package obs is the observability layer of the BLAS system: per-query
// phase tracing (Trace) and store-wide metrics (Registry, Histogram).
//
// The package sits below every other layer — it imports only the
// standard library — so the storage engine, both query engines and the
// public API can all report into it without import cycles.
//
// # Tracing cost model
//
// Tracing is opt-in per query. Everything on the hot path is written
// against a possibly-nil *Trace: every method is nil-safe, and the
// Begin/End span protocol reads the clock only when a trace is actually
// attached, so the tracing-off path costs one nil check and zero
// allocations (TestTraceOffZeroAlloc and BenchmarkTraceOff guard this,
// the same way BenchmarkJoinKey guards the twig merge keys).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one segment of a query's execution. Parse, Translate
// and the engine phases are recorded as non-overlapping wall-time spans
// on the coordinating goroutine, so their durations tile the query's
// total latency. PhasePrefetchStall is different: it accumulates across
// concurrent sweep partitions and overlaps PhaseSweep, so it is reported
// alongside the breakdown but excluded from the sum-to-total invariant.
type Phase uint8

// Phases of a query execution.
const (
	// PhaseParse is XPath parsing.
	PhaseParse Phase = iota
	// PhaseTranslate is plan translation (Split/Push-up/Unfold/D-label).
	PhaseTranslate
	// PhaseOrder is physical planning: the planner's selectivity probes
	// (O(log n) run-length estimates against the B+-trees) and the greedy
	// ordering of fragment scans and structural joins.
	PhaseOrder
	// PhaseScan covers fragment selections: the relational engine's
	// fragment scans, and the twig engine's stream preparation (P-label
	// run resolution via index skip scans).
	PhaseScan
	// PhaseJoin covers result combination: the relational engine's
	// structural D-joins, and the twig engine's shared-prefix merge of
	// path solutions.
	PhaseJoin
	// PhaseSweep is the twig engine's holistic stack sweep (zero on the
	// relational engine).
	PhaseSweep
	// PhaseFinalize is record-to-match conversion in the public API.
	PhaseFinalize
	// PhaseDecode is the cumulative time spent decoding heap-page records
	// in the batch layer (column-group decodes on format-2 pages, slotted
	// record parsing on format-1). Like PhasePrefetchStall it accumulates
	// across concurrent streams and overlaps the scan/sweep spans, so it
	// is reported alongside the breakdown but excluded from the
	// sum-to-total invariant.
	PhaseDecode
	// PhasePrefetchStall is the cumulative time sweep goroutines spent
	// blocked on stream prefetchers — time the prefetchers failed to
	// hide. It overlaps PhaseSweep and sums across partitions, so it can
	// exceed the sweep's wall time at high parallelism.
	PhasePrefetchStall
	// NumPhases is the number of phases (array sizing).
	NumPhases
)

var phaseNames = [NumPhases]string{
	"parse", "translate", "order", "scan", "join", "sweep", "finalize", "decode", "prefetch_stall",
}

// String returns the phase's snake_case name (used as JSON keys).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Trace accumulates one query's phase breakdown. A nil *Trace is valid
// everywhere one is accepted and records nothing; all methods are safe
// for concurrent use, so a partitioned sweep's workers may report into
// one trace.
type Trace struct {
	phases  [NumPhases]atomic.Int64 // cumulative nanoseconds
	decoded atomic.Uint64           // heap records decoded in the batch layer

	mu       sync.Mutex
	partRecs []uint64 // per-partition root-record counts, partition order
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Begin starts a span: it returns the current time when tracing is
// active and the zero time on a nil trace, without reading the clock.
//
//blas:hotpath
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes a span opened by Begin, attributing the elapsed time to
// phase p. A zero begin time (from a nil trace's Begin) is ignored, so
// Begin/End pairs need no tracing-enabled branch at the call site.
//
//blas:hotpath
func (t *Trace) End(p Phase, begin time.Time) {
	if t == nil || begin.IsZero() {
		return
	}
	t.phases[p].Add(int64(time.Since(begin)))
}

// Add attributes d to phase p directly (for durations measured by the
// caller).
//
//blas:hotpath
func (t *Trace) Add(p Phase, d time.Duration) {
	if t == nil {
		return
	}
	t.phases[p].Add(int64(d))
}

// AddDecoded counts n heap records decoded in the batch layer (the
// record count behind the PhaseDecode span).
//
//blas:hotpath
func (t *Trace) AddDecoded(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.decoded.Add(uint64(n))
}

// AddPartition records one sweep partition and the number of root
// records it owns. The sequential (unpartitioned) sweep records nothing:
// a snapshot with no partitions means the sweep ran whole.
func (t *Trace) AddPartition(rootRecords uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.partRecs = append(t.partRecs, rootRecords)
	t.mu.Unlock()
}

// TraceSnapshot is an immutable copy of a trace's accumulated phases.
type TraceSnapshot struct {
	Phases         [NumPhases]time.Duration
	DecodedRecords uint64   // heap records decoded in the batch layer
	Partitions     []uint64 // per-partition root-record counts; nil if unpartitioned
}

// Span returns the duration attributed to phase p.
func (s TraceSnapshot) Span(p Phase) time.Duration { return s.Phases[p] }

// Snapshot copies the trace's current state. Snapshotting a nil trace
// yields the zero snapshot.
func (t *Trace) Snapshot() TraceSnapshot {
	var s TraceSnapshot
	if t == nil {
		return s
	}
	for p := Phase(0); p < NumPhases; p++ {
		s.Phases[p] = time.Duration(t.phases[p].Load())
	}
	s.DecodedRecords = t.decoded.Load()
	t.mu.Lock()
	if len(t.partRecs) > 0 {
		s.Partitions = append([]uint64(nil), t.partRecs...)
	}
	t.mu.Unlock()
	return s
}
