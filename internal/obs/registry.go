package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry aggregates query metrics for one store over its lifetime:
// in-flight and completed query counts, per-engine latency histograms,
// per-translator counts, and the cumulative execution statistics
// (visited elements, page reads/misses) of every completed query.
//
// All update methods are safe for concurrent use and lock-free on the
// hot path except for the first query of a new engine/translator label,
// which takes a mutex once to install the counter. Snapshot may race
// with updates; its derived totals stay internally consistent (see
// RegistrySnapshot).
type Registry struct {
	inFlight   atomic.Int64
	errors     atomic.Uint64
	visited    atomic.Uint64
	pageReads  atomic.Uint64
	pageMisses atomic.Uint64
	earlyTerms atomic.Uint64
	latency    Histogram
	batchSizes [NumBatchClasses]atomic.Uint64

	mu           sync.RWMutex
	byEngine     map[string]*Histogram
	byTranslator map[string]*atomic.Uint64
}

// NumBatchClasses is the number of power-of-two batch-size classes in
// the registry's batch-size histogram: class i counts batches of
// 64·2^i .. 64·2^(i+1)-1 records, with the last class absorbing
// everything larger.
const NumBatchClasses = 8

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byEngine:     map[string]*Histogram{},
		byTranslator: map[string]*atomic.Uint64{},
	}
}

// QueryBegin records a query entering execution. Every QueryBegin must
// be balanced by exactly one QueryDone or QueryFailed.
func (r *Registry) QueryBegin() { r.inFlight.Add(1) }

// QueryFailed retires an in-flight query that returned an error.
func (r *Registry) QueryFailed() {
	r.errors.Add(1)
	r.inFlight.Add(-1)
}

// QueryDone retires a successfully completed query, recording its
// latency under the engine's histogram and accumulating its execution
// statistics.
func (r *Registry) QueryDone(engine, translator string, d time.Duration, visited, pageReads, pageMisses uint64) {
	r.latency.Observe(d)
	r.engineHist(engine).Observe(d)
	r.translatorCount(translator).Add(1)
	r.visited.Add(visited)
	r.pageReads.Add(pageReads)
	r.pageMisses.Add(pageMisses)
	r.inFlight.Add(-1)
}

// AddBatchSizes merges one query's per-size-class batch counts (as
// harvested from its streams' batch controllers) into the store-wide
// batch-size histogram.
func (r *Registry) AddBatchSizes(counts [NumBatchClasses]uint64) {
	for i, c := range counts {
		if c != 0 {
			r.batchSizes[i].Add(c)
		}
	}
}

// EarlyTermination records a query whose execution was cut short by the
// physical planner or an engine: a provably- or actually-empty
// intermediate let remaining scans and joins be skipped.
func (r *Registry) EarlyTermination() { r.earlyTerms.Add(1) }

func (r *Registry) engineHist(engine string) *Histogram {
	r.mu.RLock()
	h := r.byEngine[engine]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.byEngine[engine]; h == nil {
		h = &Histogram{}
		r.byEngine[engine] = h
	}
	return h
}

func (r *Registry) translatorCount(translator string) *atomic.Uint64 {
	r.mu.RLock()
	c := r.byTranslator[translator]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.byTranslator[translator]; c == nil {
		c = &atomic.Uint64{}
		r.byTranslator[translator] = c
	}
	return c
}

// RegistrySnapshot is a point-in-time copy of a registry. Queries is
// derived from the latency histogram's bucket loads, so Queries always
// equals Latency.Count — and once the store is quiescent, equals the
// number of successful Query calls exactly.
type RegistrySnapshot struct {
	InFlight     int64                        `json:"in_flight"`
	Queries      uint64                       `json:"queries"`
	Errors       uint64                       `json:"query_errors"`
	Visited      uint64                       `json:"visited_elements"`
	PageReads    uint64                       `json:"page_reads"`
	PageMisses   uint64                       `json:"page_misses"`
	EarlyTerms   uint64                       `json:"early_terminations"`
	BatchSizes   [NumBatchClasses]uint64      `json:"batch_sizes"`
	Latency      HistogramSnapshot            `json:"latency"`
	ByEngine     map[string]HistogramSnapshot `json:"queries_by_engine"`
	ByTranslator map[string]uint64            `json:"queries_by_translator"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		InFlight:     r.inFlight.Load(),
		Errors:       r.errors.Load(),
		Visited:      r.visited.Load(),
		PageReads:    r.pageReads.Load(),
		PageMisses:   r.pageMisses.Load(),
		EarlyTerms:   r.earlyTerms.Load(),
		Latency:      r.latency.Snapshot(),
		ByEngine:     map[string]HistogramSnapshot{},
		ByTranslator: map[string]uint64{},
	}
	s.Queries = s.Latency.Count
	for i := range s.BatchSizes {
		s.BatchSizes[i] = r.batchSizes[i].Load()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, h := range r.byEngine {
		s.ByEngine[name] = h.Snapshot()
	}
	for name, c := range r.byTranslator {
		s.ByTranslator[name] = c.Load()
	}
	return s
}
