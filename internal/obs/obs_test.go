package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTraceOffZeroAlloc is the allocation guard for the tracing-off fast
// path: every Trace method a hot path may call must cost nothing on a
// nil trace — no clock read, no allocation. This is what lets the
// engines call Begin/End unconditionally.
func TestTraceOffZeroAlloc(t *testing.T) {
	var tr *Trace
	if a := testing.AllocsPerRun(200, func() {
		b := tr.Begin()
		tr.End(PhaseScan, b)
		b = tr.Begin()
		tr.End(PhaseOrder, b) // planner path: same guarantee as the engine phases
		b = tr.Begin()
		tr.End(PhaseDecode, b) // batch-layer decode spans
		tr.Add(PhasePrefetchStall, time.Millisecond)
		tr.AddDecoded(128)
		tr.AddPartition(42)
	}); a != 0 {
		t.Errorf("nil-trace span recording allocates %.1f times per call, want 0", a)
	}
}

// BenchmarkTraceOff tracks the cost of the nil-trace path itself
// (ReportAllocs is the benchmark-level guard, as with BenchmarkJoinKey).
func BenchmarkTraceOff(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		begin := tr.Begin()
		tr.End(PhaseSweep, begin)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	begin := tr.Begin()
	if begin.IsZero() {
		t.Fatal("active trace returned the zero begin time")
	}
	time.Sleep(time.Millisecond)
	tr.End(PhaseParse, begin)
	tr.Add(PhaseJoin, 5*time.Millisecond)
	tr.AddPartition(10)
	tr.AddPartition(20)
	tr.AddDecoded(100)
	tr.AddDecoded(28)
	tr.AddDecoded(0)  // ignored
	tr.AddDecoded(-5) // ignored

	s := tr.Snapshot()
	if s.DecodedRecords != 128 {
		t.Errorf("decoded records = %d, want 128", s.DecodedRecords)
	}
	if s.Span(PhaseParse) <= 0 {
		t.Errorf("parse span = %v, want > 0", s.Span(PhaseParse))
	}
	if s.Span(PhaseJoin) != 5*time.Millisecond {
		t.Errorf("join span = %v, want 5ms", s.Span(PhaseJoin))
	}
	if s.Span(PhaseSweep) != 0 {
		t.Errorf("sweep span = %v, want 0", s.Span(PhaseSweep))
	}
	if len(s.Partitions) != 2 || s.Partitions[0] != 10 || s.Partitions[1] != 20 {
		t.Errorf("partitions = %v, want [10 20]", s.Partitions)
	}
	// Ending a span with the nil trace's zero begin must not record.
	tr.End(PhaseSweep, time.Time{})
	if got := tr.Snapshot().Span(PhaseSweep); got != 0 {
		t.Errorf("zero-begin End recorded %v", got)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(PhasePrefetchStall, time.Microsecond)
				tr.AddPartition(1)
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if want := workers * 100 * time.Microsecond; s.Span(PhasePrefetchStall) != want {
		t.Errorf("stall = %v, want %v", s.Span(PhasePrefetchStall), want)
	}
	if len(s.Partitions) != workers*100 {
		t.Errorf("partitions = %d, want %d", len(s.Partitions), workers*100)
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Errorf("phase %d has bad or duplicate name %q", p, name)
		}
		seen[name] = true
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	samples := []time.Duration{
		0, time.Nanosecond, time.Microsecond, // bucket 0
		2 * time.Microsecond,   // bucket 1
		100 * time.Millisecond, // interior
		2 * time.Hour,          // overflow bucket
		-5 * time.Millisecond,  // clamped to 0
		512 * time.Microsecond, // exact bound: inclusive upper
		513 * time.Microsecond, // just past it
	}
	for _, d := range samples {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", s.Count, len(samples))
	}
	var sum uint64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
	if s.Buckets[0] != 4 { // 0, 1ns, 1µs, clamped negative
		t.Errorf("bucket 0 = %d, want 4", s.Buckets[0])
	}
	if s.Buckets[NumBuckets-1] != 1 { // 2h overflow
		t.Errorf("overflow bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
	if b9, b10 := bucketOf(512*time.Microsecond), bucketOf(513*time.Microsecond); b9+1 != b10 {
		t.Errorf("inclusive upper bound violated: bucketOf(512µs)=%d, bucketOf(513µs)=%d", b9, b10)
	}
	if got := s.Quantile(0.5); got == 0 && s.Count > 0 {
		t.Errorf("median = 0 with %d samples", s.Count)
	}
}

func TestHistogramBounds(t *testing.T) {
	if BucketBound(0) != time.Microsecond {
		t.Errorf("BucketBound(0) = %v", BucketBound(0))
	}
	if BucketBound(NumBuckets-1) != 0 {
		t.Errorf("last bucket bound = %v, want 0 (unbounded)", BucketBound(NumBuckets-1))
	}
	for i := 0; i < NumBuckets-1; i++ {
		if bucketOf(BucketBound(i)) != i {
			t.Errorf("bucketOf(BucketBound(%d)) = %d", i, bucketOf(BucketBound(i)))
		}
	}
}

func TestRegistryCounts(t *testing.T) {
	r := NewRegistry()
	r.QueryBegin()
	r.QueryBegin()
	if got := r.Snapshot().InFlight; got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}
	r.QueryDone("relational", "pushup", time.Millisecond, 100, 20, 5)
	r.QueryDone("twig", "pushup", 2*time.Millisecond, 50, 10, 2)
	r.EarlyTermination()
	r.QueryBegin()
	r.QueryFailed()

	s := r.Snapshot()
	if s.InFlight != 0 {
		t.Errorf("in-flight = %d, want 0", s.InFlight)
	}
	if s.Queries != 2 || s.Latency.Count != 2 {
		t.Errorf("queries = %d, latency count = %d, want 2/2", s.Queries, s.Latency.Count)
	}
	if s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
	if s.Visited != 150 || s.PageReads != 30 || s.PageMisses != 7 {
		t.Errorf("cumulative stats = %d/%d/%d, want 150/30/7", s.Visited, s.PageReads, s.PageMisses)
	}
	if s.EarlyTerms != 1 {
		t.Errorf("early terminations = %d, want 1", s.EarlyTerms)
	}
	if s.ByEngine["relational"].Count != 1 || s.ByEngine["twig"].Count != 1 {
		t.Errorf("per-engine counts = %v", s.ByEngine)
	}
	if s.ByTranslator["pushup"] != 2 {
		t.Errorf("per-translator count = %v", s.ByTranslator)
	}
	r.AddBatchSizes([NumBatchClasses]uint64{3, 0, 7})
	r.AddBatchSizes([NumBatchClasses]uint64{1})
	bs := r.Snapshot().BatchSizes
	if bs[0] != 4 || bs[1] != 0 || bs[2] != 7 {
		t.Errorf("batch-size histogram = %v, want [4 0 7 ...]", bs)
	}
	var perEngine uint64
	for _, h := range s.ByEngine {
		perEngine += h.Count
	}
	if perEngine != s.Queries {
		t.Errorf("per-engine sum %d != queries %d", perEngine, s.Queries)
	}
}

// TestRegistryConcurrent drives the registry from many goroutines while
// snapshots race the updates. Every snapshot must be internally
// consistent (Queries == Latency.Count by construction, counters
// monotonic across successive snapshots); after the run the totals must
// be exact.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 200
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var prev RegistrySnapshot
		for {
			s := r.Snapshot()
			var sum uint64
			for _, c := range s.Latency.Buckets {
				sum += c
			}
			switch {
			case s.Queries != sum:
				snapErr = errSnapshot("queries != bucket sum")
			case s.Queries < prev.Queries, s.Errors < prev.Errors, s.Visited < prev.Visited:
				snapErr = errSnapshot("counter went backwards")
			case s.InFlight < 0 || s.InFlight > workers:
				snapErr = errSnapshot("in-flight out of range")
			}
			if snapErr != nil {
				return
			}
			prev = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engines := []string{"relational", "twig"}
			for i := 0; i < perWorker; i++ {
				r.QueryBegin()
				if i%10 == 9 {
					r.QueryFailed()
					continue
				}
				r.QueryDone(engines[i%2], "pushup", time.Duration(i)*time.Microsecond, 3, 2, 1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	s := r.Snapshot()
	wantOK := uint64(workers * perWorker * 9 / 10)
	wantErr := uint64(workers * perWorker / 10)
	if s.Queries != wantOK || s.Latency.Count != wantOK {
		t.Errorf("queries = %d (latency %d), want %d", s.Queries, s.Latency.Count, wantOK)
	}
	if s.Errors != wantErr {
		t.Errorf("errors = %d, want %d", s.Errors, wantErr)
	}
	if s.InFlight != 0 {
		t.Errorf("in-flight = %d, want 0", s.InFlight)
	}
	if s.Visited != wantOK*3 {
		t.Errorf("visited = %d, want %d", s.Visited, wantOK*3)
	}
}

type errSnapshot string

func (e errSnapshot) Error() string { return "inconsistent snapshot: " + string(e) }
