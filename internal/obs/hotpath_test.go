package obs

import (
	"sort"
	"testing"

	"repro/internal/analysis"
)

// TestHotpathAnnotations pins the //blas:hotpath annotation set to the
// nil-trace fast paths the zero-alloc guards (TestTraceOffZeroAlloc /
// BenchmarkTraceOff) actually measure, so the annotations and the
// benchmarks cannot drift apart silently.
func TestHotpathAnnotations(t *testing.T) {
	got, err := analysis.HotpathFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Add", "AddDecoded", "Begin", "End"}
	for _, name := range want {
		if !got[name] {
			t.Errorf("Trace.%s lost its //blas:hotpath annotation; the BenchmarkTraceOff zero-alloc guard and hotalloc no longer cover the same code", name)
		}
	}
	if len(got) != len(want) {
		var names []string
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Errorf("//blas:hotpath set = %v, want exactly %v: annotate new fast paths here and extend the zero-alloc guard", names, want)
	}
}
