package obs

import (
	"sync/atomic"
	"time"
)

// NumBuckets is the number of latency buckets in a Histogram. Buckets
// are exponential: bucket i counts observations in
// (2^(i-1)µs, 2^i µs], with bucket 0 covering everything up to 1µs and
// the last bucket open-ended (~34s and beyond). 26 buckets keep a
// histogram at a fixed 240 bytes regardless of traffic — the "bounded"
// in bounded latency histogram.
const NumBuckets = 26

// bucketFloor is the upper bound of bucket 0.
const bucketFloor = time.Microsecond

// Histogram is a bounded, lock-free latency histogram. The zero value
// is ready to use. Observations and snapshots may race freely: a
// snapshot's Count is derived from the same bucket loads it reports, so
// Count always equals the sum of the bucket counts, even mid-update.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds; may lag buckets transiently
}

// bucketOf returns the bucket index for duration d.
func bucketOf(d time.Duration) int {
	i := 0
	for bound := bucketFloor; d > bound && i < NumBuckets-1; bound <<= 1 {
		i++
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i; the last
// bucket reports a zero bound, meaning unbounded.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return 0
	}
	return bucketFloor << i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is an immutable copy of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations; always equal to the
	// sum of Buckets.
	Count uint64 `json:"count"`
	// Sum is the total observed latency in nanoseconds. It is updated
	// after the bucket on the hot path, so it may lag Count by in-flight
	// observations.
	Sum int64 `json:"sum_ns"`
	// Buckets[i] counts observations in (BucketBound(i-1), BucketBound(i)].
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Mean returns the average observed latency (0 with no observations).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the bound of the first bucket at which the
// cumulative count reaches q*Count. The last bucket reports its
// (unbounded) zero bound as-is.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return 0
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}
