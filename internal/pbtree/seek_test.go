package pbtree

import (
	"bytes"
	"testing"

	"repro/internal/pager"
)

// TestSeekValueSweep probes every position of a multi-leaf tree three
// ways: the exact key, a key strictly between it and its successor
// (which at leaf boundaries forces the follow-next-leaf path), and the
// smallest entry via a nil from.
func TestSeekValueSweep(t *testing.T) {
	f := pager.OpenMem(256)
	defer f.Close()
	const n = 5000
	tree := buildTree(t, f, n)
	if tree.Height < 2 {
		t.Fatalf("tree of %d entries has height %d; the sweep needs inner pages and leaf boundaries", n, tree.Height)
	}
	r := NewReader(f, tree)

	v, ok, err := r.SeekValue(nil, nil, nil)
	if err != nil || !ok || !bytes.Equal(v, val(0)) {
		t.Fatalf("SeekValue(nil) = %q, %v, %v; want first value %q", v, ok, err, val(0))
	}

	var dst []byte
	for i := 0; i < n; i++ {
		dst, ok, err = r.SeekValue(key(i), dst, nil)
		if err != nil || !ok || !bytes.Equal(dst, val(i)) {
			t.Fatalf("SeekValue(key(%d)) = %q, %v, %v; want exact match %q", i, dst, ok, err, val(i))
		}
		// "key-%08d!" sorts strictly between key(i) and key(i+1), so the
		// answer is the successor; when key(i) ends a leaf this exercises
		// the past-leaf-end hop to the next leaf.
		between := append(append([]byte{}, key(i)...), '!')
		dst, ok, err = r.SeekValue(between, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == n-1 {
			if ok {
				t.Fatalf("SeekValue past the last entry = %q, want ok=false", dst)
			}
		} else if !ok || !bytes.Equal(dst, val(i+1)) {
			t.Fatalf("SeekValue(between %d and %d) = %q, %v; want successor %q", i, i+1, dst, ok, val(i+1))
		}
	}
}

func TestSeekValueEmptyTree(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	r := NewReader(f, buildTree(t, f, 0))
	for _, from := range [][]byte{nil, []byte("x")} {
		if v, ok, err := r.SeekValue(from, nil, nil); err != nil || ok {
			t.Fatalf("SeekValue(%q) on empty tree = %q, %v, %v; want ok=false", from, v, ok, err)
		}
	}
}

// TestSeekValueReusesDst verifies the append-into-dst contract: a probe
// landing on a shorter value reuses the caller's buffer.
func TestSeekValueReusesDst(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	r := NewReader(f, buildTree(t, f, 100))
	dst := make([]byte, 0, 64)
	got, ok, err := r.SeekValue(key(7), dst, nil)
	if err != nil || !ok || !bytes.Equal(got, val(7)) {
		t.Fatalf("SeekValue = %q, %v, %v", got, ok, err)
	}
	if &got[:1][0] != &dst[:1][0] {
		t.Error("SeekValue reallocated although dst had capacity")
	}
}

// TestSeekValueCounted: one cold probe touches exactly one page per
// level — the no-materialization claim in page-request terms.
func TestSeekValueCounted(t *testing.T) {
	f := pager.OpenMem(256)
	defer f.Close()
	tree := buildTree(t, f, 30000)
	r := NewReader(f, tree)
	_ = f.DropCache()
	var c pager.Counters
	if _, ok, err := r.SeekValue(key(12345), nil, &c); err != nil || !ok {
		t.Fatalf("SeekValue: ok=%v err=%v", ok, err)
	}
	if got := c.Reads.Load(); got != uint64(tree.Height) {
		t.Fatalf("cold seek made %d page requests, want height %d", got, tree.Height)
	}
}
