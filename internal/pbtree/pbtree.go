// Package pbtree implements a paged, bulk-loaded, immutable B+ tree.
//
// The BLAS index generator builds its indexes once, at shred time, from
// key-sorted input (the relations are clustered, so index entries arrive
// in order); queries then only read. A write-once/read-many B+ tree
// matches that lifecycle exactly: the builder packs leaves left to right
// and constructs each internal level bottom-up, producing a tree that is
// 100% full and never needs rebalancing.
//
// Pages live in an internal/pager file, so every page touched by a lookup
// or range scan is visible in the buffer-pool statistics — the paper's
// "disk access" metric covers index traversal too.
//
// Page layout (all integers little-endian):
//
//	byte 0       page type (1 = leaf, 2 = inner)
//	bytes 1-2    entry count
//	bytes 3-6    next-leaf page id (leaves only; 0xFFFFFFFF = none)
//	bytes 7..    slot offset table (2 bytes per entry), then entries
//
//	leaf entry:  klen u16, key, vlen u16, value
//	inner entry: klen u16, key, child page id u32
//
// In an inner page, entry i's key is the smallest key stored in the
// subtree of child i.
package pbtree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/pager"
)

const (
	pageTypeLeaf  = 1
	pageTypeInner = 2
	headerSize    = 7
	noPage        = 0xFFFFFFFF
)

// Tree describes a finished tree. Callers persist this in their own
// metadata and pass it back to Open.
type Tree struct {
	Root   pager.PageID
	Height uint32 // 1 = root is a leaf
	Count  uint64 // number of entries
}

// Builder bulk-loads a tree from strictly increasing keys.
type Builder struct {
	f       *pager.File
	levels  []*pageBuf // levels[0] = leaf level
	lastKey []byte
	count   uint64
	err     error
}

// pageBuf accumulates entries for one page under construction.
type pageBuf struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaf values
	children []pager.PageID
	used     int          // bytes used by slots+entries so far
	prevLeaf pager.PageID // page id of the previous flushed leaf, noPage if none
	// firstKeys/pageIDs of flushed pages feed the level above.
}

// NewBuilder returns a Builder writing pages into f.
func NewBuilder(f *pager.File) *Builder {
	return &Builder{f: f, levels: []*pageBuf{{leaf: true, prevLeaf: noPage}}}
}

func leafEntrySize(k, v []byte) int  { return 2 + 2 + len(k) + 2 + len(v) } // slot + klen+key + vlen+val
func innerEntrySize(k []byte) int    { return 2 + 2 + len(k) + 4 }          // slot + klen+key + child
func (b *pageBuf) capacityLeft() int { return pager.PageSize - headerSize - b.used }

// Add appends an entry. Keys must be strictly increasing.
func (b *Builder) Add(key, value []byte) error {
	if b.err != nil {
		return b.err
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		b.err = fmt.Errorf("pbtree: keys not strictly increasing: %x after %x", key, b.lastKey)
		return b.err
	}
	if leafEntrySize(key, value) > pager.PageSize-headerSize {
		b.err = fmt.Errorf("pbtree: entry too large: %d bytes", leafEntrySize(key, value))
		return b.err
	}
	b.lastKey = append(b.lastKey[:0], key...)
	b.count++

	lv := b.levels[0]
	if leafEntrySize(key, value) > lv.capacityLeft() {
		if err := b.flushLevel(0); err != nil {
			return err
		}
	}
	lv.keys = append(lv.keys, append([]byte(nil), key...))
	lv.vals = append(lv.vals, append([]byte(nil), value...))
	lv.used += leafEntrySize(key, value)
	return nil
}

// flushLevel writes out the page buffered at level i and pushes its first
// key into level i+1.
func (b *Builder) flushLevel(i int) error {
	lv := b.levels[i]
	if len(lv.keys) == 0 {
		return nil
	}
	id, err := b.writePage(lv)
	if err != nil {
		return err
	}
	firstKey := lv.keys[0]

	// Reset the buffer for the next page at this level.
	if lv.leaf {
		lv.prevLeaf = id
	}
	lv.keys = nil
	lv.vals = nil
	lv.children = nil
	lv.used = 0

	// Parent entry.
	if i+1 == len(b.levels) {
		b.levels = append(b.levels, &pageBuf{prevLeaf: noPage})
	}
	parent := b.levels[i+1]
	if innerEntrySize(firstKey) > parent.capacityLeft() {
		if err := b.flushLevel(i + 1); err != nil {
			return err
		}
	}
	parent.keys = append(parent.keys, firstKey)
	parent.children = append(parent.children, id)
	parent.used += innerEntrySize(firstKey)
	return nil
}

// writePage serializes lv into a freshly allocated page; for leaves it
// also patches the previous leaf's next pointer.
func (b *Builder) writePage(lv *pageBuf) (pager.PageID, error) {
	id, err := b.f.Alloc()
	if err != nil {
		return 0, err
	}
	err = b.f.Update(id, func(p []byte) error {
		if lv.leaf {
			p[0] = pageTypeLeaf
		} else {
			p[0] = pageTypeInner
		}
		n := len(lv.keys)
		binary.LittleEndian.PutUint16(p[1:3], uint16(n))
		binary.LittleEndian.PutUint32(p[3:7], noPage)
		off := headerSize + 2*n
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint16(p[headerSize+2*i:], uint16(off))
			k := lv.keys[i]
			binary.LittleEndian.PutUint16(p[off:], uint16(len(k)))
			off += 2
			copy(p[off:], k)
			off += len(k)
			if lv.leaf {
				v := lv.vals[i]
				binary.LittleEndian.PutUint16(p[off:], uint16(len(v)))
				off += 2
				copy(p[off:], v)
				off += len(v)
			} else {
				binary.LittleEndian.PutUint32(p[off:], uint32(lv.children[i]))
				off += 4
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if lv.leaf && lv.prevLeaf != noPage {
		if err := b.f.Update(lv.prevLeaf, func(p []byte) error {
			binary.LittleEndian.PutUint32(p[3:7], uint32(id))
			return nil
		}); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Finish flushes all buffered pages and returns the tree descriptor.
func (b *Builder) Finish() (Tree, error) {
	if b.err != nil {
		return Tree{}, b.err
	}
	// Empty tree: a single empty leaf.
	if b.count == 0 {
		lv := b.levels[0]
		id, err := b.writePage(lv)
		if err != nil {
			return Tree{}, err
		}
		return Tree{Root: id, Height: 1, Count: 0}, nil
	}
	for i := 0; i < len(b.levels); i++ {
		lv := b.levels[i]
		// The topmost level becomes the root if it holds everything in
		// one page and nothing was pushed above it.
		last := i == len(b.levels)-1
		if last && len(lv.keys) > 0 {
			id, err := b.writePage(lv)
			if err != nil {
				return Tree{}, err
			}
			return Tree{Root: id, Height: uint32(i + 1), Count: b.count}, nil
		}
		if err := b.flushLevel(i); err != nil {
			return Tree{}, err
		}
	}
	// flushLevel grew a new top level containing exactly one child.
	top := b.levels[len(b.levels)-1]
	if len(top.children) == 1 {
		return Tree{Root: top.children[0], Height: uint32(len(b.levels) - 1), Count: b.count}, nil
	}
	id, err := b.writePage(top)
	if err != nil {
		return Tree{}, err
	}
	return Tree{Root: id, Height: uint32(len(b.levels)), Count: b.count}, nil
}

// Reader provides lookups and scans over a finished tree.
type Reader struct {
	f    *pager.File
	tree Tree
}

// NewReader returns a Reader for tree stored in f.
func NewReader(f *pager.File, tree Tree) *Reader { return &Reader{f: f, tree: tree} }

// Count returns the number of entries in the tree.
func (r *Reader) Count() uint64 { return r.tree.Count }

// page interprets a page image: either a pinned pager frame (valid only
// inside a view, used for descents) or a private copy (what iterators
// hold — the copy is what makes them immune to eviction: the pager
// frame is unpinned while the iterator keeps reading its own buffer).
// Slot offsets are read straight out of the image on demand; parsing
// the whole slot table up front would cost O(n) per page load when a
// descent only touches O(log n) slots.
type page struct {
	typ  byte
	n    int
	next pager.PageID
	data []byte
}

// parsePage interprets buf as a page. The result aliases buf.
func parsePage(buf []byte) page {
	return page{
		typ:  buf[0],
		n:    int(binary.LittleEndian.Uint16(buf[1:3])),
		next: pager.PageID(binary.LittleEndian.Uint32(buf[3:7])),
		data: buf,
	}
}

// loadPage copies page id out of the pool into a private buffer.
func (r *Reader) loadPage(id pager.PageID, c *pager.Counters) (*page, error) {
	buf := make([]byte, pager.PageSize)
	if err := r.f.ReadCounted(id, buf, c); err != nil {
		return nil, err
	}
	p := parsePage(buf)
	return &p, nil
}

func (p *page) slot(i int) int {
	return int(binary.LittleEndian.Uint16(p.data[headerSize+2*i:]))
}

func (p *page) key(i int) []byte {
	off := p.slot(i)
	klen := int(binary.LittleEndian.Uint16(p.data[off:]))
	return p.data[off+2 : off+2+klen]
}

func (p *page) value(i int) []byte {
	off := p.slot(i)
	klen := int(binary.LittleEndian.Uint16(p.data[off:]))
	voff := off + 2 + klen
	vlen := int(binary.LittleEndian.Uint16(p.data[voff:]))
	return p.data[voff+2 : voff+2+vlen]
}

func (p *page) child(i int) pager.PageID {
	off := p.slot(i)
	klen := int(binary.LittleEndian.Uint16(p.data[off:]))
	return pager.PageID(binary.LittleEndian.Uint32(p.data[off+2+klen:]))
}

// search returns the number of keys in p that are <= key.
func (p *page) search(key []byte) int {
	lo, hi := 0, p.n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(p.key(mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (r *Reader) Get(key []byte) ([]byte, bool, error) {
	p, err := r.leafFor(key, nil)
	if err != nil {
		return nil, false, err
	}
	i := p.search(key)
	if i > 0 && bytes.Equal(p.key(i-1), key) {
		return p.value(i - 1), true, nil
	}
	return nil, false, nil
}

// SeekValue copies the value of the first entry with key >= from (nil
// from = the smallest entry) into dst[:0], returning the possibly grown
// slice. ok is false when no such entry exists. The descent and leaf
// inspection run entirely inside pager views: unlike Scan, nothing is
// copied out of the pool but the value itself — the cheap way to probe
// a single position without materializing a leaf.
func (r *Reader) SeekValue(from, dst []byte, c *pager.Counters) (val []byte, ok bool, err error) {
	id := r.tree.Root
	for {
		var found, exhausted bool
		next := id
		err := r.f.ViewCounted(id, c, func(buf []byte) error {
			p := parsePage(buf)
			if p.typ == pageTypeInner {
				i := p.search(from)
				if i == 0 {
					i = 1
				}
				next = p.child(i - 1)
				return nil
			}
			i := 0
			if from != nil {
				i = p.search(from)
				if i > 0 && bytes.Equal(p.key(i-1), from) {
					i-- // include the exact match
				}
			}
			if i >= p.n {
				// Past this leaf: the sought entry, if any, heads the
				// next leaf (descent picked the last subtree whose
				// separator is <= from, so that key is provably > from).
				if p.next == noPage {
					exhausted = true
					return nil
				}
				next = p.next
				return nil
			}
			dst = append(dst[:0], p.value(i)...)
			found = true
			return nil
		})
		if err != nil {
			return dst, false, err
		}
		if found {
			return dst, true, nil
		}
		if exhausted {
			return dst, false, nil
		}
		id = next
	}
}

// leafFor descends to the leaf that would contain key (a nil key
// descends leftmost). Inner pages are searched in place inside pager
// views — no copy, no allocation — and only the leaf is copied out,
// since it is the one page that outlives the descent.
func (r *Reader) leafFor(key []byte, c *pager.Counters) (*page, error) {
	id := r.tree.Root
	for {
		var leaf *page
		next := id
		err := r.f.ViewCounted(id, c, func(buf []byte) error {
			p := parsePage(buf)
			if p.typ == pageTypeInner {
				i := p.search(key)
				if i == 0 {
					// key is smaller than every key in the tree (or nil):
					// descend leftmost.
					i = 1
				}
				next = p.child(i - 1)
				return nil
			}
			own := make([]byte, len(buf))
			copy(own, buf)
			lp := parsePage(own)
			leaf = &lp
			return nil
		})
		if err != nil {
			return nil, err
		}
		if leaf != nil {
			return leaf, nil
		}
		id = next
	}
}

// loc is a resolved key position used by EstimateRange: the leaf holding
// the key's lower bound (the first entry >= key), the bound's index in
// that leaf, and a fractional rank in [0, 1] interpolated from the slot
// positions along the descent path.
type loc struct {
	leaf pager.PageID // noPage once the position is past the last entry
	idx  int
	frac float64
}

// locate descends to key's lower-bound position in O(height) page reads.
// A nil key locates the first entry. When the lower bound falls past the
// end of its leaf, the position is normalized to the head of the next
// leaf (whose first key is provably > key, because descent always picks
// the last subtree whose separator is <= key), so two positions on the
// same leaf always yield an exact entry count.
func (r *Reader) locate(key []byte, c *pager.Counters) (loc, error) {
	id := r.tree.Root
	var frac float64
	span := 1.0
	for {
		var out loc
		done := false
		next := id
		err := r.f.ViewCounted(id, c, func(buf []byte) error {
			// The whole descent runs against pinned frames: locate
			// retains only offsets and fractions, never page bytes, so
			// nothing needs to be copied out of the pool.
			p := parsePage(buf)
			if p.typ == pageTypeInner {
				i := 0
				if key != nil {
					if i = p.search(key); i > 0 {
						i--
					}
				}
				frac += span * float64(i) / float64(p.n)
				span /= float64(p.n)
				next = p.child(i)
				return nil
			}
			done = true
			lb := 0
			if key != nil {
				lb = p.search(key)
				if lb > 0 && bytes.Equal(p.key(lb-1), key) {
					lb-- // lower bound includes the exact match
				}
			}
			if p.n > 0 {
				frac += span * float64(lb) / float64(p.n)
			}
			if lb >= p.n {
				// Past this leaf's entries: the lower bound is the next
				// leaf's first entry (its id is free — no extra read).
				out = loc{leaf: p.next, idx: 0, frac: frac}
				return nil
			}
			out = loc{leaf: id, idx: lb, frac: frac}
			return nil
		})
		if err != nil {
			return loc{}, err
		}
		if done {
			return out, nil
		}
		id = next
	}
}

// EstimateRange estimates the number of entries with from <= key < to
// (nil to = unbounded above, nil from = unbounded below) in O(height)
// page reads per bound — the statistics-free selectivity probe behind
// the greedy physical planner.
//
// The result is exact whenever both bounds resolve to the same leaf
// page; otherwise it interpolates between the bounds' fractional ranks
// and clamps to [1, Count]. Zero is therefore definitive: a zero return
// proves the range is empty. Pages touched by the two descents are
// recorded in c like any other index traversal.
func (r *Reader) EstimateRange(from, to []byte, c *pager.Counters) (uint64, error) {
	if r.tree.Count == 0 {
		return 0, nil
	}
	if from != nil && to != nil && bytes.Compare(from, to) >= 0 {
		return 0, nil
	}
	lo, err := r.locate(from, c)
	if err != nil {
		return 0, err
	}
	if lo.leaf == noPage {
		return 0, nil // no entry at or above from
	}
	hi := loc{leaf: noPage, idx: 0, frac: 1}
	if to != nil {
		if hi, err = r.locate(to, c); err != nil {
			return 0, err
		}
	}
	if hi.leaf == lo.leaf {
		return uint64(hi.idx - lo.idx), nil
	}
	// Bounds on different leaves: at least one entry is in range (the
	// entry at lo itself), so the clamped interpolation never reports a
	// false empty.
	est := int64(math.Round((hi.frac - lo.frac) * float64(r.tree.Count)))
	if est < 1 {
		est = 1
	}
	if uint64(est) > r.tree.Count {
		return r.tree.Count, nil
	}
	return uint64(est), nil
}

// Iter iterates entries in key order.
type Iter struct {
	r    *Reader
	c    *pager.Counters // per-caller page accounting, may be nil
	p    *page
	idx  int
	to   []byte // exclusive; nil = unbounded
	key  []byte
	val  []byte
	err  error
	done bool
}

// Scan returns an iterator over keys in [from, to). A nil from starts at
// the smallest key; nil to means unbounded.
func (r *Reader) Scan(from, to []byte) *Iter {
	return r.ScanCounted(from, to, nil)
}

// ScanCounted is Scan with per-caller page accounting: every page the
// scan touches (descent and leaf chain) is also recorded in c.
func (r *Reader) ScanCounted(from, to []byte, c *pager.Counters) *Iter {
	it := &Iter{r: r, c: c, to: to}
	p, err := r.leafFor(from, c)
	if err == nil {
		i := 0
		if from != nil {
			i = p.search(from)
			if i > 0 && bytes.Equal(p.key(i-1), from) {
				i-- // include the exact match
			}
		}
		it.p, it.idx = p, i
	}
	it.err = err
	return it
}

// ScanPrefix returns an iterator over all keys that start with prefix.
func (r *Reader) ScanPrefix(prefix []byte) *Iter {
	return r.Scan(prefix, prefixSuccessor(prefix))
}

func prefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// Next advances the iterator. It returns false at the end of the range or
// on error; check Err afterwards.
func (it *Iter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	for it.p != nil && it.idx >= it.p.n {
		if it.p.next == noPage {
			it.done = true
			return false
		}
		var err error
		it.p, err = it.r.loadPage(it.p.next, it.c)
		if err != nil {
			it.err = err
			return false
		}
		it.idx = 0
	}
	if it.p == nil {
		it.done = true
		return false
	}
	k := it.p.key(it.idx)
	if it.to != nil && bytes.Compare(k, it.to) >= 0 {
		it.done = true
		return false
	}
	it.key = k
	it.val = it.p.value(it.idx)
	it.idx++
	return true
}

// Key returns the current key (valid until the next call to Next).
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value (valid until the next call to Next).
func (it *Iter) Value() []byte { return it.val }

// Err returns the first error encountered during iteration.
func (it *Iter) Err() error { return it.err }
