package pbtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pager"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func buildTree(t *testing.T, f *pager.File, n int) Tree {
	t.Helper()
	b := NewBuilder(f)
	for i := 0; i < n; i++ {
		if err := b.Add(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestEmptyTree(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	tree := buildTree(t, f, 0)
	r := NewReader(f, tree)
	if r.Count() != 0 {
		t.Fatal("count != 0")
	}
	if _, ok, err := r.Get([]byte("x")); err != nil || ok {
		t.Fatalf("Get on empty: ok=%v err=%v", ok, err)
	}
	it := r.Scan(nil, nil)
	if it.Next() {
		t.Fatal("scan of empty tree yielded entries")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestSingleLeaf(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	tree := buildTree(t, f, 10)
	if tree.Height != 1 {
		t.Fatalf("height = %d, want 1", tree.Height)
	}
	r := NewReader(f, tree)
	for i := 0; i < 10; i++ {
		v, ok, err := r.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q, %v, %v", i, v, ok, err)
		}
	}
	if _, ok, _ := r.Get([]byte("missing")); ok {
		t.Fatal("found missing key")
	}
}

func TestMultiLevel(t *testing.T) {
	f := pager.OpenMem(64)
	defer f.Close()
	const n = 50000
	tree := buildTree(t, f, n)
	if tree.Height < 2 {
		t.Fatalf("height = %d, want >= 2 for %d entries", tree.Height, n)
	}
	if tree.Count != n {
		t.Fatalf("count = %d", tree.Count)
	}
	r := NewReader(f, tree)
	// Point lookups at boundaries and random positions.
	checks := []int{0, 1, n/2 - 1, n / 2, n - 2, n - 1}
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		checks = append(checks, rnd.Intn(n))
	}
	for _, i := range checks {
		v, ok, err := r.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q, %v, %v", i, v, ok, err)
		}
	}
	// Missing keys.
	if _, ok, _ := r.Get([]byte("key-99999999x")); ok {
		t.Fatal("found key beyond range")
	}
	if _, ok, _ := r.Get([]byte("a")); ok {
		t.Fatal("found key before range")
	}
}

func TestFullScan(t *testing.T) {
	f := pager.OpenMem(64)
	defer f.Close()
	const n = 20000
	tree := buildTree(t, f, n)
	r := NewReader(f, tree)
	it := r.Scan(nil, nil)
	for i := 0; i < n; i++ {
		if !it.Next() {
			t.Fatalf("scan ended at %d (err=%v)", i, it.Err())
		}
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("scan[%d] = %s", i, it.Key())
		}
		if !bytes.Equal(it.Value(), val(i)) {
			t.Fatalf("scan[%d] value = %s", i, it.Value())
		}
	}
	if it.Next() {
		t.Fatal("extra entries")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestRangeScan(t *testing.T) {
	f := pager.OpenMem(64)
	defer f.Close()
	const n = 5000
	tree := buildTree(t, f, n)
	r := NewReader(f, tree)

	// [lo, hi) with exact-match bounds.
	it := r.Scan(key(100), key(105))
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 5 || got[0] != string(key(100)) || got[4] != string(key(104)) {
		t.Fatalf("range scan got %v", got)
	}

	// Bounds between keys.
	it = r.Scan([]byte("key-00000100x"), []byte("key-00000103x"))
	got = nil
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 3 || got[0] != string(key(101)) {
		t.Fatalf("between-keys scan got %v", got)
	}

	// Scan starting before all keys.
	it = r.Scan([]byte("a"), key(2))
	got = nil
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 2 || got[0] != string(key(0)) {
		t.Fatalf("before-min scan got %v", got)
	}

	// Scan past the end.
	it = r.Scan(key(n+100), nil)
	if it.Next() {
		t.Fatal("scan past end yielded entries")
	}
}

func TestScanPrefix(t *testing.T) {
	f := pager.OpenMem(64)
	defer f.Close()
	b := NewBuilder(f)
	words := []string{"app", "apple", "apply", "banana", "band", "banish"}
	sort.Strings(words)
	for i, w := range words {
		if err := b.Add([]byte(w), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, tree)
	it := r.ScanPrefix([]byte("ban"))
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	want := []string{"banana", "band", "banish"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan got %v, want %v", got, want)
		}
	}
}

func TestRejectsUnsortedKeys(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	b := NewBuilder(f)
	if err := b.Add([]byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("a"), nil); err == nil {
		t.Fatal("expected error for out-of-order key")
	}
	if err := b.Add([]byte("c"), nil); err == nil {
		t.Fatal("builder should stay failed")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish should report the error")
	}
}

func TestRejectsDuplicateKeys(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	b := NewBuilder(f)
	_ = b.Add([]byte("a"), nil)
	if err := b.Add([]byte("a"), nil); err == nil {
		t.Fatal("expected error for duplicate key")
	}
}

func TestRejectsHugeEntry(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	b := NewBuilder(f)
	if err := b.Add([]byte("k"), make([]byte, pager.PageSize)); err == nil {
		t.Fatal("expected error for oversized entry")
	}
}

func TestVariableLengthEntries(t *testing.T) {
	f := pager.OpenMem(64)
	defer f.Close()
	rnd := rand.New(rand.NewSource(3))
	type kv struct{ k, v string }
	seen := map[string]bool{}
	var kvs []kv
	for len(kvs) < 3000 {
		k := make([]byte, 1+rnd.Intn(40))
		rnd.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		v := make([]byte, rnd.Intn(200))
		rnd.Read(v)
		kvs = append(kvs, kv{string(k), string(v)})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	b := NewBuilder(f)
	for _, e := range kvs {
		if err := b.Add([]byte(e.k), []byte(e.v)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, tree)
	// Every key retrievable.
	for _, e := range kvs {
		v, ok, err := r.Get([]byte(e.k))
		if err != nil || !ok || string(v) != e.v {
			t.Fatalf("Get(%x) failed: ok=%v err=%v", e.k, ok, err)
		}
	}
	// Full scan in order.
	it := r.Scan(nil, nil)
	for i := 0; it.Next(); i++ {
		if string(it.Key()) != kvs[i].k {
			t.Fatalf("scan[%d] = %x, want %x", i, it.Key(), kvs[i].k)
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

// Random range scans cross-checked against a sorted slice.
func TestRandomRangeScansAgainstReference(t *testing.T) {
	f := pager.OpenMem(64)
	defer f.Close()
	const n = 8000
	tree := buildTree(t, f, n)
	r := NewReader(f, tree)
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		lo, hi := rnd.Intn(n), rnd.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		it := r.Scan(key(lo), key(hi))
		for i := lo; i < hi; i++ {
			if !it.Next() {
				t.Fatalf("trial %d: ended at %d (want %d..%d)", trial, i, lo, hi)
			}
			if !bytes.Equal(it.Key(), key(i)) {
				t.Fatalf("trial %d: got %s want %s", trial, it.Key(), key(i))
			}
		}
		if it.Next() {
			t.Fatalf("trial %d: extra entries", trial)
		}
	}
}

func TestIndexPageAccessesCounted(t *testing.T) {
	f := pager.OpenMem(256)
	defer f.Close()
	tree := buildTree(t, f, 30000)
	r := NewReader(f, tree)
	_ = f.DropCache()
	f.ResetStats()
	if _, _, err := r.Get(key(12345)); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Misses != uint64(tree.Height) {
		t.Fatalf("cold lookup misses = %d, want height %d", st.Misses, tree.Height)
	}
}

// TestEstimateRangeExactAndZero checks the probe's contract: the
// estimate is zero exactly when the range is empty (an empty range's two
// lower bounds normalize to the same position, so the same-leaf exact
// path always catches it), and same-leaf ranges are exact.
func TestEstimateRangeExactAndZero(t *testing.T) {
	f := pager.OpenMem(256)
	defer f.Close()
	const n = 8000
	tree := buildTree(t, f, n)
	r := NewReader(f, tree)
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		lo, hi := rnd.Intn(n+50), rnd.Intn(n+50)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := hi - lo
		if lo >= n {
			want = 0
		} else if hi > n {
			want = n - lo
		}
		got, err := r.EstimateRange(key(lo), key(hi), nil)
		if err != nil {
			t.Fatal(err)
		}
		if (got == 0) != (want == 0) {
			t.Fatalf("[%d,%d): estimate %d, true %d — zero must mean provably empty and vice versa", lo, hi, got, want)
		}
		if want > 0 {
			// Interpolation error on uniform fixed-size keys stays small;
			// the bound here is loose on purpose (it guards order-of-
			// magnitude sanity, not the exact interpolation).
			if got > uint64(want)*3+64 || uint64(want) > got*3+64 {
				t.Fatalf("[%d,%d): estimate %d too far from true %d", lo, hi, got, want)
			}
		}
	}
	// Same-leaf ranges are exact: keys 10..14 sit on the first leaf.
	if got, _ := r.EstimateRange(key(10), key(14), nil); got != 4 {
		t.Fatalf("same-leaf estimate = %d, want exact 4", got)
	}
	// Unbounded and out-of-range bounds.
	if got, _ := r.EstimateRange(nil, nil, nil); got != n {
		t.Fatalf("full-range estimate = %d, want %d", got, n)
	}
	if got, _ := r.EstimateRange(key(n+1), nil, nil); got != 0 {
		t.Fatalf("past-end estimate = %d, want 0", got)
	}
	if got, _ := r.EstimateRange(key(5), key(5), nil); got != 0 {
		t.Fatalf("empty-interval estimate = %d, want 0", got)
	}
}

func TestEstimateRangeEmptyTree(t *testing.T) {
	f := pager.OpenMem(16)
	defer f.Close()
	r := NewReader(f, buildTree(t, f, 0))
	if got, err := r.EstimateRange(nil, nil, nil); err != nil || got != 0 {
		t.Fatalf("empty tree estimate = %d, err %v", got, err)
	}
}

// TestEstimateRangeCost pins the O(log n) claim: a probe is two index
// descents, so it touches at most 2×height pages (and they are counted).
func TestEstimateRangeCost(t *testing.T) {
	f := pager.OpenMem(256)
	defer f.Close()
	tree := buildTree(t, f, 30000)
	r := NewReader(f, tree)
	_ = f.DropCache()
	var c pager.Counters
	if _, err := r.EstimateRange(key(1234), key(23456), &c); err != nil {
		t.Fatal(err)
	}
	if max := 2 * uint64(tree.Height); c.Reads.Load() == 0 || c.Reads.Load() > max {
		t.Fatalf("probe read %d pages, want 1..%d (2×height)", c.Reads.Load(), max)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := pager.OpenMem(1024)
		bl := NewBuilder(f)
		for j := 0; j < 10000; j++ {
			_ = bl.Add(key(j), val(j))
		}
		if _, err := bl.Finish(); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkGet(b *testing.B) {
	f := pager.OpenMem(1024)
	defer f.Close()
	bl := NewBuilder(f)
	for j := 0; j < 100000; j++ {
		_ = bl.Add(key(j), val(j))
	}
	tree, err := bl.Finish()
	if err != nil {
		b.Fatal(err)
	}
	r := NewReader(f, tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := r.Get(key(i % 100000)); !ok {
			b.Fatal("missing key")
		}
	}
}
