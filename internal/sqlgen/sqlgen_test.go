package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/plabel"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/xpath"
)

func testCtx(t *testing.T) translate.Context {
	t.Helper()
	tags := []string{"PLAYS", "PLAY", "ACT", "SCENE", "TITLE", "SPEECH", "LINE"}
	s, err := plabel.NewScheme(tags)
	if err != nil {
		t.Fatal(err)
	}
	g := schema.New()
	g.AddRoot("PLAYS")
	for _, e := range [][2]string{
		{"PLAYS", "PLAY"}, {"PLAY", "ACT"}, {"ACT", "SCENE"},
		{"SCENE", "TITLE"}, {"SCENE", "SPEECH"}, {"SPEECH", "LINE"},
	} {
		g.AddEdge(e[0], e[1])
	}
	g.ObserveDepth(7)
	return translate.Context{Scheme: s, Schema: g}
}

const qs3 = `/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`

func TestSQLShapes(t *testing.T) {
	ctx := testCtx(t)
	q := xpath.MustParse(qs3)

	base, err := translate.Baseline(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sql := SQL(base)
	// Six relations, tag predicates, a level=1 pin on the root.
	if got := strings.Count(sql, "SD T"); got != 6 {
		t.Fatalf("baseline FROM count = %d\n%s", got, sql)
	}
	for _, want := range []string{"T1.tag = 'PLAYS'", "T1.level = 1", "T5.data = 'SCENE III. A public place.'", "T1.start < T2.start"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("baseline SQL missing %q:\n%s", want, sql)
		}
	}

	split, err := translate.Split(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sql = SQL(split)
	if got := strings.Count(sql, "SP T"); got != 3 {
		t.Fatalf("split FROM count = %d\n%s", got, sql)
	}
	// One equality, one range pair, plus the TITLE range.
	if strings.Count(sql, ".plabel = ") != 1 {
		t.Fatalf("split equality count wrong:\n%s", sql)
	}
	if strings.Count(sql, ".plabel >= ") != 2 {
		t.Fatalf("split range count wrong:\n%s", sql)
	}
	// Child-edge cut keeps the level arithmetic the paper shows.
	if !strings.Contains(sql, "T1.level = T2.level - 1") {
		t.Fatalf("split SQL missing level predicate:\n%s", sql)
	}

	unfold, err := translate.Unfold(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sql = SQL(unfold)
	if strings.Count(sql, ".plabel = ") != 3 {
		t.Fatalf("unfold should be three equality selections:\n%s", sql)
	}
	if strings.Contains(sql, ".plabel >= ") {
		t.Fatalf("unfold should have no range selections:\n%s", sql)
	}
}

func TestSQLEscapesQuotes(t *testing.T) {
	ctx := testCtx(t)
	p, err := translate.Split(ctx, xpath.MustParse(`//TITLE="O'Neil"`))
	if err != nil {
		t.Fatal(err)
	}
	sql := SQL(p)
	if !strings.Contains(sql, "'O''Neil'") {
		t.Fatalf("quote not escaped:\n%s", sql)
	}
}

func TestSQLPLabelSet(t *testing.T) {
	ctx := testCtx(t)
	p, err := translate.Unfold(ctx, xpath.MustParse("/PLAYS/PLAY/ACT/SCENE/*"))
	if err == nil {
		sql := SQL(p)
		if !strings.Contains(sql, "IN (") {
			t.Fatalf("set fragment should render as IN:\n%s", sql)
		}
	}
}

func TestAlgebraShape(t *testing.T) {
	ctx := testCtx(t)
	p, err := translate.PushUp(ctx, xpath.MustParse(qs3))
	if err != nil {
		t.Fatal(err)
	}
	alg := Algebra(p)
	for _, want := range []string{"π_T3.start", "ρ(T1", "⋈_{", "T1.level=T2.level-1"} {
		if !strings.Contains(alg, want) {
			t.Fatalf("algebra missing %q:\n%s", want, alg)
		}
	}
}

func TestEmptyFragmentMarked(t *testing.T) {
	ctx := testCtx(t)
	p, err := translate.Split(ctx, xpath.MustParse("/PLAYS/NOPE"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(SQL(p), "1 = 0") {
		t.Fatal("unsatisfiable fragment not marked")
	}
}

func TestSingleFragmentNoJoins(t *testing.T) {
	ctx := testCtx(t)
	p, err := translate.Split(ctx, xpath.MustParse("/PLAYS/PLAY/ACT"))
	if err != nil {
		t.Fatal(err)
	}
	sql := SQL(p)
	if strings.Contains(sql, "T2") {
		t.Fatalf("suffix path should use one relation:\n%s", sql)
	}
	if !strings.Contains(sql, "T1.plabel = ") {
		t.Fatalf("absolute path should be an equality:\n%s", sql)
	}
}
