// Package sqlgen renders translated plans as SQL statements and as
// relational algebra expressions (the paper presents its generated
// queries both ways; Fig. 11 uses algebra "to conserve space").
//
// The SQL dialect is plain SQL-92 over the two relations the index
// generator produces:
//
//	SP(plabel, start, end, level, data)   — clustered {plabel, start}
//	SD(tag, start, end, level, data)      — clustered {tag, start}
//
// Each plan fragment becomes one aliased relation in the FROM clause with
// its selection predicates; each D-join contributes interval-containment
// and level predicates.
package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/translate"
)

// SQL renders the plan as a SQL SELECT statement.
func SQL(p *translate.Plan) string {
	var b strings.Builder
	ret := alias(p.Return)
	fmt.Fprintf(&b, "SELECT DISTINCT %s.start, %s.\"end\", %s.level, %s.data\nFROM ", ret, ret, ret, ret)
	for i, f := range p.Fragments {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", relationOf(f), alias(f.ID))
	}
	var preds []string
	for _, f := range p.Fragments {
		preds = append(preds, fragmentPreds(f)...)
	}
	for _, j := range p.Joins {
		preds = append(preds, joinPreds(j)...)
	}
	if len(preds) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(preds, "\n  AND "))
	}
	b.WriteString(";")
	return b.String()
}

func alias(id int) string { return fmt.Sprintf("T%d", id+1) }

func relationOf(f *translate.Fragment) string {
	switch f.Access.Kind {
	case translate.AccessTag, translate.AccessAll:
		return "SD"
	default:
		return "SP"
	}
}

func fragmentPreds(f *translate.Fragment) []string {
	a := alias(f.ID)
	var preds []string
	switch f.Access.Kind {
	case translate.AccessPLabelEq:
		preds = append(preds, fmt.Sprintf("%s.plabel = %s", a, f.Access.Range.Lo))
	case translate.AccessPLabelRange:
		preds = append(preds, fmt.Sprintf("%s.plabel >= %s", a, f.Access.Range.Lo))
		preds = append(preds, fmt.Sprintf("%s.plabel <= %s", a, f.Access.Range.Hi))
	case translate.AccessPLabelSet:
		vals := make([]string, len(f.Access.Labels))
		for i, l := range f.Access.Labels {
			vals[i] = l.String()
		}
		preds = append(preds, fmt.Sprintf("%s.plabel IN (%s)", a, strings.Join(vals, ", ")))
	case translate.AccessTag:
		preds = append(preds, fmt.Sprintf("%s.tag = %s", a, quote(f.Access.Tag)))
	case translate.AccessAll:
		preds = append(preds, fmt.Sprintf("%s.tag NOT LIKE '@%%'", a))
	}
	if f.Value != nil {
		preds = append(preds, fmt.Sprintf("%s.data = %s", a, quote(*f.Value)))
	}
	if f.LevelEq != 0 {
		preds = append(preds, fmt.Sprintf("%s.level = %d", a, f.LevelEq))
	}
	if f.Empty {
		preds = append(preds, "1 = 0 /* unsatisfiable fragment */")
	}
	return preds
}

func joinPreds(j translate.Join) []string {
	a, d := alias(j.Anc), alias(j.Desc)
	preds := []string{
		fmt.Sprintf("%s.start < %s.start", a, d),
		fmt.Sprintf("%s.\"end\" > %s.\"end\"", a, d),
	}
	switch {
	case j.Exact:
		preds = append(preds, fmt.Sprintf("%s.level = %s.level - %d", a, d, j.Gap))
	case j.Gap > 1:
		preds = append(preds, fmt.Sprintf("%s.level <= %s.level - %d", a, d, j.Gap))
	}
	return preds
}

func quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// Algebra renders the plan as a relational algebra expression in the
// style of the paper's Fig. 11.
func Algebra(p *translate.Plan) string {
	var b strings.Builder
	ret := alias(p.Return)
	fmt.Fprintf(&b, "π_%s.start(\n", ret)
	for i, f := range p.Fragments {
		if i > 0 {
			j := joinFor(p, f.ID)
			fmt.Fprintf(&b, "  ⋈_{%s}\n", algebraJoinCond(j))
		}
		fmt.Fprintf(&b, "  ρ(%s, σ_{%s}(%s))\n", alias(f.ID), algebraSel(f), relationOf(f))
	}
	b.WriteString(")")
	return b.String()
}

// joinFor finds the join whose descendant is fragment id (fragments
// other than the first are each the descendant of exactly one join).
func joinFor(p *translate.Plan, id int) translate.Join {
	for _, j := range p.Joins {
		if j.Desc == id {
			return j
		}
	}
	return translate.Join{Anc: -1, Desc: id}
}

func algebraSel(f *translate.Fragment) string {
	var parts []string
	switch f.Access.Kind {
	case translate.AccessPLabelEq:
		parts = append(parts, fmt.Sprintf("plabel=%s", f.Access.Range.Lo))
	case translate.AccessPLabelRange:
		parts = append(parts, fmt.Sprintf("plabel≥%s ∧ plabel≤%s", f.Access.Range.Lo, f.Access.Range.Hi))
	case translate.AccessPLabelSet:
		vals := make([]string, len(f.Access.Labels))
		for i, l := range f.Access.Labels {
			vals[i] = l.String()
		}
		parts = append(parts, fmt.Sprintf("plabel∈{%s}", strings.Join(vals, ",")))
	case translate.AccessTag:
		parts = append(parts, fmt.Sprintf("tag='%s'", f.Access.Tag))
	case translate.AccessAll:
		parts = append(parts, "element")
	}
	if f.Value != nil {
		parts = append(parts, fmt.Sprintf("data='%s'", *f.Value))
	}
	if f.LevelEq != 0 {
		parts = append(parts, fmt.Sprintf("level=%d", f.LevelEq))
	}
	return strings.Join(parts, " ∧ ")
}

func algebraJoinCond(j translate.Join) string {
	if j.Anc < 0 {
		return "⊥"
	}
	a, d := alias(j.Anc), alias(j.Desc)
	cond := fmt.Sprintf("%s.start<%s.start ∧ %s.end>%s.end", a, d, a, d)
	switch {
	case j.Exact:
		cond += fmt.Sprintf(" ∧ %s.level=%s.level-%d", a, d, j.Gap)
	case j.Gap > 1:
		cond += fmt.Sprintf(" ∧ %s.level≤%s.level-%d", a, d, j.Gap)
	}
	return cond
}
