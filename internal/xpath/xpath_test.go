package xpath

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func parse(t *testing.T, s string) Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseSimplePath(t *testing.T) {
	q := parse(t, "/a/b/c")
	if q.Root.Tag != "a" || q.Root.Axis != Child {
		t.Fatalf("root = %+v", q.Root)
	}
	if got := q.Tags(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("tags = %v", got)
	}
	if q.Return().Tag != "c" {
		t.Fatalf("return = %s", q.Return().Tag)
	}
	if !q.IsSuffixPath() {
		t.Fatal("should be a suffix path")
	}
}

func TestParseDescendant(t *testing.T) {
	q := parse(t, "//a/b//c")
	if q.Root.Axis != Descendant {
		t.Fatal("leading // not parsed")
	}
	if q.Root.Next.Axis != Child || q.Root.Next.Next.Axis != Descendant {
		t.Fatal("axes wrong")
	}
	if q.IsSuffixPath() {
		t.Fatal("interior // disqualifies suffix path")
	}
}

func TestParseBranchesAndValues(t *testing.T) {
	q := parse(t, `/a/b[c/d="x" and e]//f`)
	b := q.Root.Next
	if b.Tag != "b" || len(b.Branches) != 2 {
		t.Fatalf("b = %+v", b)
	}
	c := b.Branches[0]
	if c.Tag != "c" || c.Axis != Child || c.Next.Tag != "d" {
		t.Fatalf("branch 0 = %+v", c)
	}
	if c.Next.Value == nil || *c.Next.Value != "x" {
		t.Fatalf("value = %v", c.Next.Value)
	}
	if b.Branches[1].Tag != "e" {
		t.Fatalf("branch 1 = %+v", b.Branches[1])
	}
	if q.Return().Tag != "f" || q.Return().Axis != Descendant {
		t.Fatalf("return = %+v", q.Return())
	}
}

func TestParsePaperQuery(t *testing.T) {
	// The paper's running example (Fig. 2).
	q := parse(t, `/proteinDatabase/proteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`)
	if q.Return().Tag != "title" {
		t.Fatalf("return = %s", q.Return().Tag)
	}
	pe := q.Root.Next
	if pe.Tag != "proteinEntry" || len(pe.Branches) != 1 {
		t.Fatalf("proteinEntry = %+v", pe)
	}
	sup := pe.Branches[0]
	if sup.Tag != "protein" || sup.Next.Tag != "superfamily" || sup.Next.Axis != Descendant {
		t.Fatalf("protein branch = %+v", sup)
	}
	ri := pe.Next.Next
	if ri.Tag != "refinfo" || len(ri.Branches) != 2 {
		t.Fatalf("refinfo = %+v", ri)
	}
	if ri.Branches[0].Axis != Descendant || ri.Branches[0].Tag != "author" {
		t.Fatalf("author branch = %+v", ri.Branches[0])
	}
	// Paper's l (number of tags): proteinDatabase, proteinEntry, protein,
	// superfamily, reference, refinfo, author, year, title = 9.
	if got := q.CountNodes(); got != 9 {
		t.Fatalf("CountNodes = %d, want 9", got)
	}
}

func TestParseWildcardAndAttr(t *testing.T) {
	q := parse(t, `/site/*/item/@id`)
	if q.Root.Next.Tag != "*" || !q.Root.Next.IsWildcard() {
		t.Fatalf("wildcard = %+v", q.Root.Next)
	}
	ret := q.Return()
	if ret.Tag != "@id" || !ret.IsAttr() {
		t.Fatalf("attr = %+v", ret)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",              // no path
		"a/b",           // missing leading axis at top level
		"/a[",           // unclosed predicate
		"/a]",           // stray bracket
		"/a=",           // missing literal
		`/a="unclosed`,  // unterminated literal
		"/a//",          // trailing axis
		"//",            // no step
		"/a[b and]",     // missing conjunct
		"/a[]",          // empty predicate
		"/@",            // bad attribute
		"/a/b$",         // bad character
		"/a /b extra x", // trailing garbage
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"/a/b/c",
		"//a",
		"//a/b//c",
		`/a/b[c/d="x"][e]//f`,
		`/a[//b="v"]/c`,
		`/plays/play[title="Hamlet"]/act`,
	}
	for _, s := range cases {
		q := parse(t, s)
		got := q.String()
		q2 := parse(t, got)
		if q2.String() != got {
			t.Errorf("round trip unstable: %q -> %q -> %q", s, got, q2.String())
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := parse(t, `/a/b[c="v"]/d`)
	c := q.Clone()
	c.Root.Next.Branches[0].Tag = "changed"
	if q.Root.Next.Branches[0].Tag != "c" {
		t.Fatal("clone aliases branches")
	}
	*c.Root.Next.Branches[0].Value = "other"
	if *q.Root.Next.Branches[0].Value != "v" {
		t.Fatal("clone aliases value pointer")
	}
	c.Root.Next.Next.Tag = "zzz"
	if q.Return().Tag != "d" {
		t.Fatal("clone aliases continuation")
	}
}

func TestParseSuffixPath(t *testing.T) {
	abs, tags, err := ParseSuffixPath("/a/b/c")
	if err != nil || !abs || !reflect.DeepEqual(tags, []string{"a", "b", "c"}) {
		t.Fatalf("got %v %v %v", abs, tags, err)
	}
	abs, tags, err = ParseSuffixPath("//x/y")
	if err != nil || abs || !reflect.DeepEqual(tags, []string{"x", "y"}) {
		t.Fatalf("got %v %v %v", abs, tags, err)
	}
	for _, bad := range []string{"/a//b", "/a[b]", `/a="v"`, "/a/*"} {
		if _, _, err := ParseSuffixPath(bad); err == nil {
			t.Errorf("ParseSuffixPath(%q) succeeded", bad)
		}
	}
}

const sampleDoc = `
<proteinDatabase>
  <proteinEntry>
    <protein>
      <name>cytochrome c [validated]</name>
      <classification><superfamily>cytochrome c</superfamily></classification>
    </protein>
    <reference>
      <refinfo>
        <authors><author>Evans, M.J.</author><author>Smith, K.</author></authors>
        <year>2001</year>
        <title>The human somatic cytochrome c gene</title>
      </refinfo>
    </reference>
  </proteinEntry>
  <proteinEntry>
    <protein>
      <name>hemoglobin</name>
      <classification><superfamily>globin</superfamily></classification>
    </protein>
    <reference>
      <refinfo>
        <authors><author>Jones, A.</author></authors>
        <year>2001</year>
        <title>Other paper</title>
      </refinfo>
    </reference>
  </proteinEntry>
</proteinDatabase>`

func evalStrings(t *testing.T, doc *xmltree.Node, query string) []string {
	t.Helper()
	q := parse(t, query)
	var out []string
	for _, n := range Eval(doc, q) {
		if n.Text != "" {
			out = append(out, n.Text)
		} else {
			out = append(out, n.Tag)
		}
	}
	return out
}

func TestEvalSimplePaths(t *testing.T) {
	doc, err := xmltree.ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	got := evalStrings(t, doc, "/proteinDatabase/proteinEntry/protein/name")
	want := []string{"cytochrome c [validated]", "hemoglobin"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Root not matching.
	if res := Eval(doc, parse(t, "/wrong/name")); len(res) != 0 {
		t.Fatalf("got %d results for wrong root", len(res))
	}
}

func TestEvalDescendant(t *testing.T) {
	doc, _ := xmltree.ParseString(sampleDoc)
	got := evalStrings(t, doc, "//superfamily")
	want := []string{"cytochrome c", "globin"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	got = evalStrings(t, doc, "//refinfo//author")
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// Descendant in the middle.
	got = evalStrings(t, doc, "/proteinDatabase//year")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalPaperQuery(t *testing.T) {
	doc, _ := xmltree.ParseString(sampleDoc)
	got := evalStrings(t, doc, `/proteinDatabase/proteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`)
	want := []string{"The human somatic cytochrome c gene"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Tighten the predicate so it excludes everything.
	got = evalStrings(t, doc, `/proteinDatabase/proteinEntry[protein//superfamily="nope"]/reference/refinfo/title`)
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestEvalValueOnReturnNode(t *testing.T) {
	doc, _ := xmltree.ParseString(sampleDoc)
	got := evalStrings(t, doc, `//year="2001"`)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	got = evalStrings(t, doc, `//year="1999"`)
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalWildcard(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b><x/></b><c><x/></c></a>`)
	got := Eval(doc, parse(t, "/a/*/x"))
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	// Wildcard must not match attributes.
	doc2, _ := xmltree.ParseString(`<a id="1"><b/></a>`)
	got = Eval(doc2, parse(t, "/a/*"))
	if len(got) != 1 || got[0].Tag != "b" {
		t.Fatalf("wildcard matched attributes: %v", got)
	}
}

func TestEvalAttributes(t *testing.T) {
	doc, _ := xmltree.ParseString(`<site><person id="p1"><name>n1</name></person><person id="p2"/></site>`)
	got := Eval(doc, parse(t, "/site/person/@id"))
	if len(got) != 2 || got[0].Text != "p1" || got[1].Text != "p2" {
		t.Fatalf("got %+v", got)
	}
	got = Eval(doc, parse(t, `/site/person[@id="p2"]`))
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
}

func TestEvalDeduplication(t *testing.T) {
	// //a//b can reach the same b via multiple a ancestors; results must
	// be deduplicated.
	doc, _ := xmltree.ParseString(`<a><a><b/></a></a>`)
	got := Eval(doc, parse(t, "//a//b"))
	if len(got) != 1 {
		t.Fatalf("got %d results, want 1 (dedup)", len(got))
	}
}

func TestEvalDocOrder(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><x n="1"/><y><x n="2"/></y><x n="3"/></r>`)
	got := Eval(doc, parse(t, "//x"))
	var order []string
	for _, n := range got {
		for _, c := range n.Children {
			order = append(order, c.Text)
		}
	}
	if strings.Join(order, ",") != "1,2,3" {
		t.Fatalf("order = %v", order)
	}
}

func TestEvalRootReturn(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><x/></r>`)
	got := Eval(doc, parse(t, "/r"))
	if len(got) != 1 || got[0].Tag != "r" {
		t.Fatalf("got %v", got)
	}
	got = Eval(doc, parse(t, "//r"))
	if len(got) != 1 {
		t.Fatalf("//r got %v", got)
	}
}

func TestEvalBranchOnReturnNode(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><e><p/><q/></e><e><p/></e></r>`)
	got := Eval(doc, parse(t, "/r/e[q]"))
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
}

func TestCountDescendantAndBranchEdges(t *testing.T) {
	// Paper example Q (Fig. 3): d = 2 (protein//superfamily,
	// refinfo//author), b = 4 (proteinEntry->protein? no: branching points
	// are proteinEntry (children: protein branch, reference continuation)
	// and refinfo (author branch, year branch, title continuation); child
	// edges at those points: protein, reference, year, title = 4.
	q := parse(t, `/proteinDatabase/proteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`)
	if d := q.CountDescendantEdges(); d != 2 {
		t.Fatalf("d = %d, want 2", d)
	}
	if b := q.CountBranchEdges(); b != 4 {
		t.Fatalf("b = %d, want 4", b)
	}
	// Suffix path: no branches, no interior descendants.
	q2 := parse(t, "/a/b/c")
	if q2.CountDescendantEdges() != 0 || q2.CountBranchEdges() != 0 {
		t.Fatal("suffix path should have b = d = 0")
	}
}

func TestEvalNilSafety(t *testing.T) {
	if got := Eval(nil, MustParse("/a")); got != nil {
		t.Fatal("nil doc should return nil")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not valid")
}
