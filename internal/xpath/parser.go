package xpath

import (
	"fmt"
	"unicode"
)

// Parse parses an XPath expression of the supported subset:
//
//	Path      := ("/" | "//") Step { ("/" | "//") Step }
//	Step      := Name Predicate* [ "=" Literal ]
//	Name      := NCName | "*" | "@" NCName
//	Predicate := "[" RelPath { "and" RelPath } "]"
//	RelPath   := ["/" | "//"] Step { ("/" | "//") Step }
//	Literal   := '"' chars '"' | "'" chars "'"
//
// A predicate with several conjuncts ([a and b]) becomes several branches.
func Parse(input string) (Query, error) {
	p := &parser{lex: newLexer(input)}
	if err := p.lex.err; err != nil {
		return Query{}, err
	}
	root, err := p.parsePath(true)
	if err != nil {
		return Query{}, err
	}
	if !p.at(tokEOF) {
		return Query{}, fmt.Errorf("xpath: unexpected %q at position %d", p.cur.text, p.cur.pos)
	}
	return Query{Root: root}, nil
}

// MustParse is Parse for static query strings; it panics on error.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash
	tokLBracket
	tokRBracket
	tokEquals
	tokAnd
	tokName    // NCName, optionally with leading @; or *
	tokLiteral // quoted string, quotes stripped
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	toks []token
	i    int
	err  error
}

func newLexer(input string) *lexer {
	l := &lexer{}
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < len(input) && input[i+1] == '/' {
				l.toks = append(l.toks, token{tokDSlash, "//", i})
				i += 2
			} else {
				l.toks = append(l.toks, token{tokSlash, "/", i})
				i++
			}
		case c == '[':
			l.toks = append(l.toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			l.toks = append(l.toks, token{tokRBracket, "]", i})
			i++
		case c == '=':
			l.toks = append(l.toks, token{tokEquals, "=", i})
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				l.err = fmt.Errorf("xpath: unterminated string literal at position %d", i)
				return l
			}
			l.toks = append(l.toks, token{tokLiteral, input[i+1 : j], i})
			i = j + 1
		case c == '*':
			l.toks = append(l.toks, token{tokName, "*", i})
			i++
		case c == '@' || isNameStart(rune(c)):
			j := i
			if c == '@' {
				j++
				if j >= len(input) || !isNameStart(rune(input[j])) {
					l.err = fmt.Errorf("xpath: bad attribute name at position %d", i)
					return l
				}
			}
			for j < len(input) && isNameChar(rune(input[j])) {
				j++
			}
			text := input[i:j]
			if text == "and" {
				l.toks = append(l.toks, token{tokAnd, text, i})
			} else {
				l.toks = append(l.toks, token{tokName, text, i})
			}
			i = j
		default:
			l.err = fmt.Errorf("xpath: unexpected character %q at position %d", c, i)
			return l
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(input)})
	return l
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// MaxPredicateDepth bounds predicate nesting ([a[b[c...]]]). The parser
// recurses once per bracket level, so an unbounded input could exhaust
// the stack; real queries nest a handful of levels at most.
const MaxPredicateDepth = 128

type parser struct {
	lex   *lexer
	cur   token
	depth int // current predicate nesting depth
}

func (p *parser) next() token {
	p.cur = p.lex.toks[p.lex.i]
	if p.lex.i < len(p.lex.toks)-1 {
		p.lex.i++
	}
	return p.cur
}

func (p *parser) peek() token { return p.lex.toks[p.lex.i] }

func (p *parser) at(k tokKind) bool { return p.peek().kind == k }

// parsePath parses a chain of steps. When top is true the path must begin
// with / or //; otherwise a leading axis is optional (relative path inside
// a predicate) and defaults to child.
func (p *parser) parsePath(top bool) (*Node, error) {
	var head, tail *Node
	first := true
	for {
		var axis Axis
		switch {
		case p.at(tokSlash):
			p.next()
			axis = Child
		case p.at(tokDSlash):
			p.next()
			axis = Descendant
		default:
			if first && !top && p.at(tokName) {
				axis = Child // relative path: implicit child axis
			} else if first {
				return nil, fmt.Errorf("xpath: expected / or // at position %d", p.peek().pos)
			} else {
				return head, nil
			}
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		if head == nil {
			head = step
		} else {
			tail.Next = step
		}
		tail = step
		first = false
		if !p.at(tokSlash) && !p.at(tokDSlash) {
			return head, nil
		}
	}
}

func (p *parser) parseStep(axis Axis) (*Node, error) {
	if !p.at(tokName) {
		return nil, fmt.Errorf("xpath: expected name at position %d, got %q", p.peek().pos, p.peek().text)
	}
	tok := p.next()
	n := &Node{Axis: axis, Tag: tok.text}
	for p.at(tokLBracket) {
		p.depth++
		if p.depth > MaxPredicateDepth {
			return nil, fmt.Errorf("xpath: predicates nested deeper than %d at position %d", MaxPredicateDepth, p.peek().pos)
		}
		p.next()
		for {
			branch, err := p.parsePath(false)
			if err != nil {
				return nil, err
			}
			n.Branches = append(n.Branches, branch)
			if p.at(tokAnd) {
				p.next()
				continue
			}
			break
		}
		if !p.at(tokRBracket) {
			return nil, fmt.Errorf("xpath: expected ] at position %d, got %q", p.peek().pos, p.peek().text)
		}
		p.next()
		p.depth--
	}
	if p.at(tokEquals) {
		p.next()
		if !p.at(tokLiteral) {
			return nil, fmt.Errorf("xpath: expected string literal at position %d", p.peek().pos)
		}
		lit := p.next()
		v := lit.text
		n.Value = &v
	}
	return n, nil
}

// ParseSuffixPath parses a string that must be a suffix path expression
// (Definition 2.3): an optional leading // followed by child steps only,
// no branches, wildcards or value predicates.
func ParseSuffixPath(input string) (absolute bool, tags []string, err error) {
	q, err := Parse(input)
	if err != nil {
		return false, nil, err
	}
	absolute = q.Root.Axis == Child
	for n := q.Root; n != nil; n = n.Next {
		if n != q.Root && n.Axis != Child {
			return false, nil, fmt.Errorf("xpath: %q is not a suffix path: interior //", input)
		}
		if len(n.Branches) > 0 || n.Value != nil || n.IsWildcard() {
			return false, nil, fmt.Errorf("xpath: %q is not a suffix path", input)
		}
		tags = append(tags, n.Tag)
	}
	return absolute, tags, nil
}

// IsSuffixPath reports whether the query is a suffix path expression:
// leading axis arbitrary, all interior axes child, no branches, no
// wildcards (value predicates also disqualify — they require data access).
func (q Query) IsSuffixPath() bool {
	for n := q.Root; n != nil; n = n.Next {
		if n != q.Root && n.Axis != Child {
			return false
		}
		if len(n.Branches) > 0 || n.Value != nil || n.IsWildcard() {
			return false
		}
	}
	return true
}

// Tags returns the main-path tags of the query in document order.
func (q Query) Tags() []string {
	var out []string
	for n := q.Root; n != nil; n = n.Next {
		out = append(out, n.Tag)
	}
	return out
}
