// Package xpath implements the XPath subset of the paper (§2): child axis
// navigation (/), descendant axis navigation (//), branches ([...]) with
// conjunction (and), value predicates (= "literal"), plus wildcard steps
// (*) and attribute steps (@name) as extensions.
//
// A parsed query is the paper's "query tree": one node per step, each with
// an incoming axis, optional branches, an optional value predicate, and a
// single continuation (Next); the last node on the Next chain from the
// root is the return node. The package also provides the naive evaluator
// over xmltree documents that serves as ground truth for every engine in
// the test suite.
package xpath

import (
	"strings"
)

// Axis is the axis of a step's incoming edge.
type Axis int

// Axes.
const (
	Child      Axis = iota // "/"
	Descendant             // "//"
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Node is one step of a query tree.
type Node struct {
	Axis     Axis
	Tag      string  // element tag, "*" (any element), or "@name" (attribute)
	Value    *string // non-nil: the node's text must equal *Value
	Branches []*Node // predicate subtrees ([...])
	Next     *Node   // continuation of the path; nil at a leaf
}

// Query is a parsed query tree.
type Query struct {
	Root *Node
}

// IsWildcard reports whether the node is a wildcard step.
func (n *Node) IsWildcard() bool { return n.Tag == "*" }

// IsAttr reports whether the node is an attribute step.
func (n *Node) IsAttr() bool { return strings.HasPrefix(n.Tag, "@") }

// Return returns the query's return node: the last step on the Next chain.
func (q Query) Return() *Node {
	n := q.Root
	for n.Next != nil {
		n = n.Next
	}
	return n
}

// Clone deep-copies the query tree.
func (q Query) Clone() Query { return Query{Root: q.Root.Clone()} }

// Clone deep-copies the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Axis: n.Axis, Tag: n.Tag, Next: n.Next.Clone()}
	if n.Value != nil {
		v := *n.Value
		c.Value = &v
	}
	for _, b := range n.Branches {
		c.Branches = append(c.Branches, b.Clone())
	}
	return c
}

// String renders the query in XPath syntax. The rendering is canonical:
// parsing it yields a query tree whose String is identical, so String
// serves as a normal form for query caching (two inputs differing only
// in whitespace or literal quote style render identically).
func (q Query) String() string {
	var b strings.Builder
	writeChain(&b, q.Root)
	return b.String()
}

func writeChain(b *strings.Builder, n *Node) {
	for ; n != nil; n = n.Next {
		b.WriteString(n.Axis.String())
		b.WriteString(n.Tag)
		for _, br := range n.Branches {
			b.WriteString("[")
			writeBranch(b, br)
			b.WriteString("]")
		}
		writeValue(b, n.Value)
	}
}

// writeValue renders a value predicate, picking the quote the value does
// not contain. A parsed value can never contain both quote kinds (each
// literal is delimited by one of them), so the output always reparses to
// the same value; a hand-built value holding both kinds is not
// expressible in the grammar and renders double-quoted.
func writeValue(b *strings.Builder, v *string) {
	if v == nil {
		return
	}
	quote := `"`
	if strings.Contains(*v, `"`) {
		quote = `'`
	}
	b.WriteString("=")
	b.WriteString(quote)
	b.WriteString(*v)
	b.WriteString(quote)
}

// writeBranch renders a predicate subtree; the leading child axis inside a
// predicate is implicit in XPath syntax.
func writeBranch(b *strings.Builder, n *Node) {
	first := true
	for ; n != nil; n = n.Next {
		if !first || n.Axis == Descendant {
			b.WriteString(n.Axis.String())
		}
		first = false
		b.WriteString(n.Tag)
		for _, br := range n.Branches {
			b.WriteString("[")
			writeBranch(b, br)
			b.WriteString("]")
		}
		writeValue(b, n.Value)
	}
}

// CountNodes returns the number of steps in the query tree (tags in the
// paper's terminology — the l of the "l-1 D-joins" bound).
func (q Query) CountNodes() int { return countNodes(q.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	c := 1 + countNodes(n.Next)
	for _, b := range n.Branches {
		c += countNodes(b)
	}
	return c
}

// CountDescendantEdges returns d: the number of descendant-axis edges in
// the tree (used by the paper's b+d join bound). The root's leading "//"
// counts, matching the paper's treatment of Q's decomposition.
func (q Query) CountDescendantEdges() int { return countDesc(q.Root, true) }

func countDesc(n *Node, isRoot bool) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.Axis == Descendant && !isRoot {
		c++
	}
	c += countDesc(n.Next, false)
	for _, b := range n.Branches {
		c += countDesc(b, false)
	}
	return c
}

// CountBranchEdges returns b: the number of outgoing non-descendant edges
// at branching points (paper §4.2). A node is a branching point if it has
// more than one outgoing edge (branches plus continuation), or if it is
// the return node and has any branch.
func (q Query) CountBranchEdges() int { return countBranchEdges(q.Root) }

func countBranchEdges(n *Node) int {
	if n == nil {
		return 0
	}
	out := len(n.Branches)
	if n.Next != nil {
		out++
	}
	c := 0
	if out > 1 {
		for _, b := range n.Branches {
			if b.Axis == Child {
				c++
			}
		}
		if n.Next != nil && n.Next.Axis == Child {
			c++
		}
	}
	c += countBranchEdges(n.Next)
	for _, b := range n.Branches {
		c += countBranchEdges(b)
	}
	return c
}
