package xpath

import (
	"strings"
	"testing"
)

// FuzzParseXPath exercises the parser on arbitrary input and checks the
// canonicalization contract the serving tier's caches depend on: any
// input that parses must render (String) to a form that reparses to the
// byte-identical rendering. A violation means two equivalent queries
// could normalize to different cache keys — or, worse, a valid query
// could normalize to an unparseable string.
func FuzzParseXPath(f *testing.F) {
	for _, seed := range []string{
		"/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
		"/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR",
		`/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`,
		"//category/description/parlist/listitem",
		"/site/regions/asia/item[shipping]/description",
		"/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name",
		`/a/b[c="v" and .d]//e/@id`,
		`//a[b='has "quotes" inside']`,
		`/a='x'`,
		"/*//*[*]",
		"/a[b][c][d]",
		"//a[//b]",
		"/a[" + strings.Repeat("b[", 200) + "c" + strings.Repeat("]", 201),
		"////",
		"/a=",
		"[a]",
		"/@",
		`/a="unterminated`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejecting garbage is fine; panics and hangs are not
		}
		norm := q.String()
		q2, err := Parse(norm)
		if err != nil {
			t.Fatalf("Parse(%q) ok but its rendering %q does not reparse: %v", input, norm, err)
		}
		if got := q2.String(); got != norm {
			t.Fatalf("rendering is not a fixpoint: %q -> %q -> %q", input, norm, got)
		}
		// Clone must be deep and render-identical.
		if got := q.Clone().String(); got != norm {
			t.Fatalf("Clone changed rendering: %q -> %q", norm, got)
		}
	})
}

// TestPredicateDepthLimit pins the parser's recursion guard: nesting at
// the limit parses, one level beyond errors instead of growing the stack
// without bound.
func TestPredicateDepthLimit(t *testing.T) {
	nest := func(depth int) string {
		return "/a" + strings.Repeat("[b", depth) + strings.Repeat("]", depth)
	}
	if _, err := Parse(nest(MaxPredicateDepth)); err != nil {
		t.Fatalf("depth %d should parse: %v", MaxPredicateDepth, err)
	}
	if _, err := Parse(nest(MaxPredicateDepth + 1)); err == nil {
		t.Fatalf("depth %d should be rejected", MaxPredicateDepth+1)
	}
	// Sibling predicate groups do not count toward nesting depth.
	if _, err := Parse("/a" + strings.Repeat("[b]", MaxPredicateDepth+8)); err != nil {
		t.Fatalf("sibling predicates should parse: %v", err)
	}
}

// TestNormalizeQuoteChoice pins the bug FuzzParseXPath found in the seed
// renderer: a value literal containing double quotes (only expressible
// single-quoted) used to render double-quoted and fail to reparse.
func TestNormalizeQuoteChoice(t *testing.T) {
	for _, in := range []string{
		`//a[b='has "quotes" inside']`,
		`/a[b='it is']`,
		`/a="mixed 'single' ok"`,
	} {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		norm := q.String()
		q2, err := Parse(norm)
		if err != nil {
			t.Fatalf("rendering %q of %q does not reparse: %v", norm, in, err)
		}
		if got := q2.String(); got != norm {
			t.Fatalf("not a fixpoint: %q -> %q -> %q", in, norm, got)
		}
	}
}
