package xpath

import (
	"sort"

	"repro/internal/xmltree"
)

// Eval evaluates the query against a document and returns the bindings of
// the return node, deduplicated, in document order. It is the reference
// ("naive") evaluator: a direct implementation of the semantics of §2,
// used as ground truth for the BLAS engines.
func Eval(doc *xmltree.Node, q Query) []*xmltree.Node {
	if doc == nil || q.Root == nil {
		return nil
	}
	// Walk the main path, maintaining the frontier of candidate bindings.
	frontier := axisFrom(nil, doc, q.Root.Axis)
	frontier = filterStep(frontier, q.Root)
	for step := q.Root.Next; step != nil; step = step.Next {
		var next []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		for _, d := range frontier {
			for _, c := range axisFrom(d, doc, step.Axis) {
				if !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = filterStep(next, step)
	}
	return docOrder(doc, frontier)
}

// filterStep keeps the nodes that satisfy the step's tag, value predicate
// and branch subtrees (but not its continuation).
func filterStep(nodes []*xmltree.Node, step *Node) []*xmltree.Node {
	var out []*xmltree.Node
	for _, d := range nodes {
		if !nodeMatchesLocal(d, step) {
			continue
		}
		ok := true
		for _, b := range step.Branches {
			if !existsMatch(d, b) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// nodeMatchesLocal checks tag and value only.
func nodeMatchesLocal(d *xmltree.Node, step *Node) bool {
	switch {
	case step.Tag == "*":
		if d.IsAttr() {
			return false
		}
	case step.Tag != d.Tag:
		return false
	}
	if step.Value != nil && d.Text != *step.Value {
		return false
	}
	return true
}

// existsMatch reports whether some node reachable from d via the branch
// step's axis matches the entire branch subtree.
func existsMatch(d *xmltree.Node, branch *Node) bool {
	for _, c := range axisFrom(d, nil, branch.Axis) {
		if subtreeMatches(c, branch) {
			return true
		}
	}
	return false
}

// subtreeMatches checks d against the step and all of its descendants in
// the query tree (branches and continuation).
func subtreeMatches(d *xmltree.Node, step *Node) bool {
	if !nodeMatchesLocal(d, step) {
		return false
	}
	for _, b := range step.Branches {
		if !existsMatch(d, b) {
			return false
		}
	}
	if step.Next != nil {
		found := false
		for _, c := range axisFrom(d, nil, step.Next.Axis) {
			if subtreeMatches(c, step.Next) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// axisFrom enumerates the nodes reachable from ctx via the axis. A nil ctx
// denotes the virtual document root, whose only child is doc's root
// element and whose descendants are every node in the document.
func axisFrom(ctx *xmltree.Node, doc *xmltree.Node, axis Axis) []*xmltree.Node {
	if ctx == nil {
		if axis == Child {
			return []*xmltree.Node{doc}
		}
		var all []*xmltree.Node
		doc.Walk(func(n *xmltree.Node) { all = append(all, n) })
		return all
	}
	if axis == Child {
		return ctx.Children
	}
	var desc []*xmltree.Node
	for _, c := range ctx.Children {
		c.Walk(func(n *xmltree.Node) { desc = append(desc, n) })
	}
	return desc
}

// docOrder sorts nodes by their position in the document.
func docOrder(doc *xmltree.Node, nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	pos := map[*xmltree.Node]int{}
	i := 0
	doc.Walk(func(n *xmltree.Node) { pos[n] = i; i++ })
	sort.Slice(nodes, func(a, b int) bool { return pos[nodes[a]] < pos[nodes[b]] })
	return nodes
}
