package relengine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/planner"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const proteinDoc = `<proteinDatabase>
  <proteinEntry>
    <protein>
      <name>cytochrome c</name>
      <classification><superfamily>cytochrome c</superfamily></classification>
    </protein>
    <reference>
      <refinfo>
        <authors><author>Evans, M.J.</author><author>Smith, K.</author></authors>
        <year>2001</year>
        <title>The human somatic cytochrome c gene</title>
      </refinfo>
    </reference>
  </proteinEntry>
  <proteinEntry>
    <protein>
      <name>hemoglobin</name>
      <classification><superfamily>globin</superfamily></classification>
    </protein>
    <reference>
      <refinfo>
        <authors><author>Jones, A.</author></authors>
        <year>2001</year>
        <title>Other paper</title>
      </refinfo>
    </reference>
  </proteinEntry>
</proteinDatabase>`

func allTranslators(t *testing.T, st *core.Store) map[string]translate.Translator {
	t.Helper()
	return map[string]translate.Translator{
		"dlabel": translate.Baseline,
		"split":  translate.Split,
		"pushup": translate.PushUp,
		"unfold": translate.Unfold,
	}
}

func ctxFor(st *core.Store) translate.Context {
	return translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
}

// runAll executes query under every translator and checks each against
// the reference evaluator.
func runAll(t *testing.T, st *core.Store, tree *xmltree.Node, query string) {
	t.Helper()
	want, err := enginetest.EvalStarts(tree, query)
	if err != nil {
		t.Fatalf("reference eval %s: %v", query, err)
	}
	for name, tr := range allTranslators(t, st) {
		p, err := tr(ctxFor(st), xpath.MustParse(query))
		if err != nil {
			t.Fatalf("%s: translate %s: %v", name, query, err)
		}
		res, err := Execute(nil, st, planner.Fixed(p), Options{})
		if err != nil {
			t.Fatalf("%s: execute %s: %v", name, query, err)
		}
		if !enginetest.StartsEqual(res.Starts(), want) {
			t.Errorf("%s: %s\n got %s\nwant %s\nplan:\n%s", name, query,
				enginetest.FormatStarts(res.Starts()), enginetest.FormatStarts(want), p)
		}
	}
}

func TestProteinQueries(t *testing.T) {
	st, tree, err := enginetest.MustBuild(proteinDoc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	queries := []string{
		"/proteinDatabase/proteinEntry/protein/name",
		"//superfamily",
		"//refinfo//author",
		"/proteinDatabase//year",
		"//authors/author",
		`/proteinDatabase/proteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`,
		`//proteinEntry[protein/name="hemoglobin"]//title`,
		`//refinfo[year="2001"]/title`,
		`//author="Jones, A."`,
		"/proteinDatabase/proteinEntry/reference/refinfo/authors/author",
		"/proteinDatabase/*/protein",
		"//proteinEntry/*/name",
		"/proteinDatabase/proteinEntry[protein/classification/superfamily]/protein/name",
		"//nosuchtag",
		"/wrongroot/name",
	}
	for _, q := range queries {
		runAll(t, st, tree, q)
	}
}

func TestNestedLoopJoinAgreesWithMerge(t *testing.T) {
	st, tree, err := enginetest.MustBuild(proteinDoc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_ = tree
	q := xpath.MustParse(`//proteinEntry[protein//superfamily="globin"]//title`)
	p, err := translate.Split(ctxFor(st), q)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := Execute(nil, st, planner.Fixed(p), Options{Join: MergeJoin})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Execute(nil, st, planner.Fixed(p), Options{Join: NestedLoopJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !enginetest.StartsEqual(merge.Starts(), nl.Starts()) {
		t.Fatalf("join algorithms disagree: %v vs %v", merge.Starts(), nl.Starts())
	}
	if len(merge.Records) == 0 {
		t.Fatal("expected results")
	}
}

// TestRecursiveDocument exercises self-nested tags, where suffix ranges
// span multiple source paths and descendant joins must not overcount.
func TestRecursiveDocument(t *testing.T) {
	doc := `<list>
	  <item><list><item>deep1</item><item>deep2</item></list></item>
	  <item>shallow</item>
	</list>`
	st, tree, err := enginetest.MustBuild(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, q := range []string{
		"//item",
		"//list//item",
		"//list/item",
		"/list/item/list/item",
		"//item//item",
		"//item[list]",
	} {
		runAll(t, st, tree, q)
	}
}

// TestDifferentialRandom compares every translator against the reference
// evaluator on random documents and random queries.
func TestDifferentialRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(2024))
	p := enginetest.DefaultDocParams()
	for docIdx := 0; docIdx < 12; docIdx++ {
		tree := enginetest.RandomDoc(rnd, p)
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for qIdx := 0; qIdx < 30; qIdx++ {
			runAll(t, st, tree, enginetest.RandomQuery(rnd, p))
		}
		st.Close()
	}
}

func TestEmptyPlanShortCircuits(t *testing.T) {
	st, _, err := enginetest.MustBuild(`<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := translate.Split(ctxFor(st), xpath.MustParse("/a/zzz"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := relstore.NewExecContext()
	res, err := Execute(ctx, st, planner.Fixed(p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatal("expected empty result")
	}
	if ctx.Visited() != 0 {
		t.Fatal("empty plan should not touch the store")
	}
}

func TestVisitedElementsOrdering(t *testing.T) {
	// The paper's core claim: BLAS translators visit fewer elements than
	// the D-labeling baseline on suffix path queries.
	doc := xmltree.New("db")
	for i := 0; i < 50; i++ {
		e := doc.AppendNew("entry")
		p := e.AppendNew("protein")
		p.AppendText("name", "x")
		r := e.AppendNew("ref")
		r.AppendText("name", "y") // names under ref inflate the baseline's name scan
	}
	st, err := core.BuildFromTree(doc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	q := xpath.MustParse("/db/entry/protein/name")
	measure := func(tr translate.Translator) uint64 {
		p, err := tr(ctxFor(st), q)
		if err != nil {
			t.Fatal(err)
		}
		ctx := relstore.NewExecContext()
		res, err := Execute(ctx, st, planner.Fixed(p), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 50 {
			t.Fatalf("got %d results", len(res.Records))
		}
		return ctx.Visited()
	}
	base := measure(translate.Baseline)
	split := measure(translate.Split)
	if split >= base {
		t.Fatalf("split visited %d >= baseline %d", split, base)
	}
	// The suffix path is answered with exactly the matching elements.
	if split != 50 {
		t.Fatalf("split visited %d, want 50", split)
	}
}
