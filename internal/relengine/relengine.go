// Package relengine executes translated plans the way the paper's
// relational engine does (§5.2): each fragment is one indexed selection
// over the SP or SD relation, and fragments are combined with structural
// D-joins. The join operator is a stack-based structural merge join
// (Al-Khalifa et al., "stack-tree" family) that runs in
// O(inputs + output); a nested-loop D-join is provided for the ablation
// benchmark.
package relengine

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/translate"
)

// JoinAlgorithm selects the D-join implementation.
type JoinAlgorithm int

// Join algorithms.
const (
	MergeJoin      JoinAlgorithm = iota // stack-based structural merge join
	NestedLoopJoin                      // quadratic baseline (ablation only)
)

// Options configures execution.
type Options struct {
	Join JoinAlgorithm
}

// Result holds a query's answer.
type Result struct {
	// Records are the return-node bindings, deduplicated, in document
	// order.
	Records []relstore.Record
}

// Starts returns the start positions of the result records.
func (r *Result) Starts() []uint32 {
	out := make([]uint32, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Start
	}
	return out
}

// Execute runs a plan against a store.
func Execute(st *core.Store, p *translate.Plan, opts Options) (*Result, error) {
	if p.Empty() {
		return &Result{}, nil
	}
	// Evaluate every fragment.
	bindings := make([][]relstore.Record, len(p.Fragments))
	for i, f := range p.Fragments {
		recs, err := scanFragment(st, f)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return &Result{}, nil
		}
		bindings[i] = recs
	}

	if len(p.Joins) == 0 {
		return &Result{Records: finalize(bindings[p.Return])}, nil
	}

	// Tuples over the fragments joined so far. cols maps fragment id to
	// tuple column.
	cols := map[int]int{}
	first := p.Joins[0].Anc
	cols[first] = 0
	tuples := make([][]relstore.Record, len(bindings[first]))
	for i, r := range bindings[first] {
		tuples[i] = []relstore.Record{r}
	}

	for _, j := range p.Joins {
		ancCol, ok := cols[j.Anc]
		if !ok {
			return nil, fmt.Errorf("relengine: join order is not a tree (fragment %d not yet bound)", j.Anc)
		}
		var err error
		switch opts.Join {
		case NestedLoopJoin:
			tuples = nestedLoopJoin(tuples, ancCol, bindings[j.Desc], j)
		default:
			tuples, err = structuralMergeJoin(tuples, ancCol, bindings[j.Desc], j)
			if err != nil {
				return nil, err
			}
		}
		cols[j.Desc] = len(cols)
		if len(tuples) == 0 {
			return &Result{}, nil
		}
	}

	retCol, ok := cols[p.Return]
	if !ok {
		return nil, fmt.Errorf("relengine: return fragment %d not joined", p.Return)
	}
	out := make([]relstore.Record, len(tuples))
	for i, t := range tuples {
		out[i] = t[retCol]
	}
	return &Result{Records: finalize(out)}, nil
}

// scanFragment evaluates one fragment's selection plus local predicates.
func scanFragment(st *core.Store, f *translate.Fragment) ([]relstore.Record, error) {
	var its []relstore.Iter
	switch f.Access.Kind {
	case translate.AccessPLabelEq:
		its = append(its, st.SP().ScanPLabelExact(f.Access.Range.Lo))
	case translate.AccessPLabelRange:
		// Range scans cover several plabel runs, each start-sorted; merge
		// them at scan time so the structural joins get sorted input.
		it, err := st.SP().ScanPLabelRangeByStart(f.Access.Range.Lo, f.Access.Range.Hi)
		if err != nil {
			return nil, err
		}
		its = append(its, it)
	case translate.AccessPLabelSet:
		runs := make([]relstore.Iter, 0, len(f.Access.Labels))
		for _, l := range f.Access.Labels {
			runs = append(runs, st.SP().ScanPLabelExact(l))
		}
		it, err := relstore.MergeByStart(runs)
		if err != nil {
			return nil, err
		}
		its = append(its, it)
	case translate.AccessTag:
		its = append(its, st.SD().ScanTag(f.Access.TagID))
	case translate.AccessAll:
		its = append(its, st.SD().ScanStartRange(0, 0))
	default:
		return nil, fmt.Errorf("relengine: unknown access kind %v", f.Access.Kind)
	}
	attrs := attrTagIDs(st, f)
	var out []relstore.Record
	for _, it := range its {
		for it.Next() {
			rec := it.Record()
			if f.Value != nil && rec.Data != *f.Value {
				continue
			}
			if f.LevelEq != 0 && rec.Level != f.LevelEq {
				continue
			}
			if attrs != nil && attrs[rec.TagID] {
				continue
			}
			out = append(out, rec)
		}
		if err := it.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// attrTagIDs returns the attribute tag ids to exclude for wildcard scans
// (XPath * matches elements only), or nil when no filtering is needed.
func attrTagIDs(st *core.Store, f *translate.Fragment) map[uint32]bool {
	if f.Access.Kind != translate.AccessAll {
		return nil
	}
	m := map[uint32]bool{}
	for _, tag := range st.Scheme().Tags() {
		if len(tag) > 0 && tag[0] == '@' {
			if id, ok := st.TagID(tag); ok {
				m[id] = true
			}
		}
	}
	return m
}

// structuralMergeJoin extends each tuple with the descendants of its
// ancCol binding. Both inputs are sorted by start, then merged with a
// stack of open ancestors: amortized linear plus output.
func structuralMergeJoin(tuples [][]relstore.Record, ancCol int, descs []relstore.Record, j translate.Join) ([][]relstore.Record, error) {
	sort.Slice(tuples, func(a, b int) bool { return tuples[a][ancCol].Start < tuples[b][ancCol].Start })
	// Scans clustered by {plabel,start} are only start-sorted per plabel
	// run; order the descendants by start. Records are fat (strings), so
	// sort an index permutation instead of swapping them directly.
	descs = sortedByStart(descs)

	var out [][]relstore.Record
	var stack [][]relstore.Record // open ancestor tuples, outermost first
	ti := 0
	for _, d := range descs {
		// Open all ancestor tuples that start before d.
		for ti < len(tuples) && tuples[ti][ancCol].Start < d.Start {
			stack = append(stack, tuples[ti])
			ti++
		}
		// Close those that ended before d.
		live := stack[:0]
		for _, t := range stack {
			if t[ancCol].End > d.Start {
				live = append(live, t)
			}
		}
		stack = live
		// Every remaining open tuple's interval contains d (intervals of a
		// well-formed document nest, so start < d.start && end > d.start
		// implies end > d.end).
		for _, t := range stack {
			a := t[ancCol]
			if a.End <= d.End {
				// Defensive: ill-nested inputs (possible only with a
				// corrupted store) must not produce false positives.
				continue
			}
			if j.LevelOK(a.Level, d.Level) {
				nt := make([]relstore.Record, len(t)+1)
				copy(nt, t)
				nt[len(t)] = d
				out = append(out, nt)
			}
		}
	}
	return out, nil
}

// nestedLoopJoin is the quadratic D-join used by the ablation benchmark.
func nestedLoopJoin(tuples [][]relstore.Record, ancCol int, descs []relstore.Record, j translate.Join) [][]relstore.Record {
	var out [][]relstore.Record
	for _, t := range tuples {
		a := t[ancCol]
		for _, d := range descs {
			if a.Start < d.Start && a.End > d.End && j.LevelOK(a.Level, d.Level) {
				nt := make([]relstore.Record, len(t)+1)
				copy(nt, t)
				nt[len(t)] = d
				out = append(out, nt)
			}
		}
	}
	return out
}

// sortedByStart returns recs ordered by start position. Already-sorted
// input (the common case: single-plabel and tag scans) is returned as is;
// otherwise an index permutation is sorted and applied in one pass, which
// avoids reflective swaps of the fat record structs.
func sortedByStart(recs []relstore.Record) []relstore.Record {
	sorted := true
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Start > recs[i].Start {
			sorted = false
			break
		}
	}
	if sorted {
		return recs
	}
	idx := make([]int32, len(recs))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return recs[idx[a]].Start < recs[idx[b]].Start })
	out := make([]relstore.Record, len(recs))
	for i, j := range idx {
		out[i] = recs[j]
	}
	return out
}

// finalize deduplicates by start position and sorts into document order.
func finalize(recs []relstore.Record) []relstore.Record {
	if len(recs) == 0 {
		return nil
	}
	recs = sortedByStart(recs)
	out := recs[:1]
	for _, r := range recs[1:] {
		if r.Start != out[len(out)-1].Start {
			out = append(out, r)
		}
	}
	return out
}
