// Package relengine executes physical plans the way the paper's
// relational engine does (§5.2): each fragment is one indexed selection
// over the SP or SD relation, and fragments are combined with structural
// D-joins. The join operator is a stack-based structural merge join
// (Al-Khalifa et al., "stack-tree" family) that runs in
// O(inputs + output); a nested-loop D-join is provided for the ablation
// benchmark.
//
// The engine takes a planner.Physical and honors its order: fragment
// selections run in Physical.Scans order (most selective first under the
// greedy planner) and joins in Physical.Joins order, which the planner
// guarantees is a bound tree. Emptiness terminates execution early — a
// plan the planner proved empty runs zero scans, and an empty scan or
// join intermediate skips everything after it (Result.EarlyTerminated
// reports when that saved work).
//
// Execution is data-parallel where the plan is embarrassingly parallel
// (cf. Sato et al., "Parallelization of XPath Queries using Modern
// XQuery Processors", arXiv:1806.07728): fragment selections are
// independent of each other and run concurrently under a bounded worker
// pool, and the structural merge join partitions its ancestor input by
// interval — descendants fall into exactly one partition's interval
// span, so partitions merge independently. Options.Parallelism bounds
// the pool; 1 recovers the fully sequential engine. Fragment selections
// read through the batched stream layer (core.FragmentStream over
// relstore.BatchIter), which decodes each heap page's records under a
// single pager view.
//
// Per-query statistics accumulate in the relstore.ExecContext threaded
// through every scan, so concurrent Execute calls against one store
// never interfere. When the context carries an obs.Trace, the engine
// additionally reports two wall-time spans on the calling goroutine —
// PhaseScan around the fragment selections and PhaseJoin around the
// D-join pipeline — that tile its execution time; without a trace the
// reporting is a nil check and nothing more.
package relengine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/relstore"
	"repro/internal/translate"
)

// JoinAlgorithm selects the D-join implementation.
type JoinAlgorithm int

// Join algorithms.
const (
	MergeJoin      JoinAlgorithm = iota // stack-based structural merge join
	NestedLoopJoin                      // quadratic baseline (ablation only)
)

// Options configures execution.
type Options struct {
	Join JoinAlgorithm
	// ExecConfig.Parallelism bounds the worker pool used for fragment
	// scans and for partitioned merge joins. 0 selects
	// runtime.GOMAXPROCS(0); 1 runs the engine fully sequentially. The
	// result is identical either way.
	core.ExecConfig
}

// Result holds a query's answer.
type Result struct {
	// Records are the return-node bindings, deduplicated, in document
	// order.
	Records []relstore.Record
	// EarlyTerminated reports that an empty intermediate (a planner
	// proof, an empty fragment scan, or an empty join result) let the
	// engine skip remaining scan or join work.
	EarlyTerminated bool
}

// Starts returns the start positions of the result records.
func (r *Result) Starts() []uint32 {
	out := make([]uint32, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Start
	}
	return out
}

// Execute runs a physical plan against a store. Statistics accumulate
// in ctx (nil discards them). Execute is safe to call concurrently with
// any other reads of the same store, provided each call gets its own
// ctx.
func Execute(ctx *relstore.ExecContext, st *core.Store, p *planner.Physical, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("relengine: %w", err)
	}
	if ctx.BatchControl() == nil {
		ctx.SetBatchControl(opts.BatchController())
	}
	lp := p.Logical
	if p.KnownEmpty || lp.Empty() {
		// A probe-proven empty plan skips every scan and join — zero
		// page reads past planning. A statically empty plan never had
		// work to skip.
		return &Result{EarlyTerminated: p.ProbedEmpty()}, nil
	}
	workers := opts.Workers()
	tr := ctx.Trace()

	// Evaluate every fragment, most selective first.
	scanBegin := tr.Begin()
	bindings, err := scanFragments(ctx, st, lp.Fragments, p.Scans, workers)
	tr.End(obs.PhaseScan, scanBegin)
	if err != nil {
		return nil, err
	}
	for _, b := range bindings {
		if len(b) == 0 {
			// An empty fragment empties the plan (all joins are inner);
			// remaining scans were skipped and all join work is too.
			return &Result{EarlyTerminated: len(p.Joins) > 0 || len(lp.Fragments) > 1}, nil
		}
	}

	joinBegin := tr.Begin()
	defer tr.End(obs.PhaseJoin, joinBegin)

	if len(p.Joins) == 0 {
		return &Result{Records: finalize(bindings[lp.Return])}, nil
	}

	// Tuples over the fragments joined so far. cols maps fragment id to
	// tuple column.
	cols := map[int]int{}
	first := p.Joins[0].Anc
	cols[first] = 0
	tuples := make([][]relstore.Record, len(bindings[first]))
	for i, r := range bindings[first] {
		tuples[i] = []relstore.Record{r}
	}

	for ji, j := range p.Joins {
		ancCol, ok := cols[j.Anc]
		if !ok {
			return nil, fmt.Errorf("relengine: join order is not a tree (fragment %d not yet bound)", j.Anc)
		}
		switch opts.Join {
		case NestedLoopJoin:
			tuples = nestedLoopJoin(tuples, ancCol, bindings[j.Desc], j)
		default:
			tuples = structuralMergeJoin(tuples, ancCol, bindings[j.Desc], j, workers)
		}
		cols[j.Desc] = len(cols)
		if len(tuples) == 0 {
			return &Result{EarlyTerminated: ji < len(p.Joins)-1}, nil
		}
	}

	retCol, ok := cols[lp.Return]
	if !ok {
		return nil, fmt.Errorf("relengine: return fragment %d not joined", lp.Return)
	}
	out := make([]relstore.Record, len(tuples))
	for i, t := range tuples {
		out[i] = t[retCol]
	}
	return &Result{Records: finalize(out)}, nil
}

// scanFragments evaluates all fragment selections in the given order,
// concurrently when the worker budget allows. Fragments are independent
// selections, so this is the embarrassingly-parallel part of every plan
// — but order still matters: the sequential path stops at the first
// empty fragment, so scanning the most selective fragment first (the
// greedy planner's order) skips the expensive scans exactly when a cheap
// one proves the plan empty.
func scanFragments(ctx *relstore.ExecContext, st *core.Store, frags []*translate.Fragment, order []int, workers int) ([][]relstore.Record, error) {
	bindings := make([][]relstore.Record, len(frags))
	if workers <= 1 || len(frags) == 1 {
		for _, i := range order {
			recs, err := scanFragment(ctx, st, frags[i])
			if err != nil {
				return nil, err
			}
			if len(recs) == 0 {
				// Empty selection: the whole plan is empty, skip the rest.
				return bindings, nil
			}
			bindings[i] = recs
		}
		return bindings, nil
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var anyEmpty atomic.Bool
	for _, i := range order {
		wg.Add(1)
		go func(i int, f *translate.Fragment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Best-effort short-circuit: an already-finished empty fragment
			// makes the whole plan empty, so skip scans that have not
			// started yet (mirrors the sequential path's early return).
			if anyEmpty.Load() {
				return
			}
			recs, err := scanFragment(ctx, st, f)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			if len(recs) == 0 {
				anyEmpty.Store(true)
			}
			bindings[i] = recs
		}(i, frags[i])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return bindings, nil
}

// scanFragment evaluates one fragment's selection plus local predicates
// through the shared batched stream layer: records arrive batch-wise
// with one pager view per heap-page run (instead of one per record),
// and P-label range/set selections are merged into document order
// batch-wise as well.
func scanFragment(ctx *relstore.ExecContext, st *core.Store, f *translate.Fragment) ([]relstore.Record, error) {
	fs, err := st.PrepareFragmentStream(ctx, f)
	if err != nil {
		return nil, err
	}
	bi, err := fs.Open(ctx, 0, 0)
	if err != nil {
		return nil, err
	}
	recs, err := relstore.CollectAdaptive(ctx, bi)
	if err != nil {
		return nil, err
	}
	return st.FragmentFilter(f).Apply(recs), nil
}

// Partition thresholds for the parallel merge join: below these input
// sizes the goroutine overhead dominates the merge work.
const (
	minParallelTuples = 64
	minParallelDescs  = 512
)

// structuralMergeJoin extends each tuple with the descendants of its
// ancCol binding. Both inputs are sorted by start, then merged with a
// stack of open ancestors: amortized linear plus output.
//
// With workers > 1 and large-enough inputs, the sorted ancestor tuples
// are split into contiguous chunks and merged concurrently. A descendant
// d joins tuple t iff t.start < d.start < t.end, and every tuple lives
// in exactly one chunk, so giving each chunk the descendant slice whose
// starts fall inside the chunk's interval span [first start, max end)
// reproduces the sequential pairing exactly, with no duplicates.
func structuralMergeJoin(tuples [][]relstore.Record, ancCol int, descs []relstore.Record, j translate.Join, workers int) [][]relstore.Record {
	sort.Slice(tuples, func(a, b int) bool { return tuples[a][ancCol].Start < tuples[b][ancCol].Start })
	// Scans clustered by {plabel,start} are only start-sorted per plabel
	// run; order the descendants by start. Records are fat (strings), so
	// sort an index permutation instead of swapping them directly.
	descs = sortedByStart(descs)

	if workers <= 1 || len(tuples) < minParallelTuples || len(descs) < minParallelDescs {
		return mergeJoinChunk(tuples, ancCol, descs, j)
	}

	chunks := workers
	if chunks > len(tuples)/2 {
		chunks = len(tuples) / 2
	}
	parts := make([][][]relstore.Record, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * len(tuples) / chunks
		hi := (c + 1) * len(tuples) / chunks
		wg.Add(1)
		go func(c int, part [][]relstore.Record) {
			defer wg.Done()
			minStart := part[0][ancCol].Start
			maxEnd := uint32(0)
			for _, t := range part {
				if t[ancCol].End > maxEnd {
					maxEnd = t[ancCol].End
				}
			}
			// Descendant candidates for this chunk: minStart < start < maxEnd.
			from := sort.Search(len(descs), func(i int) bool { return descs[i].Start > minStart })
			to := sort.Search(len(descs), func(i int) bool { return descs[i].Start >= maxEnd })
			parts[c] = mergeJoinChunk(part, ancCol, descs[from:to], j)
		}(c, tuples[lo:hi])
	}
	wg.Wait()

	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([][]relstore.Record, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// mergeJoinChunk runs the stack-based structural merge sweep over
// start-sorted tuples and descendants.
func mergeJoinChunk(tuples [][]relstore.Record, ancCol int, descs []relstore.Record, j translate.Join) [][]relstore.Record {
	var out [][]relstore.Record
	var stack [][]relstore.Record // open ancestor tuples, outermost first
	ti := 0
	for _, d := range descs {
		// Open all ancestor tuples that start before d.
		for ti < len(tuples) && tuples[ti][ancCol].Start < d.Start {
			stack = append(stack, tuples[ti])
			ti++
		}
		// Close those that ended before d.
		live := stack[:0]
		for _, t := range stack {
			if t[ancCol].End > d.Start {
				live = append(live, t)
			}
		}
		stack = live
		// Every remaining open tuple's interval contains d (intervals of a
		// well-formed document nest, so start < d.start && end > d.start
		// implies end > d.end).
		for _, t := range stack {
			a := t[ancCol]
			if a.End <= d.End {
				// Defensive: ill-nested inputs (possible only with a
				// corrupted store) must not produce false positives.
				continue
			}
			if j.LevelOK(a.Level, d.Level) {
				nt := make([]relstore.Record, len(t)+1)
				copy(nt, t)
				nt[len(t)] = d
				out = append(out, nt)
			}
		}
	}
	return out
}

// nestedLoopJoin is the quadratic D-join used by the ablation benchmark.
func nestedLoopJoin(tuples [][]relstore.Record, ancCol int, descs []relstore.Record, j translate.Join) [][]relstore.Record {
	var out [][]relstore.Record
	for _, t := range tuples {
		a := t[ancCol]
		for _, d := range descs {
			if a.Start < d.Start && a.End > d.End && j.LevelOK(a.Level, d.Level) {
				nt := make([]relstore.Record, len(t)+1)
				copy(nt, t)
				nt[len(t)] = d
				out = append(out, nt)
			}
		}
	}
	return out
}

// sortedByStart returns recs ordered by start position. Already-sorted
// input (the common case: single-plabel and tag scans) is returned as is;
// otherwise an index permutation is sorted and applied in one pass, which
// avoids reflective swaps of the fat record structs.
func sortedByStart(recs []relstore.Record) []relstore.Record {
	sorted := true
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Start > recs[i].Start {
			sorted = false
			break
		}
	}
	if sorted {
		return recs
	}
	idx := make([]int32, len(recs))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return recs[idx[a]].Start < recs[idx[b]].Start })
	out := make([]relstore.Record, len(recs))
	for i, j := range idx {
		out[i] = recs[j]
	}
	return out
}

// finalize deduplicates by start position and sorts into document order.
func finalize(recs []relstore.Record) []relstore.Record {
	if len(recs) == 0 {
		return nil
	}
	recs = sortedByStart(recs)
	out := recs[:1]
	for _, r := range recs[1:] {
		if r.Start != out[len(out)-1].Start {
			out = append(out, r)
		}
	}
	return out
}
