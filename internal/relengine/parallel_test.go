package relengine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/planner"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestParallelMatchesSequential runs every translator over random
// documents and queries at several parallelism levels; results must be
// byte-identical to the sequential engine.
func TestParallelMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	p := enginetest.DefaultDocParams()
	for docIdx := 0; docIdx < 4; docIdx++ {
		tree := enginetest.RandomDoc(rnd, p)
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
		for qIdx := 0; qIdx < 20; qIdx++ {
			query := enginetest.RandomQuery(rnd, p)
			parsed := xpath.MustParse(query)
			for _, trName := range []string{"dlabel", "split", "pushup", "unfold"} {
				tr, _ := translate.ByName(trName)
				plan, err := tr(ctx, parsed)
				if err != nil {
					t.Fatalf("%s/%s: %v", query, trName, err)
				}
				seq, err := Execute(nil, st, planner.Fixed(plan), Options{ExecConfig: core.ExecConfig{Parallelism: 1}})
				if err != nil {
					t.Fatalf("%s/%s sequential: %v", query, trName, err)
				}
				for _, par := range []int{2, 8} {
					got, err := Execute(nil, st, planner.Fixed(plan), Options{ExecConfig: core.ExecConfig{Parallelism: par}})
					if err != nil {
						t.Fatalf("%s/%s par=%d: %v", query, trName, par, err)
					}
					if !enginetest.StartsEqual(got.Starts(), seq.Starts()) {
						t.Fatalf("%s [%s] par=%d: %d results != sequential %d",
							query, trName, par, len(got.Records), len(seq.Records))
					}
				}
			}
		}
		st.Close()
	}
}

// TestPartitionedMergeJoinLargeInput forces the ancestor-interval
// partitioning path (inputs above minParallelTuples/minParallelDescs)
// and checks the join against both the sequential engine and the naive
// reference evaluator.
func TestPartitionedMergeJoinLargeInput(t *testing.T) {
	// 200 sections × 8 items (with nested notes) → 200 ancestors and
	// 1600+ descendants: well past both parallel thresholds.
	doc := xmltree.New("db")
	for s := 0; s < 200; s++ {
		sec := doc.AppendNew("section")
		for i := 0; i < 8; i++ {
			item := sec.AppendNew("item")
			item.AppendText("note", fmt.Sprintf("n%d", (s+i)%5))
		}
	}
	st, err := core.BuildFromTree(doc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}

	for _, query := range []string{"//section//note", "/db//item/note", "//section[item]//note"} {
		want, err := enginetest.EvalStarts(doc, query)
		if err != nil {
			t.Fatal(err)
		}
		for _, trName := range []string{"dlabel", "split"} {
			tr, _ := translate.ByName(trName)
			plan, err := tr(ctx, xpath.MustParse(query))
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Execute(nil, st, planner.Fixed(plan), Options{ExecConfig: core.ExecConfig{Parallelism: 1}})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Execute(nil, st, planner.Fixed(plan), Options{ExecConfig: core.ExecConfig{Parallelism: 4}})
			if err != nil {
				t.Fatal(err)
			}
			if !enginetest.StartsEqual(seq.Starts(), want) {
				t.Fatalf("%s [%s] sequential: %d results, reference %d", query, trName, len(seq.Records), len(want))
			}
			if !enginetest.StartsEqual(par.Starts(), want) {
				t.Fatalf("%s [%s] parallel: %d results, reference %d", query, trName, len(par.Records), len(want))
			}
		}
	}
}

// TestStructuralMergeJoinChunking exercises the partitioned join
// directly with synthetic nested intervals, comparing every worker count
// against the sequential sweep.
func TestStructuralMergeJoinChunking(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	// 300 disjoint ancestor intervals, each containing a random number of
	// descendants, plus stray descendants outside any ancestor.
	var tuples [][]relstore.Record
	var descs []relstore.Record
	pos := uint32(1)
	for a := 0; a < 300; a++ {
		ancStart := pos
		pos++
		n := rnd.Intn(8)
		for d := 0; d < n; d++ {
			descs = append(descs, relstore.Record{Start: pos, End: pos + 1, Level: 3, TagID: 2})
			pos += 2
		}
		tuples = append(tuples, []relstore.Record{{Start: ancStart, End: pos, Level: 2, TagID: 1}})
		pos++
		if a%7 == 0 { // a descendant between ancestors: matches nothing
			descs = append(descs, relstore.Record{Start: pos, End: pos + 1, Level: 3, TagID: 2})
			pos += 2
		}
	}
	// Shuffle desc order: the join must sort.
	rnd.Shuffle(len(descs), func(i, j int) { descs[i], descs[j] = descs[j], descs[i] })

	j := translate.Join{Anc: 0, Desc: 1, Gap: 1}
	clone := func(ts [][]relstore.Record) [][]relstore.Record {
		out := make([][]relstore.Record, len(ts))
		for i, t := range ts {
			out[i] = append([]relstore.Record(nil), t...)
		}
		return out
	}
	want := structuralMergeJoin(clone(tuples), 0, append([]relstore.Record(nil), descs...), j, 1)
	if len(want) == 0 {
		t.Fatal("sequential join found nothing — test data broken")
	}
	key := func(t []relstore.Record) [2]uint32 { return [2]uint32{t[0].Start, t[1].Start} }
	wantSet := map[[2]uint32]bool{}
	for _, tp := range want {
		wantSet[key(tp)] = true
	}
	for _, workers := range []int{2, 3, 8, 16} {
		got := structuralMergeJoin(clone(tuples), 0, append([]relstore.Record(nil), descs...), j, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for _, tp := range got {
			if !wantSet[key(tp)] {
				t.Fatalf("workers=%d: unexpected pair %v", workers, key(tp))
			}
		}
	}
}
