package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xpath"
)

// Harness owns the stores for the experiment suite, building and caching
// one per (data set, scale factor).
type Harness struct {
	// Repeats is the number of cold-cache repetitions per measurement;
	// the paper repeats 10 times and averages after discarding min and
	// max (§5.1). Values below 3 skip the discard.
	Repeats int
	// PoolPages is the buffer pool size per relation (0 = pager default).
	PoolPages int
	// Seed feeds the data generators.
	Seed int64
	// Parallelism is handed to both engines (0 = GOMAXPROCS,
	// 1 = sequential, the paper's original setting).
	Parallelism int
	// NoReorder skips the physical planner's greedy ordering, running the
	// translator's fixed order — the baseline side of the plan-quality
	// figure. Default false matches production (greedy).
	NoReorder bool

	stores       map[string]*core.Store
	measurements []Measurement
}

// New returns a harness with the paper's measurement defaults.
func New() *Harness {
	return &Harness{Repeats: 3, Seed: 1, stores: map[string]*core.Store{}}
}

// Close releases every cached store.
func (h *Harness) Close() {
	for k, st := range h.stores {
		_ = st.Close()
		delete(h.stores, k)
	}
}

// Store returns the store for a data set at a scale factor, building it
// on first use.
func (h *Harness) Store(dataset string, factor int) (*core.Store, error) {
	key := fmt.Sprintf("%s@%d", dataset, factor)
	if st, ok := h.stores[key]; ok {
		return st, nil
	}
	tree, err := datagen.ByName(dataset, datagen.Options{Seed: h.Seed, Factor: factor})
	if err != nil {
		return nil, err
	}
	st, err := core.BuildFromTree(tree, core.Options{PoolPages: h.PoolPages})
	if err != nil {
		return nil, err
	}
	h.stores[key] = st
	return st, nil
}

// Measurement is one (query, translator, engine) data point.
type Measurement struct {
	Query       string
	Dataset     string
	Factor      int
	Translator  string
	Engine      string // "relational" or "twig"
	Parallelism int    // effective worker count (GOMAXPROCS resolved)
	Elapsed     time.Duration
	Visited     uint64 // elements read (Figs. 14-18 (b) panels)
	PageReads   uint64 // buffer pool requests (incl. planner probes)
	PageMisses  uint64 // disk accesses
	Results     int
	Joins       int
}

// Record appends a measurement to the harness's trajectory log. Run and
// Overlap call it for every data point they produce, so a figure's
// measurements can be exported (see Trajectory) after its table prints.
func (h *Harness) Record(m Measurement) { h.measurements = append(h.measurements, m) }

// Measurements returns every measurement recorded since the last reset,
// in execution order.
func (h *Harness) Measurements() []Measurement { return h.measurements }

// ResetMeasurements clears the trajectory log, typically between
// figures.
func (h *Harness) ResetMeasurements() { h.measurements = nil }

// Run executes one measurement: repeated cold-cache executions, averaged
// with min and max discarded (when Repeats >= 3), exactly as §5.1
// describes.
func (h *Harness) Run(dataset string, factor int, queryName, query, translator, engine string, stripValues bool) (Measurement, error) {
	st, err := h.Store(dataset, factor)
	if err != nil {
		return Measurement{}, err
	}
	q, err := xpath.Parse(query)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s: %w", queryName, err)
	}
	if stripValues {
		q = StripValues(q)
	}
	tr, err := translate.ByName(translator)
	if err != nil {
		return Measurement{}, err
	}
	plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, q)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: translate %s/%s: %w", queryName, translator, err)
	}

	repeats := h.Repeats
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, 0, repeats)
	cfg := core.ExecConfig{Parallelism: h.Parallelism}
	m := Measurement{
		Query: queryName, Dataset: dataset, Factor: factor,
		Translator: translator, Engine: engine, Joins: plan.NumJoins(),
		Parallelism: cfg.Workers(),
	}
	for i := 0; i < repeats; i++ {
		if err := st.DropCaches(); err != nil {
			return Measurement{}, err
		}
		ctx := relstore.NewExecContext()
		begin := time.Now()
		// Physical planning runs inside the cold-cache window so the
		// planner's probe page reads are part of the measured cost.
		phys, err := planner.Plan(ctx, st, plan, planner.Options{NoReorder: h.NoReorder})
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: plan %s/%s: %w", queryName, translator, err)
		}
		var results int
		switch engine {
		case "twig":
			res, err := twig.Execute(ctx, st, phys, cfg)
			if err != nil {
				return Measurement{}, fmt.Errorf("bench: %s/%s twig: %w", queryName, translator, err)
			}
			results = len(res.Records)
		default:
			res, err := relengine.Execute(ctx, st, phys, relengine.Options{ExecConfig: cfg})
			if err != nil {
				return Measurement{}, fmt.Errorf("bench: %s/%s relational: %w", queryName, translator, err)
			}
			results = len(res.Records)
		}
		times = append(times, time.Since(begin))
		m.Visited = ctx.Visited()
		m.PageReads = ctx.PageReads()
		m.PageMisses = ctx.PageMisses()
		m.Results = results
	}
	m.Elapsed = trimmedMean(times)
	h.Record(m)
	return m, nil
}

// trimmedMean averages after discarding the minimum and maximum (with 3+
// samples), following §5.1.
func trimmedMean(ts []time.Duration) time.Duration {
	if len(ts) == 0 {
		return 0
	}
	if len(ts) < 3 {
		var sum time.Duration
		for _, t := range ts {
			sum += t
		}
		return sum / time.Duration(len(ts))
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var sum time.Duration
	for _, t := range ts[1 : len(ts)-1] {
		sum += t
	}
	return sum / time.Duration(len(ts)-2)
}
