package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func sampleMeasurement() Measurement {
	return Measurement{
		Query: "QS1", Dataset: "shakespeare", Factor: 1,
		Translator: "pushup", Engine: "relational", Parallelism: 1,
		Elapsed: 42 * time.Microsecond, Visited: 100, PageMisses: 7,
		Results: 10, Joins: 0,
	}
}

// TestTrajectoryRoundTrip writes a trajectory and validates the file
// the way CI does, then checks the JSON carries the documented fields.
func TestTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := NewTrajectory("overlap")
	tr.Add(sampleMeasurement())
	m2 := sampleMeasurement()
	m2.Engine = "twig"
	m2.Parallelism = 4
	tr.Add(m2)

	path, err := tr.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_overlap.json" {
		t.Errorf("wrote %s, want BENCH_overlap.json", path)
	}
	if err := ValidateTrajectoryFile(path); err != nil {
		t.Fatalf("freshly written trajectory fails validation: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "figure", "git_rev", "gomaxprocs", "goos", "goarch", "records"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("trajectory JSON missing key %q", key)
		}
	}
	var got Trajectory
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != TrajectorySchema || got.Figure != "overlap" {
		t.Errorf("schema/figure = %q/%q", got.Schema, got.Figure)
	}
	if got.GOMAXPROCS != runtime.GOMAXPROCS(0) || got.GOOS != runtime.GOOS {
		t.Errorf("environment stamp = %d/%s", got.GOMAXPROCS, got.GOOS)
	}
	if len(got.Records) != 2 || got.Records[0].NSPerOp != 42000 || got.Records[1].Parallelism != 4 {
		t.Errorf("records round-tripped wrong: %+v", got.Records)
	}
}

// TestTrajectoryValidateRejects enumerates the malformed shapes the CI
// gate must catch.
func TestTrajectoryValidateRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := NewTrajectory("13")
	good.Add(sampleMeasurement())
	goodJSON, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"truncated":     string(goodJSON[:len(goodJSON)/2]),
		"not JSON":      "ns/op 12345",
		"wrong schema":  strings.Replace(string(goodJSON), TrajectorySchema, "blas-bench-trajectory/v0", 1),
		"no records":    `{"schema":"` + TrajectorySchema + `","figure":"13","git_rev":"unknown","gomaxprocs":4,"goos":"linux","goarch":"amd64","records":[]}`,
		"unknown field": strings.Replace(string(goodJSON), `"figure"`, `"surprise":1,"figure"`, 1),
		"bad engine":    strings.Replace(string(goodJSON), `"relational"`, `"vectorized"`, 1),
		"zero ns_per_op": strings.Replace(string(goodJSON),
			`"ns_per_op":42000`, `"ns_per_op":0`, 1),
	}
	for name, content := range cases {
		path := write(strings.ReplaceAll(name, " ", "_")+".json", content)
		if err := ValidateTrajectoryFile(path); err == nil {
			t.Errorf("%s trajectory passed validation", name)
		}
	}

	// WriteFile itself must refuse a malformed trajectory.
	empty := NewTrajectory("13")
	if _, err := empty.WriteFile(dir); err == nil {
		t.Error("WriteFile accepted a trajectory with no records")
	}
}

// TestHarnessRecordsMeasurements checks Run feeds the trajectory log
// with resolved parallelism.
func TestHarnessRecordsMeasurements(t *testing.T) {
	h := New()
	h.Repeats = 1
	h.Parallelism = 0 // GOMAXPROCS, must resolve to a concrete count
	defer h.Close()

	m, err := h.Run("shakespeare", 1, "QS1", Fig10Queries["QS1"], "pushup", "relational", false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("parallelism = %d, want resolved GOMAXPROCS %d", m.Parallelism, runtime.GOMAXPROCS(0))
	}
	recs := h.Measurements()
	if len(recs) != 1 || recs[0].Query != "QS1" || recs[0].Elapsed != m.Elapsed {
		t.Fatalf("measurement log = %+v, want the one Run result", recs)
	}

	tr := NewTrajectory("smoke")
	for _, rec := range recs {
		tr.Add(rec)
	}
	if _, err := tr.WriteFile(t.TempDir()); err != nil {
		t.Fatalf("harness measurements do not form a valid trajectory: %v", err)
	}

	h.ResetMeasurements()
	if len(h.Measurements()) != 0 {
		t.Error("ResetMeasurements left measurements behind")
	}
}
