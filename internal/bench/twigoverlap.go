package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xpath"
)

// TwigOverlap runs one cold-cache twig execution at the given
// parallelism and returns the result's start positions, so callers can
// assert cross-parallelism equality the way BenchmarkScanOverlap checks
// its checksum. It is the engine-level analogue of ScanOverlap: with
// P > 1 every stream's prefetcher and the partitioned sweep overlap
// backing-store misses that a sequential sweep pays serially.
func TwigOverlap(st *core.Store, plan *translate.Plan, parallelism int) ([]uint32, error) {
	if err := st.DropCaches(); err != nil {
		return nil, err
	}
	res, err := twig.Execute(nil, st, planner.Fixed(plan), core.ExecConfig{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	return res.Starts(), nil
}

// Overlap prints a P=1 versus P=GOMAXPROCS comparison for the selected
// engine ("relational", "twig" or "both") on the tree queries QA2/QA3 at
// the given scale factor — the workload behind `blasbench -engine`.
// Every measurement is cold-cache and repeated h.Repeats times (trimmed
// mean); the parallel run's result set is verified identical to the
// sequential one before anything is printed.
func (h *Harness) Overlap(w io.Writer, engine string, factor int) error {
	engines, err := overlapEngines(engine)
	if err != nil {
		return err
	}
	st, err := h.Store("auction", factor)
	if err != nil {
		return err
	}
	maxP := runtime.GOMAXPROCS(0)
	fmt.Fprintf(w, "Engine overlap: auction x%d, P=1 vs P=%d (cold cache, trimmed mean of %d)\n",
		factor, maxP, h.Repeats)
	fmt.Fprintf(w, "%-8s %-10s %-6s %12s %12s %8s\n", "query", "engine", "tr", "P=1", fmt.Sprintf("P=%d", maxP), "speedup")
	for _, qn := range []string{"QA2", "QA3"} {
		plan, err := overlapPlan(st, qn)
		if err != nil {
			return err
		}
		for _, eng := range engines {
			seq, seqStarts, err := h.overlapMeasure(st, plan, qn, eng, factor, 1)
			if err != nil {
				return err
			}
			par, parStarts, err := h.overlapMeasure(st, plan, qn, eng, factor, maxP)
			if err != nil {
				return err
			}
			if !startsEqual(seqStarts, parStarts) {
				return fmt.Errorf("bench: %s/%s: parallel result (%d) != sequential (%d)",
					qn, eng, len(parStarts), len(seqStarts))
			}
			h.Record(seq)
			h.Record(par)
			speedup := float64(seq.Elapsed) / float64(par.Elapsed)
			fmt.Fprintf(w, "%-8s %-10s %-6s %12s %12s %7.2fx\n", qn, eng, "pushup", seq.Elapsed, par.Elapsed, speedup)
		}
	}
	return nil
}

func overlapEngines(engine string) ([]string, error) {
	switch engine {
	case "", "both":
		return []string{"relational", "twig"}, nil
	case "relational", "twig":
		return []string{engine}, nil
	default:
		return nil, fmt.Errorf("bench: unknown engine %q (want relational, twig or both)", engine)
	}
}

func overlapPlan(st *core.Store, queryName string) (*translate.Plan, error) {
	tr, err := translate.ByName("pushup")
	if err != nil {
		return nil, err
	}
	q := xpath.MustParse(Fig10Queries[queryName])
	return tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, StripValues(q))
}

// overlapMeasure times repeated cold-cache executions of plan on one
// engine at one parallelism, returning the full measurement (trimmed
// mean latency plus the last repetition's execution statistics) and the
// result starts.
func (h *Harness) overlapMeasure(st *core.Store, plan *translate.Plan, queryName, engine string, factor, parallelism int) (Measurement, []uint32, error) {
	repeats := h.Repeats
	if repeats < 1 {
		repeats = 1
	}
	m := Measurement{
		Query: queryName, Dataset: "auction", Factor: factor,
		Translator: "pushup", Engine: engine, Joins: plan.NumJoins(),
		Parallelism: parallelism,
	}
	var starts []uint32
	times := make([]time.Duration, 0, repeats)
	// Fixed order on purpose: this figure isolates parallelism, so the
	// scan/join order must not vary with the planner's estimates.
	phys := planner.Fixed(plan)
	for i := 0; i < repeats; i++ {
		if err := st.DropCaches(); err != nil {
			return Measurement{}, nil, err
		}
		ctx := relstore.NewExecContext()
		begin := time.Now()
		switch engine {
		case "twig":
			res, err := twig.Execute(ctx, st, phys, core.ExecConfig{Parallelism: parallelism})
			if err != nil {
				return Measurement{}, nil, err
			}
			starts = res.Starts()
		default:
			res, err := relengine.Execute(ctx, st, phys, relengine.Options{ExecConfig: core.ExecConfig{Parallelism: parallelism}})
			if err != nil {
				return Measurement{}, nil, err
			}
			starts = res.Starts()
		}
		times = append(times, time.Since(begin))
		m.Visited = ctx.Visited()
		m.PageReads = ctx.PageReads()
		m.PageMisses = ctx.PageMisses()
		m.Results = len(starts)
	}
	m.Elapsed = trimmedMean(times)
	return m, starts, nil
}

func startsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
