package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
)

// TrajectorySchema identifies the BENCH_<figure>.json format. Bump the
// suffix on any incompatible change so downstream tooling comparing
// trajectories across commits can refuse mixed versions.
const TrajectorySchema = "blas-bench-trajectory/v1"

// TrajectoryRecord is one measurement in machine-readable form.
type TrajectoryRecord struct {
	Query       string `json:"query"`
	Dataset     string `json:"dataset"`
	Factor      int    `json:"factor"`
	Translator  string `json:"translator"`
	Engine      string `json:"engine"`
	Parallelism int    `json:"parallelism"`
	NSPerOp     int64  `json:"ns_per_op"`
	Visited     uint64 `json:"visited_elements"`
	PageReads   uint64 `json:"page_reads"`
	PageMisses  uint64 `json:"page_misses"`
	Results     int    `json:"results"`
	Joins       int    `json:"joins"`
}

// Trajectory is the persisted form of one figure's benchmark run: the
// measurements plus enough environment (git revision, GOMAXPROCS,
// platform) to compare the numbers across commits and machines. CI
// archives one BENCH_<figure>.json per run, giving the repository a
// performance trajectory over its history.
type Trajectory struct {
	Schema     string             `json:"schema"`
	Figure     string             `json:"figure"`
	GitRev     string             `json:"git_rev"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Records    []TrajectoryRecord `json:"records"`
}

// NewTrajectory returns an empty trajectory for one figure, stamped
// with the current environment.
func NewTrajectory(figure string) *Trajectory {
	return &Trajectory{
		Schema:     TrajectorySchema,
		Figure:     figure,
		GitRev:     gitRevision(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// gitRevision reads the vcs revision stamped into the binary at build
// time; "unknown" when built outside a checkout or with -buildvcs=off.
func gitRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// Add appends one measurement.
func (t *Trajectory) Add(m Measurement) {
	t.Records = append(t.Records, TrajectoryRecord{
		Query:       m.Query,
		Dataset:     m.Dataset,
		Factor:      m.Factor,
		Translator:  m.Translator,
		Engine:      m.Engine,
		Parallelism: m.Parallelism,
		NSPerOp:     m.Elapsed.Nanoseconds(),
		Visited:     m.Visited,
		PageReads:   m.PageReads,
		PageMisses:  m.PageMisses,
		Results:     m.Results,
		Joins:       m.Joins,
	})
}

// WriteFile writes the trajectory to dir as BENCH_<figure>.json and
// returns the path. The write is atomic (temp file + rename) so a
// crashed run never leaves a half-written trajectory for CI to archive.
func (t *Trajectory) WriteFile(dir string) (string, error) {
	if err := t.validate(); err != nil {
		return "", fmt.Errorf("bench: refusing to write trajectory: %w", err)
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, "BENCH_"+t.Figure+".json")
	tmp, err := os.CreateTemp(dir, ".bench-*.json")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// validate checks the invariants every well-formed trajectory satisfies
// — shared by WriteFile (refuse to produce garbage) and
// ValidateTrajectoryFile (refuse to archive it).
func (t *Trajectory) validate() error {
	if t.Schema != TrajectorySchema {
		return fmt.Errorf("schema %q, want %q", t.Schema, TrajectorySchema)
	}
	if t.Figure == "" {
		return fmt.Errorf("empty figure name")
	}
	if t.GOMAXPROCS < 1 {
		return fmt.Errorf("gomaxprocs %d < 1", t.GOMAXPROCS)
	}
	if t.GitRev == "" {
		return fmt.Errorf("empty git_rev (use \"unknown\" when not built from a checkout)")
	}
	if len(t.Records) == 0 {
		return fmt.Errorf("no records")
	}
	for i, r := range t.Records {
		switch {
		case r.Query == "" || r.Dataset == "":
			return fmt.Errorf("record %d: empty query or dataset", i)
		case r.Engine != "relational" && r.Engine != "twig":
			return fmt.Errorf("record %d: unknown engine %q", i, r.Engine)
		case r.Translator == "":
			return fmt.Errorf("record %d: empty translator", i)
		case r.Parallelism < 1:
			return fmt.Errorf("record %d: parallelism %d < 1", i, r.Parallelism)
		case r.NSPerOp <= 0:
			return fmt.Errorf("record %d: ns_per_op %d <= 0", i, r.NSPerOp)
		case r.Results < 0 || r.Joins < 0:
			return fmt.Errorf("record %d: negative results or joins", i)
		}
	}
	return nil
}

// ValidateTrajectoryFile parses and validates one BENCH_*.json file,
// rejecting unknown fields, schema mismatches and malformed records —
// the CI gate that keeps broken trajectories out of the archive.
func ValidateTrajectoryFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var t Trajectory
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := t.validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
