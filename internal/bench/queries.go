// Package bench reproduces the paper's evaluation (§5): every figure's
// workload, parameter sweep and report format. cmd/blasbench and the
// repository's bench_test.go are thin wrappers over this package.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/xpath"
)

// The query sets of Fig. 10. Names follow the paper: QXY where X is the
// data set (S, P, A) and Y the query type (1 = suffix path, 2 = path with
// descendant axis, 3 = tree query).
var Fig10Queries = map[string]string{
	"QS1": "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
	"QS2": "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR",
	"QS3": `/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`,
	"QP1": "/ProteinDatabase/ProteinEntry/protein/name",
	"QP2": `/ProteinDatabase/ProteinEntry//authors/author="Daniel, M."`,
	"QP3": "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name",
	"QA1": "//category/description/parlist/listitem",
	"QA2": "/site/regions//item/description",
	"QA3": "/site/regions/asia/item[shipping]/description",
}

// XMark benchmark queries for Fig. 15. The paper runs XMark's Q1-Q6
// without Q3 (positional predicates are outside the twig engines'
// language) and strips value predicates (§5.3.1); these are the
// structural skeletons of those queries over the Auction schema.
var Fig15Queries = map[string]string{
	"Q1": "/site/people/person/name",
	"Q2": "/site/open_auctions/open_auction/bidder/increase",
	"Q4": "/site/closed_auctions/closed_auction[annotation]/price",
	"Q5": "/site/closed_auctions/closed_auction/price",
	"Q6": "/site/regions//item",
}

// QueryOrder returns query names in the paper's presentation order.
func QueryOrder(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DatasetOf maps a Fig. 10 query name to its data set.
func DatasetOf(query string) (string, error) {
	if len(query) < 2 {
		return "", fmt.Errorf("bench: bad query name %q", query)
	}
	switch query[1] {
	case 'S':
		return "shakespeare", nil
	case 'P':
		return "protein", nil
	case 'A', '1', '2', '4', '5', '6':
		return "auction", nil
	}
	return "", fmt.Errorf("bench: bad query name %q", query)
}

// StripValues removes every value predicate from a query, as the paper
// does for the twig-join experiments (§5.3.1: "we removed value
// predicates from the queries").
func StripValues(q xpath.Query) xpath.Query {
	c := q.Clone()
	var walk func(n *xpath.Node)
	walk = func(n *xpath.Node) {
		if n == nil {
			return
		}
		n.Value = nil
		for _, b := range n.Branches {
			walk(b)
		}
		walk(n.Next)
	}
	walk(c.Root)
	return c
}
