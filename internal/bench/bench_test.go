package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/xpath"
)

func TestDatasetOf(t *testing.T) {
	cases := map[string]string{
		"QS1": "shakespeare", "QP2": "protein", "QA3": "auction",
		"Q1": "auction", "Q6": "auction",
	}
	for q, want := range cases {
		got, err := DatasetOf(q)
		if err != nil || got != want {
			t.Errorf("DatasetOf(%s) = %s, %v", q, got, err)
		}
	}
	if _, err := DatasetOf(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := DatasetOf("QX9"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestStripValues(t *testing.T) {
	q := xpath.MustParse(`/a/b[c="x" and d]/e="y"`)
	s := StripValues(q)
	var count int
	var walk func(n *xpath.Node)
	walk = func(n *xpath.Node) {
		if n == nil {
			return
		}
		if n.Value != nil {
			count++
		}
		for _, b := range n.Branches {
			walk(b)
		}
		walk(n.Next)
	}
	walk(s.Root)
	if count != 0 {
		t.Fatalf("%d values remain", count)
	}
	// Original untouched.
	if q.Root.Next.Branches[0].Value == nil {
		t.Fatal("original mutated")
	}
}

func TestAllQueriesParse(t *testing.T) {
	for n, q := range Fig10Queries {
		if _, err := xpath.Parse(q); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	for n, q := range Fig15Queries {
		if _, err := xpath.Parse(q); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestRunProducesConsistentResults(t *testing.T) {
	h := New()
	h.Repeats = 1
	defer h.Close()

	// The same query must return the same result count under every
	// translator and engine.
	for _, qn := range []string{"QS1", "QS3", "QA1"} {
		ds, _ := DatasetOf(qn)
		var results = -1
		for _, tr := range []string{"dlabel", "split", "pushup", "unfold"} {
			m, err := h.Run(ds, 1, qn, Fig10Queries[qn], tr, "relational", false)
			if err != nil {
				t.Fatalf("%s/%s: %v", qn, tr, err)
			}
			if results == -1 {
				results = m.Results
			} else if m.Results != results {
				t.Fatalf("%s/%s: %d results, want %d", qn, tr, m.Results, results)
			}
			if m.Results == 0 {
				t.Fatalf("%s/%s returned nothing", qn, tr)
			}
		}
		for _, tr := range []string{"dlabel", "split", "pushup"} {
			m, err := h.Run(ds, 1, qn, Fig10Queries[qn], tr, "twig", false)
			if err != nil {
				t.Fatalf("%s/%s twig: %v", qn, tr, err)
			}
			if m.Results != results {
				t.Fatalf("%s/%s twig: %d results, want %d", qn, tr, m.Results, results)
			}
		}
	}
}

// TestPaperEffectsHold asserts the paper's headline findings on the
// harness itself: BLAS translators visit fewer elements than D-labeling,
// and suffix path queries need no joins.
func TestPaperEffectsHold(t *testing.T) {
	h := New()
	h.Repeats = 1
	defer h.Close()

	// Suffix path query: split plan has no joins; D-labeling has l-1.
	mSplit, err := h.Run("shakespeare", 1, "QS1", Fig10Queries["QS1"], "split", "relational", false)
	if err != nil {
		t.Fatal(err)
	}
	if mSplit.Joins != 0 {
		t.Fatalf("split joins on QS1 = %d", mSplit.Joins)
	}
	mBase, err := h.Run("shakespeare", 1, "QS1", Fig10Queries["QS1"], "dlabel", "relational", false)
	if err != nil {
		t.Fatal(err)
	}
	if mBase.Joins != 5 {
		t.Fatalf("baseline joins on QS1 = %d", mBase.Joins)
	}
	if mSplit.Visited >= mBase.Visited {
		t.Fatalf("split visited %d >= baseline %d", mSplit.Visited, mBase.Visited)
	}
	// Fig. 16(b) effect: on the twig engine the gap persists.
	tSplit, err := h.Run("auction", 1, "QA1", Fig10Queries["QA1"], "split", "twig", true)
	if err != nil {
		t.Fatal(err)
	}
	tBase, err := h.Run("auction", 1, "QA1", Fig10Queries["QA1"], "dlabel", "twig", true)
	if err != nil {
		t.Fatal(err)
	}
	if tSplit.Visited >= tBase.Visited {
		t.Fatalf("twig split read %d >= baseline %d", tSplit.Visited, tBase.Visited)
	}
}

func TestFigureRunnersProduceOutput(t *testing.T) {
	h := New()
	h.Repeats = 1
	defer h.Close()

	var buf bytes.Buffer
	if err := h.Fig11(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "π_") || !strings.Contains(buf.String(), "unfold") {
		t.Fatalf("Fig11 output:\n%s", buf.String())
	}

	buf.Reset()
	if err := h.Fig12(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Shakespeare", "Nodes", "Depth"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Fig12 missing %s:\n%s", want, buf.String())
		}
	}
}

func TestTrimmedMean(t *testing.T) {
	got := trimmedMean([]time.Duration{10, 100, 40}) // middle value only
	if got != 40 {
		t.Fatalf("trimmed mean = %d", got)
	}
	got = trimmedMean([]time.Duration{10, 20})
	if got != 15 {
		t.Fatalf("mean of two = %d", got)
	}
	if trimmedMean(nil) != 0 {
		t.Fatal("empty mean")
	}
}
