package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/pager"
	"repro/internal/relstore"
	"repro/internal/uint128"
)

// DecodeFig measures the batched read path on the two heap page formats
// — the legacy slotted layout (format 1) and the columnar
// delta-compressed layout (format 2) — over the integration corpus's
// relations. Each side rebuilds the same records in its format, then
// drives the production cluster scans (ScanPLabelExactBatch over every
// distinct P-label on SP, ScanTagBatch over every distinct tag on SD)
// cold-cache, reporting decode throughput (records/s) and page reads.
// Decoded streams are verified identical between formats before any
// number prints. The format is encoded in the trajectory's translator
// field ("legacy" / "columnar") so BENCH_decode.json flows through the
// existing schema unchanged.
func (h *Harness) DecodeFig(w io.Writer) error {
	st, err := h.Store("auction", 1)
	if err != nil {
		return err
	}
	drain := relstore.NewExecContext()
	spRecs, err := relstore.Collect(st.SP().ScanAll(drain))
	if err != nil {
		return err
	}
	sdRecs, err := relstore.Collect(st.SD().ScanAll(drain))
	if err != nil {
		return err
	}

	repeats := h.Repeats
	if repeats < 1 {
		repeats = 1
	}
	fmt.Fprintf(w, "Batched decode: legacy (slotted) vs columnar heap pages (cold cache, best of %d)\n", repeats)
	fmt.Fprintf(w, "%-10s %12s %12s %14s %12s\n", "format", "records", "elapsed", "records/s", "page reads")

	type side struct {
		name   string
		format int
	}
	var decoded [2][]relstore.Record
	var ms [2]Measurement
	for i, s := range []side{{"legacy", relstore.FormatLegacy}, {"columnar", relstore.FormatColumnar}} {
		m, recs, err := h.decodeMeasure(s.name, s.format, spRecs, sdRecs, repeats)
		if err != nil {
			return err
		}
		decoded[i], ms[i] = recs, m
	}
	if err := sameRecords(decoded[0], decoded[1]); err != nil {
		return fmt.Errorf("bench: decode outputs differ between formats: %w", err)
	}
	for _, m := range ms {
		h.Record(m)
		rate := float64(m.Results) / m.Elapsed.Seconds()
		fmt.Fprintf(w, "%-10s %12d %12s %14.0f %12d\n", m.Translator, m.Results, m.Elapsed, rate, m.PageReads)
	}
	if ms[0].Elapsed > 0 && ms[1].Elapsed > 0 {
		fmt.Fprintf(w, "columnar: %.2fx decode throughput, %+d page reads vs legacy\n",
			float64(ms[0].Elapsed)/float64(ms[1].Elapsed), int64(ms[1].PageReads)-int64(ms[0].PageReads))
	}
	return nil
}

// decodeMeasure rebuilds both relations in one page format inside
// in-memory paged files and times full cluster-scan drains of them.
func (h *Harness) decodeMeasure(name string, format int, spRecs, sdRecs []relstore.Record, repeats int) (Measurement, []relstore.Record, error) {
	spFile := pager.OpenMem(h.PoolPages)
	sdFile := pager.OpenMem(h.PoolPages)
	defer func() { _ = spFile.Close() }()
	defer func() { _ = sdFile.Close() }()
	sp, err := relstore.BuildFormat(spFile, relstore.ClusterPLabel, spRecs, format)
	if err != nil {
		return Measurement{}, nil, fmt.Errorf("bench: build sp/%s: %w", name, err)
	}
	sd, err := relstore.BuildFormat(sdFile, relstore.ClusterTag, sdRecs, format)
	if err != nil {
		return Measurement{}, nil, fmt.Errorf("bench: build sd/%s: %w", name, err)
	}
	plabels := distinctPLabels(spRecs)
	tags := distinctTags(sdRecs)

	m := Measurement{
		Query: "DECODE", Dataset: "auction", Factor: 1,
		Translator: name, Engine: "relational", Parallelism: 1,
	}
	// Full-relation drains are exactly the workload the adaptive
	// controller grows batches to the cap for, so both formats are
	// driven at its steady-state batch size.
	buf := make([]relstore.Record, relstore.MaxBatchSize)

	// Untimed verification drain: collect every decoded record so
	// DecodeFig can compare the two formats byte for byte. The timed
	// repeats below decode into a reused buffer without accumulating,
	// so they measure the decode path rather than result-slice growth.
	var out []relstore.Record
	verify := relstore.NewExecContext()
	for _, p := range plabels {
		out, err = drainCollect(sp.ScanPLabelExactBatch(verify, p, 0, 0), buf, out)
		if err != nil {
			return Measurement{}, nil, fmt.Errorf("bench: scan sp/%s: %w", name, err)
		}
	}
	for _, tag := range tags {
		out, err = drainCollect(sd.ScanTagBatch(verify, tag, 0, 0), buf, out)
		if err != nil {
			return Measurement{}, nil, fmt.Errorf("bench: scan sd/%s: %w", name, err)
		}
	}

	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		if err := spFile.DropCache(); err != nil {
			return Measurement{}, nil, err
		}
		if err := sdFile.DropCache(); err != nil {
			return Measurement{}, nil, err
		}
		decoded := 0
		ctx := relstore.NewExecContext()
		begin := time.Now()
		for _, p := range plabels {
			n, err := drainCount(sp.ScanPLabelExactBatch(ctx, p, 0, 0), buf)
			if err != nil {
				return Measurement{}, nil, fmt.Errorf("bench: scan sp/%s: %w", name, err)
			}
			decoded += n
		}
		for _, tag := range tags {
			n, err := drainCount(sd.ScanTagBatch(ctx, tag, 0, 0), buf)
			if err != nil {
				return Measurement{}, nil, fmt.Errorf("bench: scan sd/%s: %w", name, err)
			}
			decoded += n
		}
		times = append(times, time.Since(begin))
		if decoded != len(out) {
			return Measurement{}, nil, fmt.Errorf("bench: %s timed drain decoded %d records, verification drain %d", name, decoded, len(out))
		}
		m.Visited = ctx.Visited()
		m.PageReads = ctx.PageReads()
		m.PageMisses = ctx.PageMisses()
		m.Results = decoded
	}
	// Each repeat does identical deterministic work, so scheduler noise
	// is strictly additive: the minimum is the faithful estimate, where
	// a mean would smear preemption spikes into the ratio.
	m.Elapsed = minDuration(times)
	return m, out, nil
}

func minDuration(ds []time.Duration) time.Duration {
	best := ds[0]
	for _, d := range ds[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

func drainCollect(bi relstore.BatchIter, buf, out []relstore.Record) ([]relstore.Record, error) {
	for {
		n, err := bi.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

func drainCount(bi relstore.BatchIter, buf []relstore.Record) (int, error) {
	total := 0
	for {
		n, err := bi.NextBatch(buf)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}

// distinctPLabels returns the distinct P-labels of cluster-ordered SP
// records, in first-appearance order.
func distinctPLabels(recs []relstore.Record) []uint128.Uint128 {
	var out []uint128.Uint128
	for i, r := range recs {
		if i == 0 || r.PLabel != recs[i-1].PLabel {
			out = append(out, r.PLabel)
		}
	}
	return out
}

// distinctTags returns the distinct tag ids of cluster-ordered SD
// records, in first-appearance order.
func distinctTags(recs []relstore.Record) []uint32 {
	var out []uint32
	for i, r := range recs {
		if i == 0 || r.TagID != recs[i-1].TagID {
			out = append(out, r.TagID)
		}
	}
	return out
}

func sameRecords(a, b []relstore.Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}
