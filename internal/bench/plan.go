package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/xpath"
)

// SkewedQuery is the plan-quality workload on the skewed corpus: the
// val fragment holds 3 records against ~4000 item and id records, the
// decoy value blocks an outright emptiness proof, and the tiny scan
// filters to nothing — fixed order pays both huge scans before finding
// that out, greedy order never starts them.
var SkewedQuery = `//item[id][val="` + datagen.DecoyVal + `"]`

// PlanFig compares the translator's fixed order against the physical
// planner's greedy selectivity order — cold-cache page reads (probes
// included on the greedy side) and latency — on a uniform corpus
// (auction, where ordering barely matters) and the skewed corpus (where
// it decides the query). The mode is encoded in the trajectory's
// translator field ("pushup+fixed" / "pushup+greedy") so BENCH_plan.json
// flows through the existing schema unchanged.
func (h *Harness) PlanFig(w io.Writer) error {
	workload := []struct {
		dataset, queryName, query string
	}{
		{"auction", "QA2", Fig10Queries["QA2"]},
		{datagen.NameSkewed, "SKEW", SkewedQuery},
	}
	fmt.Fprintf(w, "Plan quality: fixed vs greedy order (relational engine, pushup, cold cache, trimmed mean of %d)\n", h.Repeats)
	fmt.Fprintf(w, "%-8s %-10s %-14s %12s %12s %10s\n", "query", "dataset", "order", "elapsed", "page reads", "results")
	for _, wk := range workload {
		var reads [2]uint64
		for i, noReorder := range []bool{true, false} {
			m, err := h.planMeasure(wk.dataset, wk.queryName, wk.query, noReorder)
			if err != nil {
				return err
			}
			h.Record(m)
			reads[i] = m.PageReads
			fmt.Fprintf(w, "%-8s %-10s %-14s %12s %12d %10d\n",
				m.Query, m.Dataset, m.Translator, m.Elapsed, m.PageReads, m.Results)
		}
		if reads[1] < reads[0] {
			fmt.Fprintf(w, "%-8s %-10s greedy saved %d page reads (%.1f%%)\n",
				"", "", reads[0]-reads[1], 100*float64(reads[0]-reads[1])/float64(reads[0]))
		}
	}
	return nil
}

// planMeasure times repeated cold-cache runs of one query in one
// ordering mode on the relational engine. Physical planning happens
// inside the timed window, so the greedy side's probe page reads count
// against it.
func (h *Harness) planMeasure(dataset, queryName, query string, noReorder bool) (Measurement, error) {
	st, err := h.Store(dataset, 1)
	if err != nil {
		return Measurement{}, err
	}
	tr, err := translate.ByName("pushup")
	if err != nil {
		return Measurement{}, err
	}
	lp, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}, xpath.MustParse(query))
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: translate %s: %w", queryName, err)
	}
	mode := "greedy"
	if noReorder {
		mode = "fixed"
	}
	repeats := h.Repeats
	if repeats < 1 {
		repeats = 1
	}
	cfg := core.ExecConfig{Parallelism: h.Parallelism}
	m := Measurement{
		Query: queryName, Dataset: dataset, Factor: 1,
		Translator: "pushup+" + mode, Engine: "relational", Joins: lp.NumJoins(),
		Parallelism: cfg.Workers(),
	}
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		if err := st.DropCaches(); err != nil {
			return Measurement{}, err
		}
		ctx := relstore.NewExecContext()
		begin := time.Now()
		phys, err := planner.Plan(ctx, st, lp, planner.Options{NoReorder: noReorder})
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: plan %s/%s: %w", queryName, mode, err)
		}
		res, err := relengine.Execute(ctx, st, phys, relengine.Options{ExecConfig: cfg})
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: %s/%s: %w", queryName, mode, err)
		}
		times = append(times, time.Since(begin))
		m.Visited = ctx.Visited()
		m.PageReads = ctx.PageReads()
		m.PageMisses = ctx.PageMisses()
		m.Results = len(res.Records)
	}
	m.Elapsed = trimmedMean(times)
	return m, nil
}
