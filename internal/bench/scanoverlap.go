package bench

import (
	"sync"
	"sync/atomic"

	"repro/internal/pager"
)

// ScanOverlap sweeps every page of f with the given number of workers,
// checksumming each page's bytes inside the view callback. Worker w
// visits pages w, w+workers, w+2*workers, …, so the full file is read
// exactly once regardless of parallelism and the returned checksum is
// identical at every worker count.
//
// This is the storage-layer analogue of a parallel fragment scan: each
// view pins a frame, decodes outside any pool-wide lock, and misses
// fetch from the backing store concurrently. Before the pool was sharded
// (PR 4) every view serialized on one per-file mutex and worker counts
// beyond 1 bought nothing.
func ScanOverlap(f *pager.File, workers int) (uint64, error) {
	if workers < 1 {
		workers = 1
	}
	n := int(f.NumPages())
	var total atomic.Uint64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sum uint64
			for i := w; i < n; i += workers {
				err := f.View(pager.PageID(i), func(p []byte) error {
					for _, b := range p {
						sum += uint64(b)
					}
					return nil
				})
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
			total.Add(sum)
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return total.Load(), nil
}
