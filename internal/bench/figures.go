package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/sqlgen"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"

	"repro/internal/datagen"
)

// relational-engine translator lineup (Fig. 13) and twig-engine lineup
// (Figs. 14-18; Unfold needs unions, which the twig prototype lacks —
// §5.3.1, exactly as in the paper).
var (
	relTranslators  = []string{"dlabel", "split", "pushup", "unfold"}
	twigTranslators = []string{"dlabel", "split", "pushup"}
)

// Fig11 prints the relational algebra expressions generated for QS3 by
// each translator (paper Fig. 11).
func (h *Harness) Fig11(w io.Writer) error {
	st, err := h.Store("shakespeare", 1)
	if err != nil {
		return err
	}
	q, err := xpath.Parse(Fig10Queries["QS3"])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 11: plans generated for QS3 = %s\n\n", Fig10Queries["QS3"])
	ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
	for _, name := range relTranslators {
		tr, err := translate.ByName(name)
		if err != nil {
			return err
		}
		plan, err := tr(ctx, q)
		if err != nil {
			return err
		}
		eq, rng := plan.SelectionKinds()
		fmt.Fprintf(w, "--- %s (%d D-joins, %d equality / %d range selections) ---\n%s\n\n",
			name, plan.NumJoins(), eq, rng, sqlgen.Algebra(plan))
	}
	return nil
}

// Fig12 prints the data set characteristics table (paper Fig. 12).
func (h *Harness) Fig12(w io.Writer) error {
	fmt.Fprintln(w, "Figure 12: XML data sets")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tShakespeare\tProtein\tAuction")
	sizes := []string{}
	nodes := []string{}
	tags := []string{}
	depths := []string{}
	for _, name := range datagen.Names() {
		tree, err := datagen.ByName(name, datagen.Options{Seed: h.Seed, Factor: 1})
		if err != nil {
			return err
		}
		st := xmltree.ComputeStats(tree)
		var sz sizeCounter
		if err := xmltree.WriteXML(&sz, tree); err != nil {
			return err
		}
		sizes = append(sizes, fmt.Sprintf("%.1fMB", float64(sz)/1e6))
		nodes = append(nodes, fmt.Sprint(st.Nodes))
		tags = append(tags, fmt.Sprint(st.Tags))
		depths = append(depths, fmt.Sprint(st.Depth))
	}
	fmt.Fprintf(tw, "Size\t%s\t%s\t%s\n", sizes[0], sizes[1], sizes[2])
	fmt.Fprintf(tw, "Nodes\t%s\t%s\t%s\n", nodes[0], nodes[1], nodes[2])
	fmt.Fprintf(tw, "Tags\t%s\t%s\t%s\n", tags[0], tags[1], tags[2])
	fmt.Fprintf(tw, "Depth\t%s\t%s\t%s\n", depths[0], depths[1], depths[2])
	return tw.Flush()
}

type sizeCounter int64

func (s *sizeCounter) Write(p []byte) (int, error) {
	*s += sizeCounter(len(p))
	return len(p), nil
}

// Fig13 runs the relational-engine comparison (paper Fig. 13 a-c): the
// nine Fig. 10 queries under all four translators.
func (h *Harness) Fig13(w io.Writer, factor int) error {
	fmt.Fprintf(w, "Figure 13: relational engine query time (data factor %d)\n", factor)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tD-labeling\tSplit\tPush-up\tUnfold\tresults")
	for _, qn := range QueryOrder(Fig10Queries) {
		ds, err := DatasetOf(qn)
		if err != nil {
			return err
		}
		row := qn
		var results int
		for _, tr := range relTranslators {
			m, err := h.Run(ds, factor, qn, Fig10Queries[qn], tr, "relational", false)
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%s", fmtDur(m.Elapsed))
			results = m.Results
		}
		fmt.Fprintf(tw, "%s\t%d\n", row, results)
	}
	return tw.Flush()
}

// Fig14 runs the twig-engine comparison over all nine queries with value
// predicates stripped (paper Fig. 14 a and b), on data scaled by factor
// (the paper uses x20).
func (h *Harness) Fig14(w io.Writer, factor int) error {
	fmt.Fprintf(w, "Figure 14: twig engine, all data sets (factor %d, value predicates stripped)\n", factor)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tD-lab time\tSplit time\tPush-up time\tD-lab read\tSplit read\tPush-up read")
	for _, qn := range QueryOrder(Fig10Queries) {
		ds, err := DatasetOf(qn)
		if err != nil {
			return err
		}
		times, reads := "", ""
		for _, tr := range twigTranslators {
			m, err := h.Run(ds, factor, qn, Fig10Queries[qn], tr, "twig", true)
			if err != nil {
				return err
			}
			times += fmt.Sprintf("\t%s", fmtDur(m.Elapsed))
			reads += fmt.Sprintf("\t%d", m.Visited)
		}
		fmt.Fprintf(tw, "%s%s%s\n", qn, times, reads)
	}
	return tw.Flush()
}

// Fig15 runs the XMark benchmark skeleton queries on the twig engine
// (paper Fig. 15 a and b).
func (h *Harness) Fig15(w io.Writer, factor int) error {
	fmt.Fprintf(w, "Figure 15: twig engine, XMark benchmark queries (Auction factor %d)\n", factor)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tD-lab time\tSplit time\tPush-up time\tD-lab read\tSplit read\tPush-up read")
	for _, qn := range QueryOrder(Fig15Queries) {
		times, reads := "", ""
		for _, tr := range twigTranslators {
			m, err := h.Run("auction", factor, qn, Fig15Queries[qn], tr, "twig", true)
			if err != nil {
				return err
			}
			times += fmt.Sprintf("\t%s", fmtDur(m.Elapsed))
			reads += fmt.Sprintf("\t%d", m.Visited)
		}
		fmt.Fprintf(tw, "%s%s%s\n", qn, times, reads)
	}
	return tw.Flush()
}

// Scalability runs one Fig. 16/17/18 panel: a single query across
// increasing Auction scale factors (the paper replicates the data set 10
// to 60 times; factors here multiply the generator's entity counts the
// same way).
func (h *Harness) Scalability(w io.Writer, figure, queryName string, factors []int) error {
	query, ok := Fig10Queries[queryName]
	if !ok {
		return fmt.Errorf("bench: unknown query %s", queryName)
	}
	fmt.Fprintf(w, "Figure %s: twig engine scalability for %s = %s\n", figure, queryName, query)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "factor\tD-lab time\tSplit time\tPush-up time\tD-lab read\tSplit read\tPush-up read")
	for _, f := range factors {
		times, reads := "", ""
		for _, tr := range twigTranslators {
			m, err := h.Run("auction", f, queryName, query, tr, "twig", true)
			if err != nil {
				return err
			}
			times += fmt.Sprintf("\t%s", fmtDur(m.Elapsed))
			reads += fmt.Sprintf("\t%d", m.Visited)
		}
		fmt.Fprintf(tw, "x%d%s%s\n", f, times, reads)
	}
	return tw.Flush()
}

func fmtDur(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
