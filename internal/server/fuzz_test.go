package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	blas "repro"
)

// fuzzServer lazily builds one server shared by every fuzz execution —
// shredding a store per input would make the fuzzer useless.
var fuzzServer struct {
	once sync.Once
	srv  *Server
}

func getFuzzServer(f *testing.F) *Server {
	fuzzServer.once.Do(func() {
		st, err := blas.BuildFromString(testDoc, blas.Options{})
		if err != nil {
			f.Fatal(err)
		}
		fuzzServer.srv = New(st, Config{MaxInFlight: 4, ResultCacheEntries: 8, PlanCacheEntries: 8})
	})
	return fuzzServer.srv
}

// FuzzServerQuery throws arbitrary bytes at POST /query and checks the
// handler's contract under hostile input: it never panics, always
// answers with a status from the documented set, and every non-200
// carries a JSON {"error": ...} body.
func FuzzServerQuery(f *testing.F) {
	f.Add([]byte(`{"query":"/catalog/book/title"}`))
	f.Add([]byte(`{"query":"//book[author=\"Knuth\"]/title","engine":"twig","parallelism":2}`))
	f.Add([]byte(`{"query":"/catalog","translator":"pushup","trace":true}`))
	f.Add([]byte(`{"query":`))
	f.Add([]byte(`{"query":"///[["}`))
	f.Add([]byte(`{"query":"/a","bogus":true}`))
	f.Add([]byte(`{"query":"/a` + strings.Repeat("[b", 256) + strings.Repeat("]", 256) + `"}`))
	f.Add([]byte(`{"query":"/a[b='` + strings.Repeat(`"`, 64) + `']"}`))
	f.Add([]byte(`{"query":"` + strings.Repeat("/x", 4096) + `","parallelism":-9}`))
	f.Add([]byte("\x00\xff garbage"))

	srv := getFuzzServer(f)
	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		resp := rec.Result()
		defer resp.Body.Close()
		if !allowed[resp.StatusCode] {
			t.Fatalf("status %d outside the documented set for body %q", resp.StatusCode, body)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var qr QueryResponse
			if err := json.Unmarshal(data, &qr); err != nil {
				t.Fatalf("200 with non-QueryResponse body %q: %v", data, err)
			}
			if qr.Matches == nil {
				t.Fatal("200 with null matches array")
			}
			return
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("status %d with non-JSON body %q: %v", resp.StatusCode, data, err)
		}
		if e.Error == "" {
			t.Fatalf("status %d with empty error message", resp.StatusCode)
		}
	})
}
