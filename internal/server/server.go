// Package server implements blasd's serving tier: a resident HTTP front
// end over a blas.Store. It is the piece that turns the one-shot query
// library into a daemon fit for sustained traffic:
//
//   - POST /query executes an XPath expression with per-request engine,
//     translator, parallelism and trace options;
//   - a prepared-plan cache (LRU, keyed by store generation + effective
//     translator + normalized query) caches exactly what
//     ExecStats.PlanElapsed measures, so a warm query pays no parse or
//     translate cost;
//   - a bounded result cache (LRU, entry- and byte-limited) serves
//     repeated identical queries without touching the store, with
//     explicit invalidation via DELETE /cache;
//   - admission control bounds concurrently executing queries (429 +
//     Retry-After past the limit) and a global parallelism budget keeps
//     one heavy twig sweep from claiming every core;
//   - per-request timeouts abandon slow responses without leaking their
//     admission slots, and graceful drain (BeginDrain/Drain) lets
//     in-flight queries finish while new ones are rejected;
//   - GET /metrics and GET /debug/vars serve expvar-compatible JSON
//     ({"blas": StoreMetrics, "blasd": server Metrics}), GET /healthz
//     reports liveness and drain state.
//
// The served store can be hot-swapped (SwapStore) — generation-keyed
// caches guarantee a swapped-in store never sees a stale plan.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	blas "repro"
)

const (
	// maxBodyBytes bounds a POST /query body; beyond it the request is
	// rejected with 413 before any parsing happens.
	maxBodyBytes = 1 << 20
	// maxQueryBytes bounds the XPath expression itself.
	maxQueryBytes = 64 << 10
)

// Config tunes a Server. The zero value serves with sensible defaults;
// a negative cache size disables that cache.
type Config struct {
	// MaxInFlight bounds concurrently executing queries; requests beyond
	// it get 429 + Retry-After. 0 selects 4*GOMAXPROCS.
	MaxInFlight int
	// ParallelismBudget is the global worker-token pool shared by every
	// executing query: each query is granted between 1 and its requested
	// parallelism tokens, never more than remain. 0 selects 2*GOMAXPROCS.
	ParallelismBudget int
	// QueryTimeout abandons a request whose execution exceeds it (504).
	// The execution itself runs to completion server-side and holds its
	// admission slot until done. 0 disables the timeout.
	QueryTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses. 0 selects 1s.
	RetryAfter time.Duration
	// PlanCacheEntries bounds the prepared-plan LRU. 0 selects 256;
	// negative disables plan caching.
	PlanCacheEntries int
	// ResultCacheEntries bounds the result LRU. 0 selects 256; negative
	// disables result caching.
	ResultCacheEntries int
	// ResultCacheBytes bounds the result LRU's approximate resident
	// bytes. 0 selects 64 MiB.
	ResultCacheBytes int64
	// DefaultEngine is used when a request names none ("" = relational).
	DefaultEngine blas.Engine
	// DefaultTranslator is used when a request names none ("" = auto).
	DefaultTranslator blas.Translator
}

func (c Config) withDefaults() Config {
	procs := runtime.GOMAXPROCS(0)
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4 * procs
	}
	if c.ParallelismBudget == 0 {
		c.ParallelismBudget = 2 * procs
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 256
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 256
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 64 << 20
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = blas.EngineRelational
	}
	return c
}

// Server is the HTTP serving tier over one blas.Store. Create with New,
// mount via Handler (or use it as an http.Handler directly), stop with
// Drain. All methods are safe for concurrent use.
type Server struct {
	cfg Config
	mux *http.ServeMux

	storeMu sync.RWMutex
	store   *blas.Store

	plans   *planCache   // nil when disabled
	results *resultCache // nil when disabled

	slots  chan struct{} // admission semaphore, capacity MaxInFlight
	budget *parBudget

	draining atomic.Bool
	wg       sync.WaitGroup // in-flight query executions, for Drain

	admitted, rejected429, rejectedDraining atomic.Uint64
	timeouts, queryErrors, clamped          atomic.Uint64
	planNs                                  atomic.Int64 // cumulative planning ns paid by requests (plan-cache misses)

	// execGate, when non-nil, runs inside the execution goroutine after
	// admission and before the query executes — a test seam to hold
	// queries in flight deterministically. Set it before serving.
	execGate func()
}

// New returns a server over store with the given configuration.
func New(store *blas.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		store:  store,
		slots:  make(chan struct{}, cfg.MaxInFlight),
		budget: &parBudget{total: cfg.ParallelismBudget, avail: cfg.ParallelismBudget},
	}
	if cfg.PlanCacheEntries > 0 {
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	if cfg.ResultCacheEntries > 0 {
		s.results = newResultCache(cfg.ResultCacheEntries, cfg.ResultCacheBytes)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleVars)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("DELETE /cache", s.handleCacheDelete)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store returns the store currently being served.
func (s *Server) Store() *blas.Store {
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	return s.store
}

// SwapStore atomically replaces the served store and returns the
// previous one. The caller owns the old store and may Close it
// immediately — Close waits for that store's in-flight queries, and
// requests racing the swap that still hold the old store fail with 503
// rather than seeing torn state. Both caches are purged: generation
// keying already makes old entries unreachable, the purge just frees
// their memory promptly.
func (s *Server) SwapStore(next *blas.Store) *blas.Store {
	s.storeMu.Lock()
	old := s.store
	s.store = next
	s.storeMu.Unlock()
	if s.plans != nil {
		s.plans.purge()
	}
	if s.results != nil {
		s.results.purge()
	}
	return old
}

// BeginDrain puts the server into draining mode: new queries are
// rejected with 503 while in-flight executions run to completion.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins draining and blocks until every in-flight query
// execution has finished, or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parBudget is the global worker budget. Every admitted query is
// granted between 1 and its requested parallelism, never more than
// remain in the pool — so a single huge request cannot monopolize the
// cores while others queue. Because a grant is never zero, the pool can
// be transiently oversubscribed by at most MaxInFlight-1 workers; the
// budget shapes contention, it is not hard isolation.
type parBudget struct {
	mu    sync.Mutex
	total int
	avail int
}

func (b *parBudget) acquire(want int) int {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	grant := want
	if grant > b.total {
		grant = b.total
	}
	if grant > b.avail {
		grant = b.avail
	}
	if grant < 1 {
		grant = 1
	}
	b.avail -= grant
	return grant
}

func (b *parBudget) release(n int) {
	b.mu.Lock()
	b.avail += n
	b.mu.Unlock()
}

func (b *parBudget) available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.avail
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Query is the XPath expression (required).
	Query string `json:"query"`
	// Engine is "relational" or "twig" ("" = server default).
	Engine string `json:"engine,omitempty"`
	// Translator is auto, dlabel, split, pushup or unfold ("" = server
	// default).
	Translator string `json:"translator,omitempty"`
	// Parallelism requests a per-query worker count (0 = GOMAXPROCS);
	// the server may grant less under load (see the response field).
	Parallelism int `json:"parallelism,omitempty"`
	// BatchSize pins the query's stream batch size (0 = adaptive;
	// positive values are clamped to [64, 4096]).
	BatchSize int `json:"batch_size,omitempty"`
	// PrefetchDepth pins how many batches each stream prefetcher keeps
	// in flight (0 = adaptive; positive values are clamped to [1, 8]).
	PrefetchDepth int `json:"prefetch_depth,omitempty"`
	// Trace returns a per-phase breakdown in stats.phases. Traced
	// requests bypass the result cache.
	Trace bool `json:"trace,omitempty"`
	// NoResultCache forces execution even when a cached result exists,
	// and keeps the result out of the cache.
	NoResultCache bool `json:"no_result_cache,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	// Query is the normalized form of the request's expression — the
	// cache key identity.
	Query   string         `json:"query"`
	Count   int            `json:"count"`
	Matches []blas.Match   `json:"matches"`
	Stats   blas.ExecStats `json:"stats"`
	// Cached reports a result-cache hit; Stats then describes the
	// execution that originally produced the matches.
	Cached bool `json:"cached"`
	// PlanCached reports that no planning work was done for this request.
	PlanCached bool `json:"plan_cached"`
	// PlanNs is the planning time this request paid: zero on a plan- or
	// result-cache hit, the parse+translate cost on a cold plan.
	PlanNs int64 `json:"plan_ns"`
	// Parallelism is the worker count actually granted (0 when served
	// from the result cache — no execution happened).
	Parallelism int `json:"parallelism"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	switch {
	case req.Query == "":
		writeError(w, http.StatusBadRequest, "missing query")
		return
	case len(req.Query) > maxQueryBytes:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("query exceeds %d bytes", maxQueryBytes))
		return
	case req.Parallelism < 0:
		writeError(w, http.StatusBadRequest, "parallelism must be >= 0 (0 = server default)")
		return
	case req.BatchSize < 0:
		writeError(w, http.StatusBadRequest, "batch_size must be >= 0 (0 = adaptive)")
		return
	case req.PrefetchDepth < 0:
		writeError(w, http.StatusBadRequest, "prefetch_depth must be >= 0 (0 = adaptive)")
		return
	}
	engine := blas.Engine(req.Engine)
	if engine == "" {
		engine = s.cfg.DefaultEngine
	}
	if engine != blas.EngineRelational && engine != blas.EngineTwig {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q", req.Engine))
		return
	}

	st := s.Store()
	reqTr := blas.Translator(req.Translator)
	if reqTr == "" {
		reqTr = s.cfg.DefaultTranslator
	}
	eff := st.EffectiveTranslator(reqTr)
	norm, err := blas.NormalizeQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	gen := st.Generation()

	cacheable := s.results != nil && !req.Trace && !req.NoResultCache
	rk := resultKey{gen: gen, engine: engine, translator: eff, query: norm}
	if cacheable {
		if res, ok := s.results.get(rk); ok {
			writeJSON(w, http.StatusOK, QueryResponse{
				Query: norm, Count: len(res.Matches), Matches: matchesOf(res),
				Stats: res.Stats, Cached: true, PlanCached: true,
			})
			return
		}
	}

	// Plan: cache hit, or prepare and install. The planning cost paid
	// here is exactly what ExecStats.PlanElapsed measures in the
	// uncached path; the plan cache exists to make it zero.
	var pq *blas.PreparedQuery
	planHit := false
	var planNs int64
	pk := planKey{gen: gen, translator: eff, query: norm}
	if s.plans != nil {
		pq, planHit = s.plans.get(pk)
	}
	if pq == nil {
		prepBegin := time.Now()
		pq, err = st.Prepare(norm, blas.QueryOptions{Translator: eff})
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, blas.ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err.Error())
			return
		}
		planNs = time.Since(prepBegin).Nanoseconds()
		s.planNs.Add(planNs)
		if s.plans != nil {
			s.plans.put(pk, pq)
		}
	}

	// Admission: a free execution slot or an immediate 429 — requests
	// never queue inside the server, so saturation degrades to fast,
	// honest rejections instead of collapse.
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejected429.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("server saturated (%d queries in flight)", s.cfg.MaxInFlight))
		return
	}
	s.admitted.Add(1)

	want := req.Parallelism
	if want == 0 {
		want = runtime.GOMAXPROCS(0)
	}
	grant := s.budget.acquire(want)
	if grant < want {
		s.clamped.Add(1)
	}
	opts := blas.QueryOptions{
		Engine:        engine,
		Parallelism:   grant,
		BatchSize:     req.BatchSize,
		PrefetchDepth: req.PrefetchDepth,
		Trace:         req.Trace,
	}

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	type outcome struct {
		res *blas.Result
		err error
	}
	done := make(chan outcome, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.budget.release(grant)
			<-s.slots
		}()
		if gate := s.execGate; gate != nil {
			gate()
		}
		res, err := pq.Query(opts)
		if err == nil {
			if cacheable {
				s.results.put(rk, res)
			}
		} else {
			s.queryErrors.Add(1)
		}
		done <- outcome{res, err}
	}()

	select {
	case o := <-done:
		if o.err != nil {
			status := http.StatusInternalServerError
			if errors.Is(o.err, blas.ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, o.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			Query: norm, Count: len(o.res.Matches), Matches: matchesOf(o.res),
			Stats: o.res.Stats, PlanCached: planHit, PlanNs: planNs, Parallelism: grant,
		})
	case <-ctx.Done():
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout,
			"query abandoned (it runs to completion server-side and holds its admission slot until done)")
	}
}

// matchesOf returns the result's matches, never nil, so the JSON field
// is always an array.
func matchesOf(res *blas.Result) []blas.Match {
	if res.Matches == nil {
		return []blas.Match{}
	}
	return res.Matches
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": s.Store().Generation(),
	})
}

func (s *Server) handleCacheDelete(w http.ResponseWriter, r *http.Request) {
	scope := r.URL.Query().Get("scope")
	var results, plans int
	switch scope {
	case "", "results":
		if s.results != nil {
			results = s.results.purge()
		}
	case "plans":
		if s.plans != nil {
			plans = s.plans.purge()
		}
	case "all":
		if s.results != nil {
			results = s.results.purge()
		}
		if s.plans != nil {
			plans = s.plans.purge()
		}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown scope %q (want results, plans or all)", scope))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"invalidated_results": results,
		"invalidated_plans":   plans,
	})
}

// Metrics is a snapshot of the server's own counters — the serving-tier
// half of GET /metrics, alongside the store's StoreMetrics. It marshals
// to JSON and implements expvar.Var.
type Metrics struct {
	StoreGeneration   uint64       `json:"store_generation"`
	Draining          bool         `json:"draining"`
	InFlight          int          `json:"in_flight"`
	MaxInFlight       int          `json:"max_in_flight"`
	Admitted          uint64       `json:"admitted"`
	Rejected429       uint64       `json:"rejected_429"`
	RejectedDraining  uint64       `json:"rejected_draining"`
	Timeouts          uint64       `json:"timeouts"`
	QueryErrors       uint64       `json:"query_errors"`
	PlanNsTotal       int64        `json:"plan_ns_total"` // cumulative planning time paid; flat while the plan cache is warm
	ParallelismBudget int          `json:"parallelism_budget"`
	BudgetAvailable   int          `json:"budget_available"` // may dip below zero transiently (minimum grant of 1)
	Clamped           uint64       `json:"clamped"`          // queries granted less parallelism than requested
	PlanCache         CacheMetrics `json:"plan_cache"`
	ResultCache       CacheMetrics `json:"result_cache"`
}

// String renders the snapshot as JSON (the expvar.Var contract).
func (m Metrics) String() string {
	b, err := json.Marshal(m)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		StoreGeneration:   s.Store().Generation(),
		Draining:          s.draining.Load(),
		InFlight:          len(s.slots),
		MaxInFlight:       s.cfg.MaxInFlight,
		Admitted:          s.admitted.Load(),
		Rejected429:       s.rejected429.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),
		Timeouts:          s.timeouts.Load(),
		QueryErrors:       s.queryErrors.Load(),
		PlanNsTotal:       s.planNs.Load(),
		ParallelismBudget: s.cfg.ParallelismBudget,
		BudgetAvailable:   s.budget.available(),
		Clamped:           s.clamped.Load(),
	}
	if s.plans != nil {
		m.PlanCache = s.plans.metrics()
	}
	if s.results != nil {
		m.ResultCache = s.results.metrics()
	}
	return m
}

// Vars is the GET /metrics and GET /debug/vars payload: expvar-style
// JSON with one top-level key per subsystem.
type Vars struct {
	Blas  blas.StoreMetrics `json:"blas"`
	Blasd Metrics           `json:"blasd"`
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Vars{Blas: s.Store().Metrics(), Blasd: s.Metrics()})
}
