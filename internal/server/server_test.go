// Server contract tests: correctness of the HTTP query path against
// direct Store.Query, cache hit/miss/invalidation behaviour, admission
// control (429, budget clamping, timeouts), graceful drain, and the
// stale-plan regression around store swaps. The concurrency tests mirror
// the root TestConcurrency* family and are meant to run under -race.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	blas "repro"
)

const testDoc = `<catalog>
  <book id="b1"><author>Knuth</author><title>TAOCP</title><price>199</price></book>
  <book id="b2"><author>Date</author><title>Databases</title><price>89</price></book>
  <book id="b3"><author>Knuth</author><title>Concrete Math</title><price>120</price></book>
  <journal id="j1"><title>SIGMOD Record</title></journal>
</catalog>`

func buildStore(t testing.TB, doc string) *blas.Store {
	t.Helper()
	st, err := blas.BuildFromString(doc, blas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func newTestServer(t testing.TB, st *blas.Store, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(st, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery sends a QueryRequest and decodes the response, returning the
// HTTP status and either the success or the error payload.
func postQuery(t testing.TB, url string, req QueryRequest) (int, *QueryResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, body)
}

func postRaw(t testing.TB, url string, body []byte) (int, *QueryResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		json.Unmarshal(data, &e) //nolint:errcheck // error body shape asserted by callers
		return resp.StatusCode, nil, e.Error
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("bad response body %q: %v", data, err)
	}
	return resp.StatusCode, &qr, ""
}

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, data, err)
	}
	return resp.StatusCode
}

func deleteCache(t testing.TB, url, scope string) map[string]int {
	t.Helper()
	u := url + "/cache"
	if scope != "" {
		u += "?scope=" + scope
	}
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /cache?scope=%s: status %d", scope, resp.StatusCode)
	}
	out := map[string]int{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerQueryMatchesDirect checks the fundamental serving contract
// on a small document: every engine × translator × parallelism combo
// returns exactly what direct Store.Query returns, cold and warm.
func TestServerQueryMatchesDirect(t *testing.T) {
	st := buildStore(t, testDoc)
	_, ts := newTestServer(t, st, Config{})
	queries := []string{
		"/catalog/book/title",
		`/catalog/book[author="Knuth"]/title`,
		"//title",
		"/catalog/book/@id",
		`//book[price="89"]//author`,
	}
	for _, query := range queries {
		for _, engine := range []string{"relational", "twig"} {
			for _, par := range []int{1, 4} {
				want, err := st.Query(query, blas.QueryOptions{Engine: blas.Engine(engine), Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				// no_result_cache so every combo actually executes.
				status, qr, errMsg := postQuery(t, ts.URL, QueryRequest{
					Query: query, Engine: engine, Parallelism: par, NoResultCache: true,
				})
				if status != http.StatusOK {
					t.Fatalf("%s [%s P=%d]: status %d: %s", query, engine, par, status, errMsg)
				}
				if qr.Count != len(want.Matches) {
					t.Fatalf("%s [%s P=%d]: count %d, direct %d", query, engine, par, qr.Count, len(want.Matches))
				}
				if !reflect.DeepEqual(qr.Matches, want.Matches) && len(want.Matches) > 0 {
					t.Errorf("%s [%s P=%d]: matches differ from direct query", query, engine, par)
				}
				if qr.Parallelism < 1 {
					t.Errorf("%s: granted parallelism %d < 1", query, qr.Parallelism)
				}
			}
		}
	}
}

// TestServerPlanCacheCounters asserts the plan-cache hit/miss protocol:
// first request misses and pays planning, repeats hit and pay none, and
// the /metrics counters agree.
func TestServerPlanCacheCounters(t *testing.T) {
	st := buildStore(t, testDoc)
	srv, ts := newTestServer(t, st, Config{})
	const query = "/catalog/book/title"

	status, qr, errMsg := postQuery(t, ts.URL, QueryRequest{Query: query, NoResultCache: true})
	if status != http.StatusOK {
		t.Fatalf("cold: status %d: %s", status, errMsg)
	}
	if qr.PlanCached {
		t.Fatal("cold query reported plan_cached")
	}
	if qr.PlanNs <= 0 {
		t.Fatal("cold query paid no planning time")
	}

	planNsAfterCold := srv.Metrics().PlanNsTotal
	for i := 0; i < 3; i++ {
		// Whitespace variant must normalize onto the same cache entry.
		status, qr, errMsg = postQuery(t, ts.URL, QueryRequest{Query: " /catalog/book/title ", NoResultCache: true})
		if status != http.StatusOK {
			t.Fatalf("warm %d: status %d: %s", i, status, errMsg)
		}
		if !qr.PlanCached {
			t.Fatalf("warm %d: plan_cached false", i)
		}
		if qr.PlanNs != 0 {
			t.Fatalf("warm %d: paid %dns planning", i, qr.PlanNs)
		}
		if qr.Stats.PlanElapsed != 0 {
			t.Fatalf("warm %d: stats.PlanElapsed = %v, want 0 (plan was cached)", i, qr.Stats.PlanElapsed)
		}
	}
	m := srv.Metrics()
	if m.PlanNsTotal != planNsAfterCold {
		t.Errorf("warm queries grew plan_ns_total: %d -> %d", planNsAfterCold, m.PlanNsTotal)
	}
	if m.PlanCache.Misses != 1 || m.PlanCache.Hits != 3 {
		t.Errorf("plan cache hits/misses = %d/%d, want 3/1", m.PlanCache.Hits, m.PlanCache.Misses)
	}
	if m.PlanCache.Entries != 1 {
		t.Errorf("plan cache entries = %d, want 1", m.PlanCache.Entries)
	}
}

// TestServerResultCacheInvalidation observes the result cache end to
// end: miss, hit, explicit DELETE /cache, miss again.
func TestServerResultCacheInvalidation(t *testing.T) {
	st := buildStore(t, testDoc)
	srv, ts := newTestServer(t, st, Config{})
	const query = `/catalog/book[author="Knuth"]/title`

	status, first, errMsg := postQuery(t, ts.URL, QueryRequest{Query: query})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, errMsg)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	_, second, _ := postQuery(t, ts.URL, QueryRequest{Query: query})
	if !second.Cached {
		t.Fatal("second request not served from result cache")
	}
	if !reflect.DeepEqual(first.Matches, second.Matches) {
		t.Fatal("cached matches differ from original")
	}

	dropped := deleteCache(t, ts.URL, "")
	if dropped["invalidated_results"] != 1 {
		t.Fatalf("DELETE /cache invalidated %d results, want 1", dropped["invalidated_results"])
	}
	_, third, _ := postQuery(t, ts.URL, QueryRequest{Query: query})
	if third.Cached {
		t.Fatal("request after invalidation still served from cache")
	}
	m := srv.Metrics()
	if m.ResultCache.Invalidations != 1 {
		t.Errorf("result cache invalidations = %d, want 1", m.ResultCache.Invalidations)
	}
	if m.ResultCache.Hits != 1 || m.ResultCache.Misses != 2 {
		t.Errorf("result cache hits/misses = %d/%d, want 1/2", m.ResultCache.Hits, m.ResultCache.Misses)
	}
	// Traced requests must bypass the cache entirely.
	_, traced, _ := postQuery(t, ts.URL, QueryRequest{Query: query, Trace: true})
	if traced.Cached {
		t.Fatal("traced request served from result cache")
	}
	if traced.Stats.Phases == nil {
		t.Fatal("traced request returned no phase breakdown")
	}
}

// TestServerResultCacheBounds fills a tiny result cache past its entry
// limit and checks LRU eviction keeps it bounded.
func TestServerResultCacheBounds(t *testing.T) {
	st := buildStore(t, testDoc)
	srv, ts := newTestServer(t, st, Config{ResultCacheEntries: 2})
	queries := []string{"/catalog/book/title", "/catalog/book/author", "/catalog/book/price", "//journal/title"}
	for _, q := range queries {
		if status, _, errMsg := postQuery(t, ts.URL, QueryRequest{Query: q}); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, status, errMsg)
		}
	}
	m := srv.Metrics()
	if m.ResultCache.Entries > 2 {
		t.Errorf("result cache holds %d entries, limit 2", m.ResultCache.Entries)
	}
	if m.ResultCache.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", m.ResultCache.Evictions)
	}
	// The least-recently-used entry is gone; the newest is resident.
	_, qr, _ := postQuery(t, ts.URL, QueryRequest{Query: "//journal/title"})
	if !qr.Cached {
		t.Error("most recent entry was evicted")
	}
	_, qr, _ = postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/title"})
	if qr.Cached {
		t.Error("oldest entry survived past the limit")
	}
}

// TestServerSaturation429 fills every admission slot with gated queries
// and checks the next request is rejected with 429 + Retry-After —
// never queued, never collapsed — and that slots are reusable after.
func TestServerSaturation429(t *testing.T) {
	st := buildStore(t, testDoc)
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	srv := New(st, Config{MaxInFlight: 2, QueryTimeout: -1})
	srv.execGate = func() {
		started <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct queries so neither is served from the result cache.
			status, _, errMsg := postQuery(t, ts.URL, QueryRequest{Query: fmt.Sprintf("/catalog/book[%s]/title", []string{"author", "price"}[i])})
			if status != http.StatusOK {
				t.Errorf("in-flight query %d: status %d: %s", i, status, errMsg)
			}
		}(i)
	}
	<-started
	<-started

	body, _ := json.Marshal(QueryRequest{Query: "/catalog/journal/title"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gate)
	wg.Wait()
	if got := srv.Metrics().Rejected429; got != 1 {
		t.Errorf("rejected_429 = %d, want 1", got)
	}
	// Slots drained: the same query now executes.
	srv.execGate = nil
	if status, _, errMsg := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/journal/title"}); status != http.StatusOK {
		t.Fatalf("post-saturation query: status %d: %s", status, errMsg)
	}
	if got := srv.Metrics().InFlight; got != 0 {
		t.Errorf("in_flight = %d after quiesce, want 0", got)
	}
}

// TestServerGracefulDrain starts a query, begins draining, and checks
// the in-flight query completes while new ones are rejected with 503.
func TestServerGracefulDrain(t *testing.T) {
	st := buildStore(t, testDoc)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := New(st, Config{})
	srv.execGate = func() {
		started <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		qr     *QueryResponse
	}
	inflight := make(chan result, 1)
	go func() {
		status, qr, _ := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/title"})
		inflight <- result{status, qr}
	}()
	<-started

	srv.BeginDrain()
	status, _, errMsg := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/author"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d (%s), want 503", status, errMsg)
	}
	var health map[string]any
	if got := getJSON(t, ts.URL+"/healthz", &health); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", got)
	}

	close(gate)
	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight query after drain began: status %d, want 200", r.status)
	}
	if r.qr.Count == 0 {
		t.Fatal("in-flight query returned no matches")
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := srv.Metrics().RejectedDraining; got != 1 {
		t.Errorf("rejected_draining = %d, want 1", got)
	}
}

// TestServerQueryTimeout gates execution past a tiny QueryTimeout and
// checks the request is abandoned with 504 while the execution still
// completes and releases its admission slot.
func TestServerQueryTimeout(t *testing.T) {
	st := buildStore(t, testDoc)
	gate := make(chan struct{})
	srv := New(st, Config{QueryTimeout: 20 * time.Millisecond})
	srv.execGate = func() { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, _ := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/title"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	close(gate)
	// The abandoned execution finishes and frees its slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned query never released its slot")
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Metrics().Timeouts; got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// TestServerParallelismBudget checks one request cannot claim more
// workers than the global budget holds, and that the grant is reported.
func TestServerParallelismBudget(t *testing.T) {
	st := buildStore(t, testDoc)
	srv, ts := newTestServer(t, st, Config{ParallelismBudget: 2})
	status, qr, errMsg := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/title", Parallelism: 64, NoResultCache: true})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, errMsg)
	}
	if qr.Parallelism != 2 {
		t.Errorf("granted %d workers from a budget of 2", qr.Parallelism)
	}
	m := srv.Metrics()
	if m.Clamped != 1 {
		t.Errorf("clamped = %d, want 1", m.Clamped)
	}
	if m.BudgetAvailable != 2 {
		t.Errorf("budget_available = %d after quiesce, want 2", m.BudgetAvailable)
	}
}

// TestServerStalePlanAfterSwap is the regression test for the
// generation-keyed plan cache: after the served store is swapped for one
// with a different labeling scheme, queries must be re-planned against
// the new store — a stale plan would select the old generation's label
// ranges and return garbage.
func TestServerStalePlanAfterSwap(t *testing.T) {
	// Same element paths, different tag universes: the P-label scheme of
	// docB assigns different label ranges to /catalog/book/title, so a
	// plan prepared on docA is wrong on docB's store.
	docA := `<catalog><book><title>A1</title></book><book><title>A2</title></book></catalog>`
	docB := `<catalog><zzz/><book><title>B1</title></book><book><title>B2</title></book><book><title>B3</title></book></catalog>`
	stA := buildStore(t, docA)
	stB := buildStore(t, docB)
	srv, ts := newTestServer(t, stA, Config{})
	const query = "/catalog/book/title"

	_, cold, _ := postQuery(t, ts.URL, QueryRequest{Query: query})
	if cold.Count != 2 {
		t.Fatalf("generation A: %d matches, want 2", cold.Count)
	}
	if old := srv.SwapStore(stB); old != stA {
		t.Fatal("SwapStore returned the wrong store")
	}

	want, err := stB.Query(query, blas.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	status, qr, errMsg := postQuery(t, ts.URL, QueryRequest{Query: query})
	if status != http.StatusOK {
		t.Fatalf("after swap: status %d: %s", status, errMsg)
	}
	if qr.Cached || qr.PlanCached {
		t.Fatalf("after swap: served stale cache state (cached=%v plan_cached=%v)", qr.Cached, qr.PlanCached)
	}
	if qr.Count != 3 || !reflect.DeepEqual(qr.Matches, want.Matches) {
		t.Fatalf("after swap: %d matches, want %d identical to direct query", qr.Count, len(want.Matches))
	}
	m := srv.Metrics()
	if m.StoreGeneration != stB.Generation() {
		t.Errorf("metrics generation %d, want %d", m.StoreGeneration, stB.Generation())
	}
	if m.PlanCache.Invalidations == 0 {
		t.Error("swap purged no plan cache entries")
	}
	// The old store closes cleanly (no queries still reference it).
	if err := stA.Close(); err != nil {
		t.Fatalf("closing swapped-out store: %v", err)
	}
}

// TestServerStoreClosed maps ErrClosed to 503 rather than 500.
func TestServerStoreClosed(t *testing.T) {
	st := buildStore(t, testDoc)
	_, ts := newTestServer(t, st, Config{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	status, _, errMsg := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/title"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("closed store: status %d (%s), want 503", status, errMsg)
	}
}

// TestServerBadRequests exercises the 4xx surface.
func TestServerBadRequests(t *testing.T) {
	st := buildStore(t, testDoc)
	_, ts := newTestServer(t, st, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"query":`, http.StatusBadRequest},
		{"unknown field", `{"query":"/a","bogus":1}`, http.StatusBadRequest},
		{"empty body", ``, http.StatusBadRequest},
		{"missing query", `{}`, http.StatusBadRequest},
		{"bad xpath", `{"query":"///[["}`, http.StatusBadRequest},
		{"negative parallelism", `{"query":"/catalog","parallelism":-1}`, http.StatusBadRequest},
		{"bad engine", `{"query":"/catalog","engine":"quantum"}`, http.StatusBadRequest},
		{"bad translator", `{"query":"/catalog","translator":"quantum"}`, http.StatusBadRequest},
		{"deep nesting", `{"query":"/a` + strings.Repeat("[b", 1000) + strings.Repeat("]", 1000) + `"}`, http.StatusBadRequest},
		{"huge query", `{"query":"` + strings.Repeat("/a", maxQueryBytes) + `"}`, http.StatusBadRequest},
		{"huge body", `{"query":"` + strings.Repeat("a", maxBodyBytes+16) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		status, _, errMsg := postRaw(t, ts.URL, []byte(tc.body))
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, errMsg, tc.want)
		}
		if status != http.StatusOK && errMsg == "" && tc.body != `` {
			t.Errorf("%s: error response without message", tc.name)
		}
	}
	// Wrong methods 405.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
	// Unknown cache scope.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/cache?scope=bogus", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("DELETE /cache?scope=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestServerMetricsEndpoints checks /metrics and /debug/vars serve the
// expvar-compatible two-key payload and agree with the store.
func TestServerMetricsEndpoints(t *testing.T) {
	st := buildStore(t, testDoc)
	srv, ts := newTestServer(t, st, Config{})
	if status, _, errMsg := postQuery(t, ts.URL, QueryRequest{Query: "/catalog/book/title"}); status != http.StatusOK {
		t.Fatalf("query: %d: %s", status, errMsg)
	}
	for _, path := range []string{"/metrics", "/debug/vars"} {
		var vars struct {
			Blas  blas.StoreMetrics `json:"blas"`
			Blasd Metrics           `json:"blasd"`
		}
		if status := getJSON(t, ts.URL+path, &vars); status != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, status)
		}
		if vars.Blas.Queries != 1 {
			t.Errorf("%s: store queries = %d, want 1", path, vars.Blas.Queries)
		}
		if vars.Blasd.Admitted != 1 {
			t.Errorf("%s: admitted = %d, want 1", path, vars.Blasd.Admitted)
		}
		if vars.Blasd.StoreGeneration != st.Generation() {
			t.Errorf("%s: generation mismatch", path)
		}
	}
	// The Metrics type satisfies the expvar.Var contract.
	var roundTrip Metrics
	if err := json.Unmarshal([]byte(srv.Metrics().String()), &roundTrip); err != nil {
		t.Fatalf("Metrics.String is not JSON: %v", err)
	}
}

// TestServerConcurrencyStress races concurrent clients against cache
// eviction, DELETE /cache, store swaps and Store.Close of the swapped-out
// store — the serving-tier analogue of the root TestConcurrency* family.
// Run under -race. Every 200 must carry the correct result set; 429/503
// are legitimate under saturation and swap; nothing else may appear.
func TestServerConcurrencyStress(t *testing.T) {
	queries := []string{
		"/catalog/book/title",
		`/catalog/book[author="Knuth"]/title`,
		"//title",
		"/catalog/book/@id",
		"/catalog/book/price",
	}
	stA := buildStore(t, testDoc)
	want := map[string]int{}
	for _, q := range queries {
		res, err := stA.Query(q, blas.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[q] = len(res.Matches)
	}

	srv, ts := newTestServer(t, stA, Config{MaxInFlight: 4, ResultCacheEntries: 2, PlanCacheEntries: 2})
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Client goroutines: mixed engines and parallelism.
	var got429, got503 atomic.Uint64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			engines := []string{"relational", "twig"}
			for i := 0; !stop.Load(); i++ {
				q := queries[(c+i)%len(queries)]
				status, qr, errMsg := postQuery(t, ts.URL, QueryRequest{
					Query: q, Engine: engines[i%2], Parallelism: i % 3,
				})
				switch status {
				case http.StatusOK:
					if qr.Count != want[q] {
						t.Errorf("%s: %d matches, want %d", q, qr.Count, want[q])
						return
					}
				case http.StatusTooManyRequests:
					got429.Add(1)
				case http.StatusServiceUnavailable:
					got503.Add(1)
				default:
					t.Errorf("%s: unexpected status %d: %s", q, status, errMsg)
					return
				}
			}
		}(c)
	}
	// Invalidator: hammers DELETE /cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			deleteCache(t, ts.URL, "all")
		}
	}()
	// Swapper: replaces the store with an identical document (same
	// results, new generation) and closes the old one mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5 && !stop.Load(); i++ {
			next, err := blas.BuildFromString(testDoc, blas.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			old := srv.SwapStore(next)
			if err := old.Close(); err != nil {
				t.Errorf("closing swapped-out store: %v", err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := srv.Store().Close(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.InFlight != 0 {
		t.Errorf("in_flight = %d after quiesce, want 0", m.InFlight)
	}
	t.Logf("stress: admitted=%d 429=%d 503=%d plan{h=%d m=%d} result{h=%d m=%d ev=%d}",
		m.Admitted, got429.Load(), got503.Load(),
		m.PlanCache.Hits, m.PlanCache.Misses,
		m.ResultCache.Hits, m.ResultCache.Misses, m.ResultCache.Evictions)
}
