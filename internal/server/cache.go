package server

import (
	"container/list"
	"sync"

	blas "repro"
)

// CacheMetrics is one cache's traffic and occupancy snapshot.
type CacheMetrics struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"` // entries dropped by purge (DELETE /cache, store swap)
	Entries       int    `json:"entries"`
	MaxEntries    int    `json:"max_entries"`
	Bytes         int64  `json:"bytes,omitempty"`     // result cache only
	MaxBytes      int64  `json:"max_bytes,omitempty"` // result cache only
}

// planKey identifies one prepared plan. The generation component is the
// staleness guard: a plan's P-label ranges are minted by one store's
// labeling scheme, so a plan prepared against generation G must never
// serve a query against generation G' != G (same-path labels differ
// between shredding runs). Keying on Store.Generation makes every entry
// of a swapped-out store unreachable the moment the swap lands.
type planKey struct {
	gen        uint64
	translator blas.Translator
	query      string // normalized form (blas.NormalizeQuery)
}

// planCache is a bounded LRU of PreparedQuery by planKey, caching
// exactly what ExecStats.PlanElapsed measures: parse, translate and the
// physical planner's selectivity-ordered pass — a cached entry holds
// the ordered physical plan (immutable, see package planner), so a
// warm hit skips the planner's index probes too. The generation key
// also guards the planner's estimates: they were probed from one
// store's indexes and are as generation-bound as the P-label ranges.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[planKey]*list.Element
	lru     *list.List // front = most recently used; element values are *planEntry

	hits, misses, evictions, invalidations uint64
}

type planEntry struct {
	key planKey
	pq  *blas.PreparedQuery
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: map[planKey]*list.Element{}, lru: list.New()}
}

func (c *planCache) get(k planKey) (*blas.PreparedQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).pq, true
}

func (c *planCache) put(k planKey, pq *blas.PreparedQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok { // lost a prepare race; keep the winner fresh
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&planEntry{key: k, pq: pq})
	for len(c.entries) > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*planEntry).key)
		c.evictions++
	}
}

// purge drops every entry, returning how many were dropped.
func (c *planCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = map[planKey]*list.Element{}
	c.lru.Init()
	c.invalidations += uint64(n)
	return n
}

func (c *planCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Invalidations: c.invalidations, Entries: len(c.entries), MaxEntries: c.max,
	}
}

// resultKey identifies one cached result set. Results are byte-identical
// at every parallelism level (the engines' core guarantee), so the key
// deliberately omits parallelism: a result computed with 4 workers
// serves a sequential request. Engine stays in the key out of caution —
// result equality across engines is an invariant the integration tests
// enforce, not one the cache should silently depend on.
type resultKey struct {
	gen        uint64
	engine     blas.Engine
	translator blas.Translator
	query      string // normalized form
}

// resultCache is a bounded LRU of query results with both an entry limit
// and an approximate byte limit. Entries larger than the byte limit are
// not cached at all.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	entries    map[resultKey]*list.Element
	lru        *list.List // element values are *resultEntry

	hits, misses, evictions, invalidations uint64
}

type resultEntry struct {
	key  resultKey
	res  *blas.Result
	size int64
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries, maxBytes: maxBytes,
		entries: map[resultKey]*list.Element{}, lru: list.New(),
	}
}

// resultSize approximates a result's resident footprint: the string
// payloads plus a fixed per-match overhead for the struct fields.
func resultSize(res *blas.Result) int64 {
	var n int64 = 256 // entry + stats overhead
	for i := range res.Matches {
		m := &res.Matches[i]
		n += int64(len(m.Tag)+len(m.Value)+len(m.Path)) + 64
	}
	return n
}

func (c *resultCache) get(k resultKey) (*blas.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*resultEntry).res, true
}

// put caches a result. The caller must never mutate res afterwards — the
// cache serves the same *Result to every hit.
func (c *resultCache) put(k resultKey, res *blas.Result) {
	size := resultSize(res)
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&resultEntry{key: k, res: res, size: size})
	c.bytes += size
	for len(c.entries) > c.maxEntries || c.bytes > c.maxBytes {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		e := tail.Value.(*resultEntry)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

func (c *resultCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = map[resultKey]*list.Element{}
	c.lru.Init()
	c.bytes = 0
	c.invalidations += uint64(n)
	return n
}

func (c *resultCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Invalidations: c.invalidations, Entries: len(c.entries),
		MaxEntries: c.maxEntries, Bytes: c.bytes, MaxBytes: c.maxBytes,
	}
}
