package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture tests mirror golang.org/x/tools/go/analysis/analysistest:
// each testdata/src/<analyzer> package carries `// want "regexp"`
// comments on the lines expected to be flagged (several quoted regexps
// when one line yields several findings), and clean variants with no
// marker. Every reported diagnostic must match a want on its line and
// every want must be consumed.

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	re   *regexp.Regexp
	used bool
}

// fixtureExpectations scans the package's comments for want markers,
// keyed by file:line.
func fixtureExpectations(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	out := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantQuoted.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					out[key] = append(out[key], &expectation{re: regexp.MustCompile(pat)})
				}
			}
		}
	}
	return out
}

func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(token.NewFileSet(), dir, name)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("%s: no Go files", dir)
	}
	wants := fixtureExpectations(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("%s: fixture carries no // want expectations", dir)
	}
	diags, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

func TestPagerPinFixtures(t *testing.T) { runFixture(t, PagerPin, "pagerpin") }

func TestHotAllocFixtures(t *testing.T) { runFixture(t, HotAlloc, "hotalloc") }

func TestLockEscapeFixtures(t *testing.T) { runFixture(t, LockEscape, "lockescape") }

func TestExecCtxFixtures(t *testing.T) { runFixture(t, ExecCtx, "execctx") }

func TestCloseCheckFixtures(t *testing.T) { runFixture(t, CloseCheck, "closecheck") }

// TestIgnoreDirectives covers the suppression machinery beyond the one
// sanctioned ignore in the pagerpin fixture: a well-formed directive
// suppresses exactly its line, and malformed or unused directives are
// findings in their own right — suppressions cannot rot silently.
func TestIgnoreDirectives(t *testing.T) {
	const src = `package p

type closer struct{}

func (closer) Close() error { return nil }

func helper(f closer) {
	//blas:ignore closecheck
	f.Close()
	//blas:ignore nosuch because reasons
	//blas:ignore closecheck fixture cleanup is best-effort
	f.Close()
}

//blas:ignore closecheck this suppresses nothing
func unusedSite() {}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(token.NewFileSet(), dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{CloseCheck})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"missing reason",             // //blas:ignore closecheck — malformed, suppresses nothing
		"Close error discarded",      // ...so the first f.Close() still fires
		`unknown analyzer "nosuch"`,  // bad analyzer name
		"suppresses nothing; delete", // well-formed but unused
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diag %d = %s, want substring %q", i, diags[i], w)
		}
	}
	// The second f.Close() must have been suppressed by the well-formed
	// directive on the preceding line.
	for _, d := range diags {
		if d.Pos.Line == 12 && d.Analyzer == "closecheck" {
			t.Errorf("suppressed finding leaked: %s", d)
		}
	}
}

// TestBlasvetSelf asserts the real tree is clean under the full suite —
// the same gate CI runs via cmd/blasvet. The package-count floor guards
// against LoadTree silently skipping real code and vacuously passing.
func TestBlasvetSelf(t *testing.T) {
	pkgs, err := LoadTree(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the module root; LoadTree is skipping real code", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Path, d)
		}
	}
}
