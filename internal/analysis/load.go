package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed (not type-checked) Go package.
type Package struct {
	Dir   string // directory the files were read from
	Path  string // display path (module-relative when loaded by LoadTree)
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File
}

// LoadDir parses the non-test Go files of the package in dir. Files are
// parsed with comments (the annotations and ignore directives live
// there) and with object resolution (the escape analyses track local
// variables through ast.Object). Returns nil with no error when the
// directory holds no Go files.
func LoadDir(fset *token.FileSet, dir, display string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Path: display, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", display, err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return nil, fmt.Errorf("%s: mixed packages %s and %s", display, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// skipDir names directories never descended into: they hold fixtures,
// third-party code or tool state, not packages of this module.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadTree loads every package under root (the module root or any
// subtree), in stable path order, sharing one FileSet. Directories
// named testdata or vendor and hidden directories are skipped, matching
// what go build ./... would compile.
func LoadTree(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		display, err := filepath.Rel(root, dir)
		if err != nil {
			display = dir
		}
		pkg, err := LoadDir(fset, dir, display)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}
