package analysis

import (
	"go/ast"
	"strings"
)

// ExecCtx enforces the per-query counter-threading discipline: the
// execution counters that feed internal/obs (pages read, records
// decoded, index probes) flow through a *relstore.ExecContext handed to
// each entry point, never through package-level state. Two rules:
//
//  1. In package relstore, an exported method on *Relation whose name
//     starts with Scan, or is Get or DistinctPLabels, must take a
//     *ExecContext as its first parameter — these are the measured
//     entry points, and a counter recorded anywhere else is invisible
//     to the query that caused it.
//  2. Packages relstore, pbtree and pager must not declare
//     package-level counter state: variables of an atomic type, of a
//     Counters type, or of ExecContext type. A global counter is
//     shared across concurrent queries and corrupts per-query
//     attribution (and the resident blasd server runs many queries at
//     once).
var ExecCtx = &Analyzer{
	Name: "execctx",
	Doc:  "require *relstore.ExecContext threading on measured entry points; ban package-level counter state",
	Run:  runExecCtx,
}

// execCtxPackages are the packages rule 2 applies to.
var execCtxPackages = map[string]bool{"relstore": true, "pbtree": true, "pager": true}

func runExecCtx(pass *Pass) error {
	name := pass.Pkg.Name
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if name == "relstore" {
					checkEntryPoint(pass, d)
				}
			case *ast.GenDecl:
				if execCtxPackages[name] {
					checkGlobals(pass, d)
				}
			}
		}
	}
	return nil
}

// isMeasuredEntryPoint reports whether fd is an exported *Relation
// method that records execution counters.
func isMeasuredEntryPoint(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return false
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := star.X.(*ast.Ident)
	if !ok || id.Name != "Relation" {
		return false
	}
	n := fd.Name.Name
	return strings.HasPrefix(n, "Scan") || n == "Get" || n == "DistinctPLabels"
}

// checkEntryPoint verifies the first parameter is *ExecContext.
func checkEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	if !isMeasuredEntryPoint(fd) {
		return
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		pass.Reportf(fd.Name.Pos(), "%s records execution counters but takes no *ExecContext; thread the per-query context as the first parameter", fd.Name.Name)
		return
	}
	if !isExecContextPtr(params.List[0].Type) {
		pass.Reportf(params.List[0].Pos(), "%s must take *ExecContext as its first parameter so counters attribute to the running query", fd.Name.Name)
	}
}

// isExecContextPtr matches *ExecContext (same package) and
// *relstore.ExecContext (cross-package).
func isExecContextPtr(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := star.X.(type) {
	case *ast.Ident:
		return x.Name == "ExecContext"
	case *ast.SelectorExpr:
		return x.Sel.Name == "ExecContext"
	}
	return false
}

// checkGlobals flags package-level vars whose declared type or
// initializer names counter state.
func checkGlobals(pass *Pass, d *ast.GenDecl) {
	if d.Tok.String() != "var" {
		return
	}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if why := counterStateType(vs.Type); why != "" {
			pass.Reportf(vs.Pos(), "package-level %s is shared counter state; counters must live in a per-query *relstore.ExecContext", why)
			continue
		}
		for _, v := range vs.Values {
			if why := counterStateExpr(v); why != "" {
				pass.Reportf(vs.Pos(), "package-level %s is shared counter state; counters must live in a per-query *relstore.ExecContext", why)
				break
			}
		}
	}
}

// counterStateType classifies a declared type as counter state.
func counterStateType(t ast.Expr) string {
	switch t := t.(type) {
	case nil:
		return ""
	case *ast.StarExpr:
		return counterStateType(t.X)
	case *ast.ArrayType:
		return counterStateType(t.Elt)
	case *ast.Ident:
		if strings.Contains(t.Name, "Counters") || t.Name == "ExecContext" {
			return t.Name
		}
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			if id.Name == "atomic" {
				return "atomic." + t.Sel.Name
			}
			if strings.Contains(t.Sel.Name, "Counters") || t.Sel.Name == "ExecContext" {
				return id.Name + "." + t.Sel.Name
			}
		}
	}
	return ""
}

// counterStateExpr classifies an initializer expression as counter
// state (covers `var c = relstore.NewExecContext()` style).
func counterStateExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		return counterStateExpr(e.X)
	case *ast.CompositeLit:
		return counterStateType(e.Type)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "NewExecContext") {
			return sel.Sel.Name + "()"
		}
		if id, ok := e.Fun.(*ast.Ident); ok && strings.HasPrefix(id.Name, "NewExecContext") {
			return id.Name + "()"
		}
	}
	return ""
}
