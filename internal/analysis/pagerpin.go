package analysis

import (
	"go/ast"
	"go/token"
)

// PagerPin enforces the pager pin contract (internal/pager package doc):
// the []byte page slice passed to a View/ViewCounted/Update callback is
// valid only for the duration of the call — the frame is unpinned when
// the callback returns and the buffer may be evicted and reused. The
// analyzer taints the page parameter and every no-copy alias of it
// (sub-slices, &p, composite literals and append-as-element containers
// holding it) and reports when a tainted value outlives the callback:
// assigned to a variable declared outside it, stored through a field,
// index or pointer whose base is not callback-local, sent on a channel,
// returned, or captured by a goroutine or escaping closure.
//
// The analysis is value-level and deliberately treats function-call
// results as clean: every in-tree decoder (decodeRecord, string(...),
// binary reads) copies out of the page, so a call boundary is where the
// copy-out happens. A helper that returns a sub-slice of its argument
// would evade the check — keep decoding in the callback or copy first.
var PagerPin = &Analyzer{
	Name: "pagerpin",
	Doc:  "flag pager View/ViewCounted/Update callbacks that let the page buffer escape",
	Run:  runPagerPin,
}

// pagerEntryPoints are the pager.File methods that run a callback
// against a pinned frame. Matching is by method name plus callback
// shape; a same-named method elsewhere with a func([]byte) error
// argument is held to the same contract (suppress with //blas:ignore
// if it genuinely owns its buffer).
var pagerEntryPoints = map[string]bool{"View": true, "ViewCounted": true, "Update": true}

func runPagerPin(pass *Pass) error {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !pagerEntryPoints[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if fn, ok := arg.(*ast.FuncLit); ok && isPageCallback(fn.Type) {
					checkPageCallback(pass, sel.Sel.Name, fn)
				}
			}
			return true
		})
	}
	return nil
}

// isPageCallback reports whether ft's first parameter is a []byte.
func isPageCallback(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	at, ok := ft.Params.List[0].Type.(*ast.ArrayType)
	if !ok || at.Len != nil {
		return false
	}
	elt, ok := at.Elt.(*ast.Ident)
	return ok && elt.Name == "byte"
}

// escWalker runs the taint pass over one callback body.
type escWalker struct {
	pass   *Pass
	method string
	fn     *ast.FuncLit
	locals map[*ast.Object]bool // objects declared inside fn
	taint  map[*ast.Object]bool
	report bool // false: propagate only; true: emit diagnostics
	grew   bool // taint set grew this pass
}

func checkPageCallback(pass *Pass, method string, fn *ast.FuncLit) {
	w := &escWalker{pass: pass, method: method, fn: fn,
		locals: map[*ast.Object]bool{}, taint: map[*ast.Object]bool{}}

	// Seed: the []byte parameters. A parameter named _ cannot escape.
	for _, field := range fn.Type.Params.List {
		if at, ok := field.Type.(*ast.ArrayType); !ok || at.Len != nil {
			continue
		}
		for _, name := range field.Names {
			if name.Obj != nil {
				w.taint[name.Obj] = true
			}
		}
	}
	if len(w.taint) == 0 {
		return
	}

	// Every object declared within the callback is local to it.
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Obj == nil {
			return true
		}
		if decl, ok := id.Obj.Decl.(ast.Node); ok &&
			decl.Pos() >= fn.Pos() && decl.End() <= fn.End() {
			w.locals[id.Obj] = true
		}
		return true
	})

	// Propagate taint through local assignments to a fixpoint, then
	// report. The loop is bounded by the number of locals.
	for {
		w.grew = false
		w.walk(fn.Body)
		if !w.grew {
			break
		}
	}
	w.report = true
	w.walk(fn.Body)
}

func (w *escWalker) escape(pos token.Pos, how string) {
	if w.report {
		w.pass.Reportf(pos, "page buffer escapes the %s callback (%s); the slice is only valid until the callback returns — copy out instead", w.method, how)
	}
}

// tainted reports whether e may alias the page buffer.
func (w *escWalker) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Obj != nil && w.taint[e.Obj]
	case *ast.ParenExpr:
		return w.tainted(e.X)
	case *ast.SliceExpr:
		return w.tainted(e.X)
	case *ast.StarExpr:
		return w.tainted(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && w.tainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append is the one builtin that can smuggle an alias out:
		// append(xs, p) stores the slice header; append(bs, p...)
		// copies the bytes and is clean. Appending anything to a
		// tainted slice aliases its backing array.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if w.tainted(e.Args[0]) {
				return true
			}
			if e.Ellipsis == token.NoPos {
				for _, a := range e.Args[1:] {
					if w.tainted(a) {
						return true
					}
				}
			}
		}
		// All other call results are treated as copies (see PagerPin doc).
		return false
	default:
		return false
	}
}

// baseIdent unwraps an lvalue chain (x.f[i].g) to its root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (w *escWalker) markTaint(obj *ast.Object) {
	if obj != nil && !w.taint[obj] {
		w.taint[obj] = true
		w.grew = true
	}
}

// walk visits the callback body, propagating taint (and, on the report
// pass, flagging escapes).
func (w *escWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.SendStmt:
			if w.tainted(n.Value) {
				w.escape(n.Pos(), "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if w.tainted(r) {
					w.escape(r.Pos(), "returned")
				}
			}
		case *ast.GoStmt:
			if w.referencesTaint(n.Call) {
				w.escape(n.Pos(), "captured by a goroutine")
			}
			return false // reported as a whole; don't re-flag inner statements
		case *ast.FuncLit:
			if n == w.fn {
				return true
			}
			// A nested closure referencing the buffer is safe only when
			// invoked in place; anything else may run after the frame is
			// unpinned.
			if !w.immediatelyInvoked(n) && w.referencesTaint(n) {
				w.escape(n.Pos(), "captured by a closure that may outlive the callback")
				return false
			}
		}
		return true
	})
}

// assign handles one assignment statement: taints locals bound to the
// buffer and flags stores that put an alias into longer-lived memory.
func (w *escWalker) assign(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0] // multi-value: a call result, treated as a copy
		}
		if rhs == nil || !w.tainted(rhs) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if l.Obj != nil && w.locals[l.Obj] {
				w.markTaint(l.Obj)
			} else {
				w.escape(st.Pos(), "assigned to "+l.Name+", declared outside the callback")
			}
		default:
			// Store through a field, index or pointer: safe only when the
			// root of the lvalue is itself callback-local (then the alias
			// lives in a container we keep tracking).
			if base := baseIdent(lhs); base != nil && base.Obj != nil && w.locals[base.Obj] {
				w.markTaint(base.Obj)
			} else {
				w.escape(st.Pos(), "stored into memory that outlives the callback")
			}
		}
	}
}

// referencesTaint reports whether any identifier under n resolves to a
// tainted object.
func (w *escWalker) referencesTaint(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Obj != nil && w.taint[id.Obj] {
			found = true
		}
		return !found
	})
	return found
}

// immediatelyInvoked reports whether fl appears as fn in fn(...) — an
// in-place call that cannot outlive the enclosing callback.
func (w *escWalker) immediatelyInvoked(fl *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(w.fn, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == fl {
			invoked = true
		}
		return !invoked
	})
	return invoked
}
