package closecheck

import "os"

// teardown handles or explicitly discards every error.
func teardown(f, tmp *os.File) error {
	defer f.Close() // deferred best-effort cleanup is accepted
	_ = tmp.Close() // explicit discard is visible at the call site
	if err := tmp.Sync(); err != nil {
		return err
	}
	return f.Sync()
}

type conn struct{}

func (conn) Close(reason string) {}

// closeWithArgs: a Close that takes arguments is a different API with
// nothing to check.
func closeWithArgs(c conn) {
	c.Close("shutdown")
}
