// Package closecheck holds the positive fixtures for the closecheck
// analyzer: bare teardown calls whose error vanishes.
package closecheck

import "os"

// shutdown drops every teardown error on the floor.
func shutdown(f *os.File) {
	f.Sync()  // want "Sync error discarded silently"
	f.Close() // want "Close error discarded silently"
}

type writer struct{}

func (writer) Flush() error { return nil }

func flushAll(w writer) {
	w.Flush() // want "Flush error discarded silently"
}
