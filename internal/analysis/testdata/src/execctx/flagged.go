// Package relstore (fixture) holds the positive fixtures for the
// execctx analyzer: measured entry points that drop the per-query
// context, and package-level counter state.
package relstore

import "sync/atomic"

type Relation struct{}

type ExecContext struct{}

type Locator struct{}

type Counters struct{ Pages uint64 }

var pagesRead atomic.Uint64 // want "package-level atomic.Uint64 is shared counter state"

var totals Counters // want "package-level Counters is shared counter state"

var globalCtx = &ExecContext{} // want "package-level ExecContext is shared counter state"

// ScanTag is a measured entry point but drops the context: its page
// and record counters have nowhere per-query to go.
func (r *Relation) ScanTag(tagID uint32) error { // want "ScanTag must take"
	return nil
}

// DistinctPLabels records counters but takes no context at all.
func (r *Relation) DistinctPLabels() []string { // want "records execution counters but takes no"
	return nil
}

// Get takes the context, but not first.
func (r *Relation) Get(loc Locator, ctx *ExecContext) error { // want "Get must take"
	return nil
}
