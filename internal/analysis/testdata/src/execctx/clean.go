package relstore

// ScanStartRange threads the per-query context first, as every
// measured entry point must.
func (r *Relation) ScanStartRange(ctx *ExecContext, lo, hi uint32) error {
	return nil
}

// scanClusterBatch is unexported: internal helpers are not measured
// entry points (their callers already hold the context).
func (r *Relation) scanClusterBatch(from, to []byte) error {
	return nil
}

// Kind is exported but not a measured entry point.
func (r *Relation) Kind() int { return 0 }

// perQuery: counter state inside a function is fine — only
// package-level state is shared across queries.
func perQuery() *ExecContext {
	ctx := &ExecContext{}
	return ctx
}
