package lockescape

import "sync"

type cleanShard struct {
	mu    sync.Mutex
	pages pool
	pins  int
}

// pinThenCall is the contract pager.View upholds: pin under the lock,
// release it, then run the callback against the pinned frame.
func (s *cleanShard) pinThenCall(fn func([]byte) error) error {
	s.mu.Lock()
	s.pins++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.pins--
		s.mu.Unlock()
	}()
	return fn(nil)
}

// allocUnlocked performs its pool calls outside the critical section.
func (s *cleanShard) allocUnlocked() (uint32, error) {
	pg, err := s.pages.Alloc()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.pins++
	s.mu.Unlock()
	return pg, nil
}

// pairedInBranch: every path unlocks before the pool call that follows
// the critical section.
func (s *cleanShard) pairedInBranch(evict bool) (uint32, error) {
	s.mu.Lock()
	if evict {
		s.pins = 0
	}
	s.mu.Unlock()
	return s.pages.Alloc()
}
