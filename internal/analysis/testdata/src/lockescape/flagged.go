// Package lockescape holds the positive fixtures for the lockescape
// analyzer: pool re-entry and user callbacks run while a shard lock is
// held.
package lockescape

import "sync"

type pool struct{}

func (pool) View(pg uint32, fn func([]byte) error) error { return fn(nil) }

func (pool) Alloc() (uint32, error) { return 0, nil }

type shard struct {
	mu    sync.Mutex
	pages pool
	pins  int
}

// reentry re-enters the pool while the shard lock is held: if View
// needs the same shard it deadlocks.
func (s *shard) reentry(pg uint32) error {
	s.mu.Lock()
	err := s.pages.View(pg, func(p []byte) error { return nil }) // want "View called while s.mu is held"
	s.mu.Unlock()
	return err
}

// callbackUnderLock runs the user callback inside the critical section
// instead of pinning the frame and unlocking first.
func (s *shard) callbackUnderLock(fn func([]byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(nil) // want "callback fn invoked while s.mu is held"
}

// branchUnlock: the early-return branch unlocks, but the fall-through
// path still holds the lock when it re-enters the pool.
func (s *shard) branchUnlock(full bool) (uint32, error) {
	s.mu.Lock()
	if full {
		s.mu.Unlock()
		return 0, nil
	}
	pg, err := s.pages.Alloc() // want "Alloc called while s.mu is held"
	s.mu.Unlock()
	return pg, err
}

// loopedCallback: held state reaches into loop bodies.
func (s *shard) loopedCallback(fns []func([]byte) error, fn func([]byte) error) {
	s.mu.Lock()
	for range fns {
		_ = fn(nil) // want "callback fn invoked while s.mu is held"
	}
	s.mu.Unlock()
}
