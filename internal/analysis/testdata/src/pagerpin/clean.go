package pagerpin

// cleanCopy copies out of the page before the callback returns — the
// canonical decode pattern (string conversion and ellipsis append both
// copy the bytes).
func cleanCopy(f pager) (string, []byte, error) {
	var name string
	buf := make([]byte, 0, 16)
	err := f.View(7, func(p []byte) error {
		name = string(p[2:10])
		buf = append(buf, p[8:16]...)
		return nil
	})
	return name, buf, err
}

// cleanLocal aliases stay local: scratch lives and dies inside the
// callback.
func cleanLocal(f pager) error {
	return f.View(3, func(p []byte) error {
		hdr := p[:16]
		n := int(hdr[0])
		_ = n
		return nil
	})
}

// cleanLocalContainer: storing the alias into a callback-local
// container is fine; the container never leaves either.
func cleanLocalContainer(f pager) error {
	return f.View(3, func(p []byte) error {
		var scratch record
		scratch.raw = p[:8]
		scratch.name = string(scratch.raw)
		return nil
	})
}

// cleanCallResult: function-call results are copies under the pin
// contract (every in-tree decoder copies out of the page).
func cleanCallResult(f pager) error {
	var total int
	return f.View(4, func(p []byte) error {
		total += len(p)
		_ = total
		return nil
	})
}
