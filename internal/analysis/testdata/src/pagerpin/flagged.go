// Package pagerpin holds the positive fixtures for the pagerpin
// analyzer: every way a View/ViewCounted/Update callback can leak the
// page buffer past the callback's return.
package pagerpin

type pager struct{}

func (pager) View(pg uint32, fn func([]byte) error) error { return fn(nil) }

func (pager) Update(pg uint32, fn func([]byte) error) error { return fn(nil) }

func (pager) ViewCounted(pg uint32, fn func([]byte) ([]byte, error)) ([]byte, error) {
	return fn(nil)
}

type record struct {
	raw  []byte
	name string
}

type holder struct{ buf []byte }

var keep []byte

var recs []record

var h holder

var ch = make(chan []byte, 1)

var deferred func()

// escapeDirect retains the raw page slice after the callback returns.
func escapeDirect(f pager) error {
	return f.View(7, func(p []byte) error {
		keep = p // want "assigned to keep, declared outside the callback"
		return nil
	})
}

// escapeSubslice: a sub-slice aliases the same frame.
func escapeSubslice(f pager) error {
	return f.View(7, func(p []byte) error {
		hdr := p[:16]
		keep = hdr // want "assigned to keep"
		return nil
	})
}

// escapeStruct smuggles the alias out inside a struct appended to a
// package-level slice.
func escapeStruct(f pager) error {
	return f.View(7, func(p []byte) error {
		r := record{raw: p[2:], name: "x"}
		recs = append(recs, r) // want "assigned to recs"
		return nil
	})
}

// escapeFieldStore writes the alias through a field of an outer value.
func escapeFieldStore(f pager) error {
	return f.Update(3, func(p []byte) error {
		h.buf = p // want "stored into memory that outlives the callback"
		return nil
	})
}

// escapeSend ships the slice to another goroutine.
func escapeSend(f pager) error {
	return f.View(1, func(p []byte) error {
		ch <- p[8:] // want "sent on a channel"
		return nil
	})
}

// escapeReturn returns an alias through the callback's results.
func escapeReturn(f pager) ([]byte, error) {
	return f.ViewCounted(9, func(p []byte) ([]byte, error) {
		return p[4:], nil // want "returned"
	})
}

// escapeGoroutine reads the buffer after the frame may be unpinned.
func escapeGoroutine(f pager) error {
	return f.View(1, func(p []byte) error {
		go func() { keep = p }() // want "captured by a goroutine"
		return nil
	})
}

// escapeClosure stores a closure over the buffer for a later call.
func escapeClosure(f pager) error {
	return f.View(2, func(p []byte) error {
		deferred = func() { keep = p } // want "captured by a closure that may outlive the callback"
		return nil
	})
}

// escapeNoCopy mirrors a relstore scan callback whose copy-out was
// deleted: the decoded record keeps pointing into the frame instead of
// copying out of it. This is the regression the CI gate exists for.
func escapeNoCopy(f pager) error {
	var rec record
	err := f.View(11, func(p []byte) error {
		rec = record{raw: p[4:20]} // want "assigned to rec"
		return nil
	})
	_ = rec
	return err
}

// suppressed: the one sanctioned //blas:ignore in the fixtures — the
// consumer here is (stipulated to be) synchronous and copying.
func suppressed(f pager) error {
	return f.View(5, func(p []byte) error {
		//blas:ignore pagerpin fixture stipulates a synchronous copying consumer
		keep = p
		return nil
	})
}
