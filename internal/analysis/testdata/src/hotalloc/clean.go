package hotalloc

import "fmt"

// notHot carries no annotation: fmt is fine off the hot path.
func notHot(a, b uint32) string {
	return fmt.Sprintf("%d/%d", a, b)
}

type key struct{ a, b uint32 }

// lookupStruct uses a comparable struct key — the sanctioned pattern
// (see twig.joinKey).
//
//blas:hotpath
func lookupStruct(counts map[key]int, a, b uint32) int {
	return counts[key{a, b}]
}

// failFast: error paths may use fmt.Errorf even on hot paths — error
// construction happens on paths that are about to abort.
//
//blas:hotpath
func failFast(n int) error {
	if n < 0 {
		return fmt.Errorf("hotalloc: bad batch size %d", n)
	}
	return nil
}

// concatOnce: a single concatenation outside any loop is tolerated.
//
//blas:hotpath
func concatOnce(prefix string) string {
	return prefix + ".pg"
}

// appendBytes: byte appends in loops are the replacement idiom, not a
// violation.
//
//blas:hotpath
func appendBytes(starts []uint32) string {
	b := make([]byte, 0, 4*len(starts))
	for _, s := range starts {
		b = append(b, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	return string(b)
}
