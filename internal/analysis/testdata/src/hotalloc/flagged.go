// Package hotalloc holds the positive fixtures for the hotalloc
// analyzer: the allocation patterns banned inside //blas:hotpath
// functions.
package hotalloc

import "fmt"

// describe formats on the hot path.
//
//blas:hotpath
func describe(a, b uint32) string {
	return fmt.Sprintf("%d/%d", a, b) // want "fmt.Sprintf on a //blas:hotpath function allocates per call"
}

// joinAll grows a string per iteration.
//
//blas:hotpath
func joinAll(parts []string) string {
	out := ""
	for _, p := range parts {
		_ = p
		out += "/" // want "string \\+= in a loop"
	}
	return out
}

// concatLoop rebuilds the accumulator per iteration.
//
//blas:hotpath
func concatLoop(parts []string) string {
	s := ""
	for i := 0; i < len(parts); i++ {
		s = s + "," // want "string concatenation in a loop"
	}
	return s
}

// lookup builds its map key by concatenation on every call.
//
//blas:hotpath
func lookup(counts map[string]int, a, b string) int {
	return counts[a+"/"+b] // want "string-built map key"
}

// lookupf builds its map key with fmt: both the formatting call and
// the key construction are flagged.
//
//blas:hotpath
func lookupf(counts map[string]int, a, b uint32) int {
	return counts[fmt.Sprintf("%d/%d", a, b)] // want "fmt.Sprintf" "string-built map key"
}

// nestedLoop: the loop context reaches through nested statements.
//
//blas:hotpath
func nestedLoop(rows [][]string) string {
	out := ""
	for _, row := range rows {
		for range row {
			if len(out) < 64 {
				out += "." // want "string \\+= in a loop"
			}
		}
	}
	return out
}
