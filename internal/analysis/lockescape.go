package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// LockEscape enforces the lock-scope discipline the sharded pager is
// built on: while a sync.Mutex/RWMutex is held, code must not re-enter
// the buffer pool and must not run user-supplied callbacks. View
// upholds this by pinning the frame and releasing the shard lock before
// the callback runs; a callback (or a nested pool request) issued under
// the lock can deadlock on the same shard or run user code inside a
// critical section.
//
// Held locks are tracked per function, syntactically, between
// x.Lock()/x.RLock() and the matching x.Unlock()/x.RUnlock() on the
// same lock expression; defer x.Unlock() holds the lock to the end of
// the function. An Unlock inside a conditional branch releases only
// within that branch (the fall-through path conservatively stays
// locked). While at least one lock is held the analyzer reports:
//
//   - calls to the pool entry points View, ViewCounted, Update,
//     ReadCounted, Alloc, DropCache and DropCaches;
//   - calls through a function-typed parameter of the enclosing
//     function — a user callback.
//
// Function literals are analyzed as their own scope: a goroutine body
// does not inherit the spawner's locks (it runs later), and lock pairs
// inside a deferred closure are matched within the closure.
var LockEscape = &Analyzer{
	Name: "lockescape",
	Doc:  "flag pool re-entry and user callbacks invoked while a mutex is held",
	Run:  runLockEscape,
}

// poolEntryPoints are the method names whose call under a held lock is
// reported (pool re-entry).
var poolEntryPoints = map[string]bool{
	"View": true, "ViewCounted": true, "Update": true,
	"ReadCounted": true, "Alloc": true, "DropCache": true, "DropCaches": true,
}

func runLockEscape(pass *Pass) error {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockScope(pass, fd.Type, fd.Body)
			}
		}
	}
	return nil
}

// checkLockScope analyzes one function (declaration or literal).
func checkLockScope(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, callbacks: funcParams(ft)}
	w.block(body.List, map[string]bool{})
}

// funcParams collects the function-typed parameter names of ft — the
// user callbacks that must not run under a lock.
func funcParams(ft *ast.FuncType) map[string]bool {
	out := map[string]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if _, ok := field.Type.(*ast.FuncType); !ok {
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

type lockWalker struct {
	pass      *Pass
	callbacks map[string]bool
}

// lockCallKind classifies a statement expression as a lock acquisition
// or release and returns the lock's printed receiver expression.
func lockCallKind(e ast.Expr) (key string, acquire, release bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return exprString(sel.X), false, true
	}
	return "", false, false
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// block walks one statement list, threading the held-lock set. Nested
// control-flow bodies get a copy of the set: a branch that unlocks and
// returns must not clear the lock on the fall-through path.
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if key, acq, rel := lockCallKind(st.X); acq {
				held[key] = true
				continue
			} else if rel {
				delete(held, key)
				continue
			}
			w.check(st.X, held)
		case *ast.DeferStmt:
			if _, _, rel := lockCallKind(st.Call); rel {
				continue // lock held to the end of the function
			}
			w.check(st.Call, held)
		case *ast.BlockStmt:
			w.block(st.List, held)
		case *ast.IfStmt:
			if st.Init != nil {
				w.check(st.Init, held)
			}
			w.check(st.Cond, held)
			w.block(st.Body.List, copyHeld(held))
			if st.Else != nil {
				w.block([]ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if st.Init != nil {
				w.check(st.Init, held)
			}
			w.block(st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			w.check(st.X, held)
			w.block(st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if st.Init != nil {
				w.check(st.Init, held)
			}
			w.caseBodies(st.Body, held)
		case *ast.TypeSwitchStmt:
			w.caseBodies(st.Body, held)
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.block(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			w.block([]ast.Stmt{st.Stmt}, held)
		default:
			w.check(s, held)
		}
	}
}

func (w *lockWalker) caseBodies(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			w.block(cc.Body, copyHeld(held))
		}
	}
}

// check inspects a node for denied calls under held locks, descending
// into expressions but analyzing nested function literals as fresh
// scopes.
func (w *lockWalker) check(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			checkLockScope(w.pass, m.Type, m.Body)
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			switch fun := m.Fun.(type) {
			case *ast.SelectorExpr:
				if poolEntryPoints[fun.Sel.Name] {
					w.pass.Reportf(m.Pos(), "%s called while %s is held: pool re-entry under a lock can deadlock on the shard; release the lock (pin the frame) first", fun.Sel.Name, heldNames(held))
				}
			case *ast.Ident:
				if w.callbacks[fun.Name] {
					w.pass.Reportf(m.Pos(), "callback %s invoked while %s is held; run user callbacks outside the critical section (pin, unlock, then call)", fun.Name, heldNames(held))
				}
			}
		}
		return true
	})
}

func heldNames(held map[string]bool) string {
	if len(held) == 1 {
		for k := range held {
			return k
		}
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	// Small sets; insertion order is map order — sort for determinism.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := keys[0]
	for _, k := range keys[1:] {
		out += ", " + k
	}
	return out
}
