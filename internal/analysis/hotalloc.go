package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// HotAlloc bans the allocation patterns that once cost the twig merge
// its speed (the PR-5 joinKey rewrite replaced fmt-built string map
// keys) inside functions annotated //blas:hotpath:
//
//   - fmt.Sprintf / Sprint / Sprintln / Appendf calls — every call
//     allocates and reflects over its operands. fmt.Errorf is exempt:
//     error construction happens on paths that are about to abort.
//   - string concatenation inside loops (a + "x", s += "y") — each
//     iteration reallocates the accumulated string.
//   - string-built map keys (m[a+"/"+b], m[fmt.Sprintf(...)]) — the
//     key is allocated per lookup; use a comparable struct key like
//     twig.joinKey instead.
//
// The annotation is a directive line in the function's doc comment:
//
//	//blas:hotpath
//
// Nested function literals inherit the enclosing annotation. The
// zero-alloc benchmark guards (BenchmarkJoinKey, BenchmarkTraceOff)
// prove the annotated paths allocate nothing; this analyzer keeps the
// class of regression out at review time, and the TestHotpathAnnotations
// tests in twig and obs fail if the annotations drift off the
// benchmarked functions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "ban fmt formatting, in-loop string concatenation and string-built map keys in //blas:hotpath functions",
	Run:  runHotAlloc,
}

// HotpathDirective is the annotation marking a function as part of a
// zero-alloc hot path.
const HotpathDirective = "//blas:hotpath"

// hasHotpath reports whether a doc comment carries the annotation.
func hasHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files() {
		fmtName := importName(f, "fmt")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpath(fd.Doc) {
				continue
			}
			checkHotBody(pass, fmtName, fd.Body, false)
		}
	}
	return nil
}

// importName returns the local identifier for the given import path in
// f, or "" when the file does not import it.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// fmtAllocFuncs are the fmt functions banned on hot paths (Errorf is
// allowed: see HotAlloc).
var fmtAllocFuncs = map[string]bool{"Sprintf": true, "Sprint": true, "Sprintln": true, "Appendf": true}

// checkHotBody walks one annotated body. inLoop tracks whether the
// current node sits inside a for/range statement of the hot function.
func checkHotBody(pass *Pass, fmtName string, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if m == n {
				return true
			}
			checkHotBody(pass, fmtName, loopBody(m), true)
			return false
		case *ast.CallExpr:
			if name := fmtCallName(m, fmtName); name != "" {
				pass.Reportf(m.Pos(), "fmt.%s on a %s function allocates per call; build the value without fmt (error paths may use fmt.Errorf)", name, HotpathDirective)
			}
		case *ast.BinaryExpr:
			if inLoop && m.Op == token.ADD && containsStringLit(m) {
				pass.Reportf(m.Pos(), "string concatenation in a loop on a %s function reallocates per iteration; use a byte buffer or a comparable key", HotpathDirective)
			}
		case *ast.AssignStmt:
			if inLoop && m.Tok == token.ADD_ASSIGN && len(m.Rhs) == 1 && containsStringLit(m.Rhs[0]) {
				pass.Reportf(m.Pos(), "string += in a loop on a %s function reallocates per iteration; use a byte buffer", HotpathDirective)
			}
		case *ast.IndexExpr:
			if isStringBuiltKey(m.Index, fmtName) {
				pass.Reportf(m.Index.Pos(), "string-built map key on a %s function allocates per lookup; use a comparable struct key (see twig.joinKey)", HotpathDirective)
			}
		}
		return true
	})
}

func loopBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return n
}

// fmtCallName returns the banned fmt function name called by e, if any.
func fmtCallName(e *ast.CallExpr, fmtName string) string {
	sel, ok := e.Fun.(*ast.SelectorExpr)
	if !ok || fmtName == "" || !fmtAllocFuncs[sel.Sel.Name] {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == fmtName && id.Obj == nil {
		return sel.Sel.Name
	}
	return ""
}

// containsStringLit reports whether a +-chain contains a string literal
// operand — the syntactic signature of string concatenation (operand
// types are not available without a type-checker).
func containsStringLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING
	case *ast.ParenExpr:
		return containsStringLit(e.X)
	case *ast.BinaryExpr:
		return e.Op == token.ADD && (containsStringLit(e.X) || containsStringLit(e.Y))
	}
	return false
}

// isStringBuiltKey reports whether an index expression is built by
// string concatenation or fmt formatting.
func isStringBuiltKey(idx ast.Expr, fmtName string) bool {
	switch idx := idx.(type) {
	case *ast.BinaryExpr:
		return idx.Op == token.ADD && containsStringLit(idx)
	case *ast.CallExpr:
		return fmtCallName(idx, fmtName) != ""
	}
	return false
}
