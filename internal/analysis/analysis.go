// Package analysis is blasvet's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// Analyzer/Pass shape (the module vendors nothing, so the real framework
// is not available), plus the suite of BLAS-specific analyzers that
// machine-check the engine's concurrency and hot-path contracts:
//
//   - pagerpin:   the pager pin contract — callbacks passed to
//     pager.View/ViewCounted/Update must not let the page buffer
//     escape (copy out, never retain).
//   - hotalloc:   no fmt.Sprintf-style formatting, no string
//     concatenation in loops and no string-built map keys inside
//     functions annotated //blas:hotpath.
//   - lockescape: no buffer-pool re-entry and no user callbacks while
//     a mutex is held (the invariant View upholds by pinning the frame
//     and releasing the shard lock before the callback runs).
//   - execctx:    relstore/pbtree/pager entry points that record
//     counters must thread a per-query *relstore.ExecContext instead
//     of package-level counter state.
//   - closecheck: the error returned by a bare x.Close()/Flush()/Sync()
//     statement must be checked or explicitly assigned to _.
//
// The analyzers are syntactic: packages are parsed, not type-checked
// (the toolchain's export data is not loadable without the x/tools
// loader), so each analyzer matches the idioms this codebase actually
// uses and is tuned to be quiet on the real tree. False positives are
// suppressed with a //blas:ignore directive:
//
//	//blas:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory, the analyzer name must exist, and a directive that
// suppresses nothing is itself an error — suppressions cannot rot
// silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one blasvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //blas:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// All returns the full blasvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{PagerPin, HotAlloc, LockEscape, ExecCtx, CloseCheck}
}

// byName resolves an analyzer name from a //blas:ignore directive.
func byName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the file set the package was parsed into.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// IgnoreDirective is the parsed form of a //blas:ignore comment.
const ignorePrefix = "//blas:ignore"

type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
	bad      string // non-empty: the directive itself is malformed
}

// parseIgnores collects the //blas:ignore directives of every file.
func parseIgnores(pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				d := &ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				d.analyzer = name
				d.reason = strings.TrimSpace(reason)
				switch {
				case d.analyzer == "":
					d.bad = "missing analyzer name: want //blas:ignore <analyzer> <reason>"
				case byName(d.analyzer) == nil:
					d.bad = fmt.Sprintf("unknown analyzer %q", d.analyzer)
				case d.reason == "":
					d.bad = fmt.Sprintf("missing reason: want //blas:ignore %s <reason>", d.analyzer)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// RunPackage applies analyzers to pkg and returns the surviving
// diagnostics: findings not suppressed by a well-formed //blas:ignore
// directive on the same or the preceding line, plus one diagnostic for
// every malformed or unused directive.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := parseIgnores(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	diags:
		for _, d := range pass.diags {
			for _, ig := range ignores {
				if ig.bad != "" || ig.analyzer != d.Analyzer || ig.pos.Filename != d.Pos.Filename {
					continue
				}
				if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
					ig.used = true
					continue diags
				}
			}
			out = append(out, d)
		}
	}
	for _, ig := range ignores {
		switch {
		case ig.bad != "":
			out = append(out, Diagnostic{Analyzer: "blasvet", Pos: ig.pos, Message: "malformed //blas:ignore: " + ig.bad})
		case !ig.used:
			out = append(out, Diagnostic{Analyzer: "blasvet", Pos: ig.pos,
				Message: fmt.Sprintf("//blas:ignore %s suppresses nothing; delete it", ig.analyzer)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
