package analysis

import "go/ast"

// CloseCheck is an errcheck-style analyzer scoped to the resource
// teardown methods whose errors this codebase has actually dropped:
// a bare statement-position call to Close, Flush or Sync discards an
// error that can carry real data loss (a failed fsync on the store
// files, an unflushed result writer at blasd shutdown). The call must
// either use the error (if err := f.Close(); ... / return f.Close())
// or discard it explicitly with `_ = f.Close()` so the drop is visible
// at the call site. defer f.Close() is accepted: Go offers no
// non-contorted way to check a deferred error, and the deferred form
// marks best-effort cleanup.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "flag bare Close/Flush/Sync statements that silently drop the returned error",
	Run:  runCloseCheck,
}

// teardownMethods are the checked method names.
var teardownMethods = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runCloseCheck(pass *Pass) error {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !teardownMethods[sel.Sel.Name] {
				return true
			}
			pass.Reportf(st.Pos(), "%s error discarded silently; handle it or write `_ = %s.%s()` to make the drop explicit", sel.Sel.Name, exprString(sel.X), sel.Sel.Name)
			return true
		})
	}
	return nil
}
