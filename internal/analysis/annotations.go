package analysis

import (
	"go/ast"
	"go/token"
)

// HotpathFuncs returns the names of the functions in the package at dir
// annotated //blas:hotpath. The zero-alloc drift tests in internal/twig
// and internal/obs use this to assert the annotation set and the
// benchmark guards cover the same functions — an annotation that drifts
// off a benchmarked function fails the test loudly.
func HotpathFuncs(dir string) (map[string]bool, error) {
	pkg, err := LoadDir(token.NewFileSet(), dir, dir)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	if pkg == nil {
		return out, nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasHotpath(fd.Doc) {
				out[fd.Name.Name] = true
			}
		}
	}
	return out, nil
}
