// Package plabel implements P-labeling (paper §3.2).
//
// P-labeling assigns every XML node an integer that encodes the node's
// source path SP(n) — the tag sequence from the root down to the node —
// such that evaluating a suffix path query ("//a/b/c" or "/a/b/c") reduces
// to a single range (or equality) predicate over node labels.
//
// # Construction
//
// The paper partitions an integer interval [0, m-1] recursively: the top
// level is split by the *last* tag of the path, each sub-interval by the
// tag before it, and so on; the ratio r_i assigned to each tag (and to the
// path terminator "/") controls the sub-interval widths (Algorithms 1
// and 2). With uniform ratios the label of a node is, equivalently, the
// number whose base-(n+1) digit string — most significant digit first —
// is the *reversed* source path: own tag, parent tag, ..., root tag,
// followed by the terminator digit 0.
//
// This implementation chooses m = 2^128 and per-tag ratio 1/2^k with
// 2^k >= n+1, so each "digit" is an exact k-bit field of a Uint128 and
// Algorithms 1 and 2 become shifts and masks. Power-of-two ratios are a
// valid instance of Definition 3.2: intervals still nest and are disjoint
// exactly as the paper requires; the unused slack merely wastes label
// space. Digit 0 is reserved for the terminator "/"; tags get digits
// 1..n in sorted order (the paper notes the particular order is
// irrelevant).
//
// A document of depth h fits iff h <= 128/k. For the paper's data sets:
// Shakespeare (19 tags, k=5) allows depth 25; Protein (66 tags, k=7)
// depth 18; Auction (77 tags, k=7) depth 18 — all comfortably above the
// observed depths (7, 7, 12).
package plabel

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/uint128"
)

// Scheme is a P-labeling for a fixed tag universe.
type Scheme struct {
	tags    []string       // sorted; digit of tags[i] is i+1
	index   map[string]int // tag -> digit (1-based)
	bitsPer uint           // k: bits per digit
	slots   int            // D: number of whole digits in 128 bits
}

// NewScheme builds a scheme over the given tag universe. Tags are
// deduplicated and sorted, so any ordering of the input yields the same
// scheme.
func NewScheme(tags []string) (*Scheme, error) {
	set := map[string]bool{}
	for _, t := range tags {
		if t == "" {
			return nil, fmt.Errorf("plabel: empty tag")
		}
		set[t] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("plabel: no tags")
	}
	uniq := make([]string, 0, len(set))
	for t := range set {
		uniq = append(uniq, t)
	}
	sort.Strings(uniq)

	// k bits must represent digits 0..n, i.e. 2^k >= n+1.
	k := uint(bits.Len(uint(len(uniq)))) // Len(n) gives smallest k with 2^k > n, so 2^k >= n+1
	if k == 0 {
		k = 1
	}
	s := &Scheme{
		tags:    uniq,
		index:   make(map[string]int, len(uniq)),
		bitsPer: k,
		slots:   int(128 / k),
	}
	for i, t := range uniq {
		s.index[t] = i + 1
	}
	return s, nil
}

// NumTags returns the number of distinct tags.
func (s *Scheme) NumTags() int { return len(s.tags) }

// Tags returns the tag universe in digit order (digit i+1 = Tags()[i]).
func (s *Scheme) Tags() []string { return append([]string(nil), s.tags...) }

// BitsPerTag returns the digit width k.
func (s *Scheme) BitsPerTag() uint { return s.bitsPer }

// MaxDepth returns the deepest node level the scheme can label.
func (s *Scheme) MaxDepth() int { return s.slots }

// TagDigit returns the digit assigned to tag.
func (s *Scheme) TagDigit(tag string) (int, bool) {
	d, ok := s.index[tag]
	return d, ok
}

// digitShifted places digit d in slot (0 = most significant).
func (s *Scheme) digitShifted(d int, slot int) uint128.Uint128 {
	return uint128.From64(uint64(d)).Lsh(128 - s.bitsPer*uint(slot+1))
}

// Labeler assigns P-labels to nodes during a depth-first document walk
// (the streaming form of the paper's Algorithm 2: the interval-partition
// stack reduces to "shift the parent's label one digit down and prepend
// your own tag digit").
type Labeler struct {
	s     *Scheme
	stack []uint128.Uint128
}

// NewLabeler returns a Labeler for s.
func (s *Scheme) NewLabeler() *Labeler { return &Labeler{s: s} }

// Enter pushes an element with the given tag and returns its P-label.
func (l *Labeler) Enter(tag string) (uint128.Uint128, error) {
	d, ok := l.s.index[tag]
	if !ok {
		return uint128.Zero, fmt.Errorf("plabel: tag %q not in scheme", tag)
	}
	if len(l.stack)+1 > l.s.slots {
		return uint128.Zero, fmt.Errorf("plabel: depth %d exceeds scheme capacity %d (tag %q)",
			len(l.stack)+1, l.s.slots, tag)
	}
	var label uint128.Uint128
	if len(l.stack) == 0 {
		label = l.s.digitShifted(d, 0)
	} else {
		parent := l.stack[len(l.stack)-1]
		label = parent.Rsh(l.s.bitsPer).Or(l.s.digitShifted(d, 0))
	}
	l.stack = append(l.stack, label)
	return label, nil
}

// Leave pops the current element.
func (l *Labeler) Leave() {
	if len(l.stack) == 0 {
		panic("plabel: Leave without matching Enter")
	}
	l.stack = l.stack[:len(l.stack)-1]
}

// Depth returns the number of open elements.
func (l *Labeler) Depth() int { return len(l.stack) }

// LabelPath returns the P-label a node with the given source path (root
// tag first) would receive.
func (s *Scheme) LabelPath(path []string) (uint128.Uint128, error) {
	l := s.NewLabeler()
	var last uint128.Uint128
	for _, t := range path {
		var err error
		last, err = l.Enter(t)
		if err != nil {
			return uint128.Zero, err
		}
	}
	if len(path) == 0 {
		return uint128.Zero, fmt.Errorf("plabel: empty path")
	}
	return last, nil
}

// Query is a suffix path expression: an optional leading descendant step
// followed by child steps (paper Definition 2.3). Tags are in document
// order, root side first.
type Query struct {
	Absolute bool     // true: begins with "/", false: begins with "//"
	Tags     []string // at least one tag
}

// String renders the query in XPath syntax.
func (q Query) String() string {
	sep := "//"
	if q.Absolute {
		sep = "/"
	}
	return sep + strings.Join(q.Tags, "/")
}

// Range is the P-label interval of a suffix path query: a node n matches
// iff Lo <= n.plabel <= Hi (paper Proposition 3.2). If Exact is true the
// query is a simple (absolute) path and every matching node's label
// equals Lo, so an equality predicate suffices. Empty marks a query that
// can match no node (unknown tag or over-deep path).
type Range struct {
	Lo    uint128.Uint128
	Hi    uint128.Uint128
	Exact bool
	Empty bool
}

// Contains reports whether label falls in the range.
func (r Range) Contains(label uint128.Uint128) bool {
	if r.Empty {
		return false
	}
	return r.Lo.Leq(label) && label.Leq(r.Hi)
}

// QueryRange computes the P-label interval for a suffix path query
// (paper Algorithm 1).
func (s *Scheme) QueryRange(q Query) (Range, error) {
	if len(q.Tags) == 0 {
		return Range{}, fmt.Errorf("plabel: query has no tags")
	}
	n := len(q.Tags)
	steps := n
	if q.Absolute {
		steps++ // the terminator "/" consumes one more digit
	}
	if n > s.slots {
		// No node can be that deep under this scheme; the query matches
		// nothing.
		return Range{Empty: true}, nil
	}
	var lo uint128.Uint128
	for i, t := range q.Tags {
		d, ok := s.index[t]
		if !ok {
			return Range{Empty: true}, nil
		}
		// Slot 0 holds the query's last tag; tag i (root side) lands in
		// slot n-1-i.
		lo = lo.Or(s.digitShifted(d, n-1-i))
	}
	// Free bits below the fixed digits (the terminator digit, when
	// absolute, is 0 and therefore already present in lo).
	freeBits := 128 - int(s.bitsPer)*steps
	if freeBits < 0 {
		freeBits = 0
	}
	hi := lo.Or(lowMask(uint(freeBits)))
	return Range{Lo: lo, Hi: hi, Exact: q.Absolute}, nil
}

// lowMask returns a value with the low n bits set.
func lowMask(n uint) uint128.Uint128 {
	if n >= 128 {
		return uint128.Max
	}
	return uint128.One.Lsh(n).Sub(uint128.One)
}

// DecodePath reconstructs the source path (root tag first) encoded in a
// node label. It is the inverse of LabelPath and exists for debugging and
// tests.
func (s *Scheme) DecodePath(label uint128.Uint128) ([]string, error) {
	var rev []string // own tag first
	for slot := 0; slot < s.slots; slot++ {
		shift := 128 - s.bitsPer*uint(slot+1)
		d := label.Rsh(shift).And(lowMask(s.bitsPer)).Lo
		if d == 0 {
			break
		}
		if int(d) > len(s.tags) {
			return nil, fmt.Errorf("plabel: digit %d out of range in slot %d", d, slot)
		}
		rev = append(rev, s.tags[d-1])
	}
	if len(rev) == 0 {
		return nil, fmt.Errorf("plabel: label encodes no path")
	}
	// Verify no stray low bits below the decoded digits.
	check, err := s.LabelPath(reverse(rev))
	if err != nil {
		return nil, err
	}
	if check.Cmp(label) != 0 {
		return nil, fmt.Errorf("plabel: label has non-canonical trailing bits")
	}
	return reverse(rev), nil
}

func reverse(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[len(ss)-1-i] = s
	}
	return out
}
