package plabel

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/uint128"
)

func scheme(t *testing.T, tags ...string) *Scheme {
	t.Helper()
	s, err := NewScheme(tags)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme(nil); err == nil {
		t.Fatal("empty tag set accepted")
	}
	if _, err := NewScheme([]string{""}); err == nil {
		t.Fatal("empty tag accepted")
	}
	s := scheme(t, "b", "a", "b") // dedup + sort
	if s.NumTags() != 2 {
		t.Fatalf("NumTags = %d", s.NumTags())
	}
	if got := s.Tags(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Tags = %v", got)
	}
}

func TestBitsPerTag(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {19, 5}, {66, 7}, {77, 7}, {127, 7}, {128, 8},
	}
	for _, c := range cases {
		tags := make([]string, c.n)
		for i := range tags {
			tags[i] = strings.Repeat("t", i+1)
		}
		s := scheme(t, tags...)
		if s.BitsPerTag() != c.want {
			t.Errorf("n=%d: bits = %d, want %d", c.n, s.BitsPerTag(), c.want)
		}
		// 2^k >= n+1
		if 1<<s.BitsPerTag() < c.n+1 {
			t.Errorf("n=%d: 2^%d < n+1", c.n, s.BitsPerTag())
		}
		if s.MaxDepth() != int(128/s.BitsPerTag()) {
			t.Errorf("n=%d: MaxDepth = %d", c.n, s.MaxDepth())
		}
	}
}

func TestLabelerMatchesLabelPath(t *testing.T) {
	s := scheme(t, "a", "b", "c")
	l := s.NewLabeler()
	la, err := l.Enter("a")
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := l.Enter("b")
	lc, _ := l.Enter("c")
	l.Leave()
	lb2, _ := l.Enter("b")

	if p, _ := s.LabelPath([]string{"a"}); p != la {
		t.Fatal("LabelPath(a) mismatch")
	}
	if p, _ := s.LabelPath([]string{"a", "b"}); p != lb {
		t.Fatal("LabelPath(a/b) mismatch")
	}
	if p, _ := s.LabelPath([]string{"a", "b", "c"}); p != lc {
		t.Fatal("LabelPath(a/b/c) mismatch")
	}
	if p, _ := s.LabelPath([]string{"a", "b", "b"}); p != lb2 {
		t.Fatal("LabelPath(a/b/b) mismatch")
	}
	// Sibling sub-paths with the same tags get the same label.
	if lb2 == lb {
		t.Fatal("a/b and a/b/b must differ")
	}
}

func TestEnterUnknownTag(t *testing.T) {
	s := scheme(t, "a")
	l := s.NewLabeler()
	if _, err := l.Enter("zzz"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestDepthOverflow(t *testing.T) {
	s := scheme(t, "a") // 1 bit per tag -> 128 slots
	l := s.NewLabeler()
	for i := 0; i < s.MaxDepth(); i++ {
		if _, err := l.Enter("a"); err != nil {
			t.Fatalf("Enter at depth %d: %v", i+1, err)
		}
	}
	if _, err := l.Enter("a"); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestLeavePanics(t *testing.T) {
	s := scheme(t, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.NewLabeler().Leave()
}

func TestQueryRangeBasics(t *testing.T) {
	s := scheme(t, "a", "b", "c")

	// Unknown tag -> empty.
	r, err := s.QueryRange(Query{Tags: []string{"nope"}})
	if err != nil || !r.Empty {
		t.Fatalf("unknown tag: %+v, %v", r, err)
	}
	// No tags -> error.
	if _, err := s.QueryRange(Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
	// Over-deep query -> empty.
	deep := make([]string, s.MaxDepth()+1)
	for i := range deep {
		deep[i] = "a"
	}
	r, err = s.QueryRange(Query{Tags: deep})
	if err != nil || !r.Empty {
		t.Fatalf("over-deep: %+v, %v", r, err)
	}
	// Absolute queries are exact.
	r, _ = s.QueryRange(Query{Absolute: true, Tags: []string{"a", "b"}})
	if !r.Exact {
		t.Fatal("absolute query should be exact")
	}
	r, _ = s.QueryRange(Query{Tags: []string{"a", "b"}})
	if r.Exact {
		t.Fatal("suffix query should not be exact")
	}
}

func TestAbsoluteQueryEqualsNodeLabel(t *testing.T) {
	s := scheme(t, "db", "entry", "name")
	path := []string{"db", "entry", "name"}
	node, err := s.LabelPath(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.QueryRange(Query{Absolute: true, Tags: path})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo != node {
		t.Fatalf("absolute query Lo %v != node label %v", r.Lo, node)
	}
	if !r.Contains(node) {
		t.Fatal("node not contained in its own path query")
	}
}

func TestString(t *testing.T) {
	q := Query{Tags: []string{"a", "b"}}
	if q.String() != "//a/b" {
		t.Fatalf("String = %s", q.String())
	}
	q.Absolute = true
	if q.String() != "/a/b" {
		t.Fatalf("String = %s", q.String())
	}
}

// suffixMatches is the semantic ground truth for suffix path evaluation:
// a node with source path sp matches q iff q's tags are a suffix of sp
// (and, for absolute queries, the whole of sp).
func suffixMatches(sp []string, q Query) bool {
	n, m := len(sp), len(q.Tags)
	if q.Absolute && n != m {
		return false
	}
	if m > n {
		return false
	}
	for i := 0; i < m; i++ {
		if sp[n-m+i] != q.Tags[i] {
			return false
		}
	}
	return true
}

// TestPropositionThreeTwo checks [[Q]] = {n | Q.lo <= n.plabel <= Q.hi}
// over random documents and random queries (paper Proposition 3.2).
func TestPropositionThreeTwo(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	tags := []string{"a", "b", "c", "d", "e", "f", "g"}
	s := scheme(t, tags...)

	// Generate random source paths (simulating nodes of random documents).
	var paths [][]string
	for i := 0; i < 400; i++ {
		n := 1 + rnd.Intn(8)
		p := make([]string, n)
		for j := range p {
			p[j] = tags[rnd.Intn(len(tags))]
		}
		paths = append(paths, p)
	}
	labels := make([]uint128.Uint128, len(paths))
	for i, p := range paths {
		var err error
		labels[i], err = s.LabelPath(p)
		if err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 600; trial++ {
		m := 1 + rnd.Intn(6)
		q := Query{Absolute: rnd.Intn(2) == 0, Tags: make([]string, m)}
		for j := range q.Tags {
			q.Tags[j] = tags[rnd.Intn(len(tags))]
		}
		r, err := s.QueryRange(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range paths {
			want := suffixMatches(p, q)
			got := r.Contains(labels[i])
			if got != want {
				t.Fatalf("query %s vs path %v: got %v, want %v (label %v, range [%v,%v])",
					q, p, got, want, labels[i], r.Lo, r.Hi)
			}
			if want && r.Exact && labels[i] != r.Lo {
				t.Fatalf("exact query %s: matching label %v != Lo %v", q, labels[i], r.Lo)
			}
		}
	}
}

// queryContained is the semantic containment relation between suffix path
// expressions: P <= Q iff every node matching P matches Q, which holds iff
// Q's tags are a suffix of P's tags and Q is no more restrictive about the
// path start.
func queryContained(p, q Query) bool {
	np, nq := len(p.Tags), len(q.Tags)
	if nq > np {
		return false
	}
	for i := 0; i < nq; i++ {
		if p.Tags[np-nq+i] != q.Tags[i] {
			return false
		}
	}
	if q.Absolute {
		return p.Absolute && np == nq
	}
	return true
}

// TestDefinitionThreeTwoProperties checks the Containment and
// Nonintersection properties of Definition 3.2 on random query pairs.
func TestDefinitionThreeTwoProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(1234))
	tags := []string{"x", "y", "z"}
	s := scheme(t, tags...)

	randQuery := func() Query {
		m := 1 + rnd.Intn(4)
		q := Query{Absolute: rnd.Intn(2) == 0, Tags: make([]string, m)}
		for j := range q.Tags {
			q.Tags[j] = tags[rnd.Intn(len(tags))]
		}
		return q
	}
	intervalContained := func(rp, rq Range) bool {
		return rq.Lo.Leq(rp.Lo) && rp.Hi.Leq(rq.Hi)
	}
	intervalsDisjoint := func(rp, rq Range) bool {
		return rp.Hi.Less(rq.Lo) || rq.Hi.Less(rp.Lo)
	}

	for trial := 0; trial < 3000; trial++ {
		p, q := randQuery(), randQuery()
		rp, err := s.QueryRange(p)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := s.QueryRange(q)
		if err != nil {
			t.Fatal(err)
		}
		// Validation: lo <= hi.
		if rp.Hi.Less(rp.Lo) {
			t.Fatalf("validation violated for %s", p)
		}
		// Containment.
		if want, got := queryContained(p, q), intervalContained(rp, rq); want != got {
			t.Fatalf("containment %s <= %s: intervals say %v, semantics say %v", p, q, got, want)
		}
		// Either containment (one way) or disjoint.
		contained := queryContained(p, q) || queryContained(q, p)
		if contained == intervalsDisjoint(rp, rq) {
			t.Fatalf("queries %s, %s: contained=%v but disjoint=%v", p, q, contained, intervalsDisjoint(rp, rq))
		}
	}
}

func TestDecodePath(t *testing.T) {
	s := scheme(t, "db", "entry", "name", "year")
	paths := [][]string{
		{"db"},
		{"db", "entry"},
		{"db", "entry", "name"},
		{"db", "entry", "entry", "year"},
	}
	for _, p := range paths {
		label, err := s.LabelPath(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.DecodePath(label)
		if err != nil {
			t.Fatalf("DecodePath(%v): %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("DecodePath = %v, want %v", got, p)
		}
	}
	if _, err := s.DecodePath(uint128.Zero); err == nil {
		t.Fatal("DecodePath(0) should fail")
	}
	if _, err := s.DecodePath(uint128.One); err == nil {
		t.Fatal("DecodePath(non-canonical) should fail")
	}
}

// TestPaperFigureFourShape reproduces the structure of the paper's Fig. 4
// partition: /t1/t2 lies inside //t1/t2 lies inside //t2, and sibling tag
// intervals are disjoint.
func TestPaperFigureFourShape(t *testing.T) {
	tags := []string{"t1", "t2", "t3"}
	s := scheme(t, tags...)
	rt2, _ := s.QueryRange(Query{Tags: []string{"t2"}})
	rt12, _ := s.QueryRange(Query{Tags: []string{"t1", "t2"}})
	rt12abs, _ := s.QueryRange(Query{Absolute: true, Tags: []string{"t1", "t2"}})
	rt32, _ := s.QueryRange(Query{Tags: []string{"t3", "t2"}})
	rt3, _ := s.QueryRange(Query{Tags: []string{"t3"}})

	within := func(in, out Range) bool { return out.Lo.Leq(in.Lo) && in.Hi.Leq(out.Hi) }
	if !within(rt12, rt2) || !within(rt12abs, rt12) || !within(rt32, rt2) {
		t.Fatal("nesting structure violated")
	}
	if !(rt12.Hi.Less(rt32.Lo) || rt32.Hi.Less(rt12.Lo)) {
		t.Fatal("//t1/t2 and //t3/t2 must be disjoint")
	}
	if !(rt2.Hi.Less(rt3.Lo) || rt3.Hi.Less(rt2.Lo)) {
		t.Fatal("//t2 and //t3 must be disjoint")
	}
}

func BenchmarkEnter(b *testing.B) {
	tags := make([]string, 77)
	for i := range tags {
		tags[i] = strings.Repeat("x", i%10+1) + string(rune('a'+i%26))
	}
	s, err := NewScheme(tags)
	if err != nil {
		b.Fatal(err)
	}
	l := s.NewLabeler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Depth() >= 10 {
			for l.Depth() > 0 {
				l.Leave()
			}
		}
		if _, err := l.Enter(tags[i%len(tags)]); err != nil {
			b.Fatal(err)
		}
	}
}
