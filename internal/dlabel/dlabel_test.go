package dlabel

import (
	"math/rand"
	"testing"
)

func TestPaperExample(t *testing.T) {
	// Figure 1 commentary: "the first node tagged classification begins at
	// position 7 and ends at position 11 ... Its level is 4" for
	// ProteinDatabase/ProteinEntry/protein/{name,text}/classification/
	// superfamily/text.
	a := NewAssigner()
	a.Enter() // 1: <ProteinDatabase>
	a.Enter() // 2: <ProteinEntry>
	a.Enter() // 3: <protein>
	a.Enter() // 4: <name>
	a.Text()  // 5: "cytochrome c [validated]"
	a.Leave() // 6: </name>
	start, level := a.Enter()
	if start != 7 || level != 4 {
		t.Fatalf("classification start=%d level=%d, want 7, 4", start, level)
	}
	a.Enter()        // 8: <superfamily>
	a.Text()         // 9
	a.Leave()        // 10
	cls := a.Leave() // 11: </classification>
	if cls.Start != 7 || cls.End != 11 || cls.Level != 4 {
		t.Fatalf("classification label = %v, want <7,11,4>", cls)
	}
}

func TestPredicates(t *testing.T) {
	anc := Label{Start: 1, End: 100, Level: 1}
	child := Label{Start: 2, End: 50, Level: 2}
	grand := Label{Start: 3, End: 10, Level: 3}
	sib := Label{Start: 51, End: 99, Level: 2}

	if !anc.IsAncestorOf(child) || !anc.IsAncestorOf(grand) {
		t.Fatal("ancestor test failed")
	}
	if !anc.IsParentOf(child) {
		t.Fatal("parent test failed")
	}
	if anc.IsParentOf(grand) {
		t.Fatal("grandchild misidentified as child")
	}
	if child.IsAncestorOf(sib) || sib.IsAncestorOf(child) {
		t.Fatal("siblings misidentified as related")
	}
	if !anc.AncestorAtGap(grand, 2) {
		t.Fatal("gap-2 test failed")
	}
	if anc.AncestorAtGap(grand, 1) {
		t.Fatal("gap-1 should fail for grandchild")
	}
	if !anc.AncestorAtGap(grand, 0) {
		t.Fatal("gap-0 means any distance")
	}
	if !anc.Overlaps(child) || child.Overlaps(sib) {
		t.Fatal("overlap test failed")
	}
	if anc.IsAncestorOf(anc) {
		t.Fatal("node must not be its own ancestor")
	}
}

func TestAttrLabels(t *testing.T) {
	a := NewAssigner()
	a.Enter() // element at level 1
	attr := a.Attr()
	if attr.Start != attr.End {
		t.Fatalf("attr label = %v, want single unit", attr)
	}
	if attr.Level != 2 {
		t.Fatalf("attr level = %d, want 2", attr.Level)
	}
	el := a.Leave()
	if !el.IsParentOf(attr) {
		t.Fatalf("element %v should be parent of attr %v", el, attr)
	}
}

func TestLeavePanicsWhenUnbalanced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAssigner().Leave()
}

func TestAttrPanicsOutsideElement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAssigner().Attr()
}

// refNode is a reference tree node for the randomized test.
type refNode struct {
	label    Label
	parent   *refNode
	children []*refNode
}

func (r *refNode) isAncestorOf(o *refNode) bool {
	for p := o.parent; p != nil; p = p.parent {
		if p == r {
			return true
		}
	}
	return false
}

// buildRandomTree assigns labels while building a random tree, then checks
// every pair of nodes against the reference ancestorship.
func TestRandomTreeAncestorship(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	a := NewAssigner()
	var all []*refNode

	var build func(parent *refNode, depth int)
	build = func(parent *refNode, depth int) {
		a.Enter()
		n := &refNode{parent: parent}
		if parent != nil {
			parent.children = append(parent.children, n)
		}
		all = append(all, n)
		if depth < 6 {
			kids := rnd.Intn(4)
			for i := 0; i < kids; i++ {
				if rnd.Intn(3) == 0 {
					a.Text()
				}
				build(n, depth+1)
			}
		}
		n.label = a.Leave()
	}
	build(nil, 0)

	if a.Depth() != 0 {
		t.Fatal("unbalanced walk")
	}
	for _, x := range all {
		for _, y := range all {
			if x == y {
				continue
			}
			wantAnc := x.isAncestorOf(y)
			if got := x.label.IsAncestorOf(y.label); got != wantAnc {
				t.Fatalf("ancestor(%v, %v) = %v, want %v", x.label, y.label, got, wantAnc)
			}
			wantParent := y.parent == x
			if got := x.label.IsParentOf(y.label); got != wantParent {
				t.Fatalf("parent(%v, %v) = %v, want %v", x.label, y.label, got, wantParent)
			}
		}
	}
}

func TestLevelsMatchDepth(t *testing.T) {
	a := NewAssigner()
	_, l1 := a.Enter()
	_, l2 := a.Enter()
	_, l3 := a.Enter()
	if l1 != 1 || l2 != 2 || l3 != 3 {
		t.Fatalf("levels = %d,%d,%d", l1, l2, l3)
	}
	a.Leave()
	_, l3b := a.Enter()
	if l3b != 3 {
		t.Fatalf("sibling level = %d, want 3", l3b)
	}
}

func TestValidationProperty(t *testing.T) {
	// start <= end must hold for every label (Definition 3.1 Validation).
	a := NewAssigner()
	a.Enter()
	lab := a.Leave()
	if lab.Start > lab.End {
		t.Fatalf("validation violated: %v", lab)
	}
	if lab.Start == lab.End {
		t.Fatalf("element with no content should still span two units: %v", lab)
	}
}
