// Package dlabel implements D-labeling (paper §3.1).
//
// A D-label is a triplet <start, end, level>. Start and end are the
// positions of a node's start and end tags in the document, counting each
// start tag, end tag and text block as one unit; level is the length of
// the path from the root (the root has level 1). The labels satisfy the
// paper's Definition 3.1:
//
//	Descendant:  m is a descendant of n  iff  n.start < m.start && n.end > m.end
//	Child:       m is a child of n       iff  descendant && n.level+1 == m.level
//	Nonoverlap:  otherwise the intervals are disjoint
//
// The Assigner hands out labels during a streaming (SAX) document walk.
package dlabel

import "fmt"

// Label is a D-label.
type Label struct {
	Start uint32
	End   uint32
	Level uint16
}

// IsAncestorOf reports whether m lies strictly inside n's interval.
func (n Label) IsAncestorOf(m Label) bool {
	return n.Start < m.Start && n.End > m.End
}

// IsParentOf reports whether m is a child of n.
func (n Label) IsParentOf(m Label) bool {
	return n.IsAncestorOf(m) && n.Level+1 == m.Level
}

// AncestorAtGap reports whether n is an ancestor of m exactly gap levels
// up (gap 1 = parent, 2 = grandparent, ...). gap <= 0 means any distance.
func (n Label) AncestorAtGap(m Label, gap int) bool {
	if !n.IsAncestorOf(m) {
		return false
	}
	return gap <= 0 || int(m.Level)-int(n.Level) == gap
}

// Overlaps reports whether the intervals of n and m intersect (which, for
// labels produced from a well-formed document, means one contains the
// other or they are the same node).
func (n Label) Overlaps(m Label) bool {
	return n.Start <= m.End && m.Start <= n.End
}

// String formats the label as <start,end,level>.
func (n Label) String() string {
	return fmt.Sprintf("<%d,%d,%d>", n.Start, n.End, n.Level)
}

// Assigner allocates D-labels during a depth-first document walk. Calls
// must follow document structure: Enter/Leave for elements (properly
// nested), Text for character data, Attr for attribute nodes (immediately
// after their element's Enter).
type Assigner struct {
	pos   uint32
	stack []*pending
}

type pending struct {
	start uint32
	level uint16
}

// NewAssigner returns an Assigner whose first position unit is 1.
func NewAssigner() *Assigner { return &Assigner{pos: 1} }

// Enter records an element's start tag and returns its start position and
// level. The final label is completed by the matching Leave.
func (a *Assigner) Enter() (start uint32, level uint16) {
	start = a.pos
	a.pos++
	level = uint16(len(a.stack) + 1)
	a.stack = append(a.stack, &pending{start: start, level: level})
	return start, level
}

// Leave records the current element's end tag and returns its completed
// label. It panics if no element is open (a malformed walk).
func (a *Assigner) Leave() Label {
	if len(a.stack) == 0 {
		panic("dlabel: Leave without matching Enter")
	}
	p := a.stack[len(a.stack)-1]
	a.stack = a.stack[:len(a.stack)-1]
	end := a.pos
	a.pos++
	return Label{Start: p.start, End: end, Level: p.level}
}

// Text consumes one position unit for a character data block.
func (a *Assigner) Text() { a.pos++ }

// Attr allocates a complete label for an attribute node of the current
// element. Attribute nodes occupy a single position unit (start == end) —
// they are leaves nested inside their owner's interval, so all Definition
// 3.1 predicates behave correctly. It panics if no element is open.
func (a *Assigner) Attr() Label {
	if len(a.stack) == 0 {
		panic("dlabel: Attr without an open element")
	}
	owner := a.stack[len(a.stack)-1]
	l := Label{Start: a.pos, End: a.pos, Level: owner.level + 1}
	a.pos++
	return l
}

// Depth returns the number of currently open elements.
func (a *Assigner) Depth() int { return len(a.stack) }

// Pos returns the next position unit to be assigned.
func (a *Assigner) Pos() uint32 { return a.pos }
