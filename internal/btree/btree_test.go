package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func key(i int) []byte { return []byte(fmt.Sprintf("%08d", i)) }

func TestEmpty(t *testing.T) {
	m := NewDefault[int]()
	if m.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if _, ok := m.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if m.Delete([]byte("x")) {
		t.Fatal("Delete on empty tree returned true")
	}
	if it := m.Scan(nil, nil); it.Next() {
		t.Fatal("scan of empty tree yielded an entry")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on empty tree")
	}
}

func TestSetGetReplace(t *testing.T) {
	m := New[string](4)
	m.Set([]byte("a"), "1")
	m.Set([]byte("b"), "2")
	m.Set([]byte("a"), "replaced")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get([]byte("a")); !ok || v != "replaced" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
}

func TestKeyIsCopied(t *testing.T) {
	m := NewDefault[int]()
	k := []byte("mutate-me")
	m.Set(k, 1)
	k[0] = 'X'
	if _, ok := m.Get([]byte("mutate-me")); !ok {
		t.Fatal("tree key was aliased to caller's slice")
	}
}

func TestOrderedInsertScan(t *testing.T) {
	for _, degree := range []int{4, 5, 8, 64} {
		m := New[int](degree)
		const n = 500
		for i := 0; i < n; i++ {
			m.Set(key(i), i)
		}
		if m.Len() != n {
			t.Fatalf("degree %d: Len = %d", degree, m.Len())
		}
		it := m.Scan(nil, nil)
		for i := 0; i < n; i++ {
			if !it.Next() {
				t.Fatalf("degree %d: scan ended early at %d", degree, i)
			}
			if !bytes.Equal(it.Key(), key(i)) || it.Value() != i {
				t.Fatalf("degree %d: scan[%d] = %s/%d", degree, i, it.Key(), it.Value())
			}
		}
		if it.Next() {
			t.Fatalf("degree %d: scan yielded extra entries", degree)
		}
	}
}

func TestReverseInsert(t *testing.T) {
	m := New[int](4)
	const n = 300
	for i := n - 1; i >= 0; i-- {
		m.Set(key(i), i)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(key(i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestRangeScan(t *testing.T) {
	m := New[int](4)
	for i := 0; i < 100; i++ {
		m.Set(key(i*2), i*2) // even keys only
	}
	// [10, 20) -> 10,12,14,16,18
	it := m.Scan(key(10), key(20))
	var got []int
	for it.Next() {
		got = append(got, it.Value())
	}
	want := []int{10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Scan starting between keys.
	it = m.Scan(key(11), key(15))
	got = nil
	for it.Next() {
		got = append(got, it.Value())
	}
	if len(got) != 2 || got[0] != 12 || got[1] != 14 {
		t.Fatalf("between-keys scan got %v", got)
	}
}

func TestScanPrefix(t *testing.T) {
	m := NewDefault[int]()
	m.Set([]byte("app"), 1)
	m.Set([]byte("apple"), 2)
	m.Set([]byte("apply"), 3)
	m.Set([]byte("banana"), 4)
	it := m.ScanPrefix([]byte("appl"))
	var got []int
	for it.Next() {
		got = append(got, it.Value())
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("prefix scan got %v", got)
	}
}

func TestDeleteSimple(t *testing.T) {
	m := New[int](4)
	for i := 0; i < 50; i++ {
		m.Set(key(i), i)
	}
	for i := 0; i < 50; i += 2 {
		if !m.Delete(key(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if m.Len() != 25 {
		t.Fatalf("Len = %d, want 25", m.Len())
	}
	for i := 0; i < 50; i++ {
		_, ok := m.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	// Scan still ordered.
	it := m.Scan(nil, nil)
	prev := -1
	for it.Next() {
		if it.Value() <= prev {
			t.Fatalf("scan out of order: %d after %d", it.Value(), prev)
		}
		prev = it.Value()
	}
}

func TestDeleteAll(t *testing.T) {
	for _, degree := range []int{4, 7, 64} {
		m := New[int](degree)
		const n = 400
		perm := rand.New(rand.NewSource(42)).Perm(n)
		for _, i := range perm {
			m.Set(key(i), i)
		}
		perm2 := rand.New(rand.NewSource(43)).Perm(n)
		for _, i := range perm2 {
			if !m.Delete(key(i)) {
				t.Fatalf("degree %d: Delete(%d) failed", degree, i)
			}
		}
		if m.Len() != 0 {
			t.Fatalf("degree %d: Len = %d after deleting all", degree, m.Len())
		}
		if it := m.Scan(nil, nil); it.Next() {
			t.Fatalf("degree %d: scan after delete-all yielded entries", degree)
		}
		// Tree must still be usable.
		m.Set(key(1), 1)
		if v, ok := m.Get(key(1)); !ok || v != 1 {
			t.Fatalf("degree %d: reuse after delete-all failed", degree)
		}
	}
}

func TestMinMax(t *testing.T) {
	m := New[int](4)
	for i := 10; i <= 90; i += 10 {
		m.Set(key(i), i)
	}
	if k, v, ok := m.Min(); !ok || !bytes.Equal(k, key(10)) || v != 10 {
		t.Fatalf("Min = %s/%d/%v", k, v, ok)
	}
	if k, v, ok := m.Max(); !ok || !bytes.Equal(k, key(90)) || v != 90 {
		t.Fatalf("Max = %s/%d/%v", k, v, ok)
	}
}

// TestRandomizedAgainstMap exercises mixed workloads of inserts, deletes
// and scans against a reference map.
func TestRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	m := New[int](5)
	ref := map[string]int{}
	for step := 0; step < 20000; step++ {
		k := key(r.Intn(2000))
		switch r.Intn(3) {
		case 0, 1: // insert
			v := r.Int()
			m.Set(k, v)
			ref[string(k)] = v
		case 2: // delete
			want := false
			if _, ok := ref[string(k)]; ok {
				want = true
				delete(ref, string(k))
			}
			if got := m.Delete(k); got != want {
				t.Fatalf("step %d: Delete(%s) = %v, want %v", step, k, got, want)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, m.Len(), len(ref))
		}
	}
	// Final verification: full scan equals sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := m.Scan(nil, nil)
	for _, k := range keys {
		if !it.Next() {
			t.Fatalf("scan ended before %s", k)
		}
		if string(it.Key()) != k || it.Value() != ref[k] {
			t.Fatalf("scan got %s/%d, want %s/%d", it.Key(), it.Value(), k, ref[k])
		}
	}
	if it.Next() {
		t.Fatal("scan has extra entries")
	}
}

// TestRandomRangeScans compares range scans against the reference on random
// bounds.
func TestRandomRangeScans(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	m := New[int](6)
	ref := map[string]int{}
	for i := 0; i < 1000; i++ {
		k := key(r.Intn(5000))
		m.Set(k, i)
		ref[string(k)] = i
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for trial := 0; trial < 200; trial++ {
		lo := key(r.Intn(5000))
		hi := key(r.Intn(5000))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var want []string
		for _, k := range keys {
			if k >= string(lo) && k < string(hi) {
				want = append(want, k)
			}
		}
		it := m.Scan(lo, hi)
		for _, k := range want {
			if !it.Next() {
				t.Fatalf("trial %d: scan ended before %s", trial, k)
			}
			if string(it.Key()) != k {
				t.Fatalf("trial %d: got %s, want %s", trial, it.Key(), k)
			}
		}
		if it.Next() {
			t.Fatalf("trial %d: extra results", trial)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	m := NewDefault[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Set(key(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	m := NewDefault[int]()
	for i := 0; i < 100000; i++ {
		m.Set(key(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Get(key(i % 100000))
	}
}
