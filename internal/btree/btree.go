// Package btree implements an in-memory B+ tree keyed by byte strings.
//
// The tree stores values of any type under []byte keys ordered bytewise
// (see internal/keyenc for order-preserving key construction). Leaves are
// linked, so range scans are sequential. The tree supports insertion,
// replacement, deletion with rebalancing, point lookups, and half-open
// range scans.
//
// BLAS uses this structure for the in-memory side of its indexes and as a
// general ordered-map substrate (e.g. deduplication, tag dictionaries).
package btree

import "bytes"

// DefaultDegree is the default maximum number of children of an internal
// node (and the maximum number of entries in a leaf).
const DefaultDegree = 64

// Map is a B+ tree mapping []byte keys to values of type V.
// The zero value is not usable; call New.
type Map[V any] struct {
	degree int
	root   node[V]
	size   int
}

type node[V any] interface {
	isLeaf() bool
}

type leaf[V any] struct {
	keys [][]byte
	vals []V
	next *leaf[V]
	prev *leaf[V]
}

func (*leaf[V]) isLeaf() bool { return true }

type inner[V any] struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]byte
	children []node[V]
}

func (*inner[V]) isLeaf() bool { return false }

// New returns an empty tree with the given degree (maximum fanout).
// Degrees below 4 are raised to 4.
func New[V any](degree int) *Map[V] {
	if degree < 4 {
		degree = 4
	}
	return &Map[V]{degree: degree, root: &leaf[V]{}}
}

// NewDefault returns an empty tree with DefaultDegree.
func NewDefault[V any]() *Map[V] { return New[V](DefaultDegree) }

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.size }

// Get returns the value stored under key.
func (m *Map[V]) Get(key []byte) (V, bool) {
	lf, idx, found := m.find(key)
	if !found {
		var zero V
		return zero, false
	}
	return lf.vals[idx], true
}

// find locates the leaf and slot where key lives or would be inserted.
func (m *Map[V]) find(key []byte) (*leaf[V], int, bool) {
	n := m.root
	for !n.isLeaf() {
		in := n.(*inner[V])
		i := searchKeys(in.keys, key)
		n = in.children[i]
	}
	lf := n.(*leaf[V])
	i := searchKeys(lf.keys, key)
	// searchKeys returns the number of keys strictly <= key... see below.
	if i > 0 && bytes.Equal(lf.keys[i-1], key) {
		return lf, i - 1, true
	}
	return lf, i, false
}

// searchKeys returns the smallest index i such that key < keys[i] is false
// for all j < i; that is, the count of keys <= key.
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Set stores value under key, replacing any existing value.
// The key is copied; callers may reuse the slice.
func (m *Map[V]) Set(key []byte, value V) {
	k := append([]byte(nil), key...)
	newChild, splitKey := m.insert(m.root, k, value)
	if newChild != nil {
		m.root = &inner[V]{
			keys:     [][]byte{splitKey},
			children: []node[V]{m.root, newChild},
		}
	}
}

// insert adds (key,value) under n. If n splits, it returns the new right
// sibling and the smallest key reachable under it.
func (m *Map[V]) insert(n node[V], key []byte, value V) (node[V], []byte) {
	if n.isLeaf() {
		lf := n.(*leaf[V])
		i := searchKeys(lf.keys, key)
		if i > 0 && bytes.Equal(lf.keys[i-1], key) {
			lf.vals[i-1] = value
			return nil, nil
		}
		lf.keys = insertAt(lf.keys, i, key)
		lf.vals = insertAt(lf.vals, i, value)
		m.size++
		if len(lf.keys) <= m.degree {
			return nil, nil
		}
		// Split.
		mid := len(lf.keys) / 2
		right := &leaf[V]{
			keys: append([][]byte(nil), lf.keys[mid:]...),
			vals: append([]V(nil), lf.vals[mid:]...),
			next: lf.next,
			prev: lf,
		}
		if lf.next != nil {
			lf.next.prev = right
		}
		lf.keys = lf.keys[:mid:mid]
		lf.vals = lf.vals[:mid:mid]
		lf.next = right
		return right, right.keys[0]
	}

	in := n.(*inner[V])
	i := searchKeys(in.keys, key)
	newChild, splitKey := m.insert(in.children[i], key, value)
	if newChild == nil {
		return nil, nil
	}
	in.keys = insertAt(in.keys, i, splitKey)
	in.children = insertAt(in.children, i+1, newChild)
	if len(in.children) <= m.degree {
		return nil, nil
	}
	// Split: middle key moves up.
	midKey := len(in.keys) / 2
	upKey := in.keys[midKey]
	right := &inner[V]{
		keys:     append([][]byte(nil), in.keys[midKey+1:]...),
		children: append([]node[V](nil), in.children[midKey+1:]...),
	}
	in.keys = in.keys[:midKey:midKey]
	in.children = in.children[: midKey+1 : midKey+1]
	return right, upKey
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Delete removes key and reports whether it was present.
func (m *Map[V]) Delete(key []byte) bool {
	found := m.delete(m.root, key)
	if !found {
		return false
	}
	m.size--
	// Collapse a root with a single child.
	if in, ok := m.root.(*inner[V]); ok && len(in.children) == 1 {
		m.root = in.children[0]
	}
	return true
}

func (m *Map[V]) minKeys() int { return (m.degree + 1) / 2 }

// delete removes key from the subtree rooted at n, rebalancing children as
// needed. The root itself is allowed to underflow.
func (m *Map[V]) delete(n node[V], key []byte) bool {
	if n.isLeaf() {
		lf := n.(*leaf[V])
		i := searchKeys(lf.keys, key)
		if i == 0 || !bytes.Equal(lf.keys[i-1], key) {
			return false
		}
		lf.keys = removeAt(lf.keys, i-1)
		lf.vals = removeAt(lf.vals, i-1)
		return true
	}

	in := n.(*inner[V])
	i := searchKeys(in.keys, key)
	if !m.delete(in.children[i], key) {
		return false
	}
	m.rebalance(in, i)
	return true
}

// rebalance fixes child i of in if it underflowed.
func (m *Map[V]) rebalance(in *inner[V], i int) {
	child := in.children[i]
	if childLen[V](child) >= m.minKeys()/2 {
		return
	}
	// Try to borrow from siblings, otherwise merge.
	if i > 0 && childLen[V](in.children[i-1]) > m.minKeys()/2 {
		m.borrowLeft(in, i)
		return
	}
	if i < len(in.children)-1 && childLen[V](in.children[i+1]) > m.minKeys()/2 {
		m.borrowRight(in, i)
		return
	}
	if i > 0 {
		m.merge(in, i-1)
	} else if i < len(in.children)-1 {
		m.merge(in, i)
	}
}

func childLen[V any](n node[V]) int {
	if n.isLeaf() {
		return len(n.(*leaf[V]).keys)
	}
	return len(n.(*inner[V]).children)
}

func (m *Map[V]) borrowLeft(in *inner[V], i int) {
	if in.children[i].isLeaf() {
		left, cur := in.children[i-1].(*leaf[V]), in.children[i].(*leaf[V])
		n := len(left.keys)
		cur.keys = insertAt(cur.keys, 0, left.keys[n-1])
		cur.vals = insertAt(cur.vals, 0, left.vals[n-1])
		left.keys = left.keys[:n-1]
		left.vals = left.vals[:n-1]
		in.keys[i-1] = cur.keys[0]
		return
	}
	left, cur := in.children[i-1].(*inner[V]), in.children[i].(*inner[V])
	nk, nc := len(left.keys), len(left.children)
	cur.keys = insertAt(cur.keys, 0, in.keys[i-1])
	cur.children = insertAt(cur.children, 0, left.children[nc-1])
	in.keys[i-1] = left.keys[nk-1]
	left.keys = left.keys[:nk-1]
	left.children = left.children[:nc-1]
}

func (m *Map[V]) borrowRight(in *inner[V], i int) {
	if in.children[i].isLeaf() {
		cur, right := in.children[i].(*leaf[V]), in.children[i+1].(*leaf[V])
		cur.keys = append(cur.keys, right.keys[0])
		cur.vals = append(cur.vals, right.vals[0])
		right.keys = removeAt(right.keys, 0)
		right.vals = removeAt(right.vals, 0)
		in.keys[i] = right.keys[0]
		return
	}
	cur, right := in.children[i].(*inner[V]), in.children[i+1].(*inner[V])
	cur.keys = append(cur.keys, in.keys[i])
	cur.children = append(cur.children, right.children[0])
	in.keys[i] = right.keys[0]
	right.keys = removeAt(right.keys, 0)
	right.children = removeAt(right.children, 0)
}

// merge joins children i and i+1 of in into child i.
func (m *Map[V]) merge(in *inner[V], i int) {
	if in.children[i].isLeaf() {
		left, right := in.children[i].(*leaf[V]), in.children[i+1].(*leaf[V])
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		if right.next != nil {
			right.next.prev = left
		}
	} else {
		left, right := in.children[i].(*inner[V]), in.children[i+1].(*inner[V])
		left.keys = append(left.keys, in.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	in.keys = removeAt(in.keys, i)
	in.children = removeAt(in.children, i+1)
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	var zero T
	s[len(s)-1] = zero
	return s[:len(s)-1]
}

// Iter is a forward iterator over a key range.
type Iter[V any] struct {
	lf   *leaf[V]
	idx  int
	to   []byte // exclusive bound, nil = unbounded
	key  []byte
	val  V
	done bool
}

// Scan returns an iterator over keys in [from, to). A nil from starts at
// the smallest key; a nil to means no upper bound.
func (m *Map[V]) Scan(from, to []byte) *Iter[V] {
	var lf *leaf[V]
	var idx int
	if from == nil {
		n := m.root
		for !n.isLeaf() {
			n = n.(*inner[V]).children[0]
		}
		lf, idx = n.(*leaf[V]), 0
	} else {
		// find returns the slot of the match when present, otherwise the
		// slot of the first key greater than from; both are where the scan
		// should begin.
		lf, idx, _ = m.find(from)
	}
	return &Iter[V]{lf: lf, idx: idx, to: to}
}

// ScanPrefix returns an iterator over all keys with the given prefix.
func (m *Map[V]) ScanPrefix(prefix []byte) *Iter[V] {
	return m.Scan(prefix, prefixSuccessor(prefix))
}

func prefixSuccessor(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// Next advances the iterator and reports whether a new entry is available.
func (it *Iter[V]) Next() bool {
	if it.done {
		return false
	}
	for it.lf != nil && it.idx >= len(it.lf.keys) {
		it.lf = it.lf.next
		it.idx = 0
	}
	if it.lf == nil {
		it.done = true
		return false
	}
	k := it.lf.keys[it.idx]
	if it.to != nil && bytes.Compare(k, it.to) >= 0 {
		it.done = true
		return false
	}
	it.key = k
	it.val = it.lf.vals[it.idx]
	it.idx++
	return true
}

// Key returns the current key. Valid until the next call to Next.
func (it *Iter[V]) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iter[V]) Value() V { return it.val }

// Min returns the smallest key and its value.
func (m *Map[V]) Min() ([]byte, V, bool) {
	n := m.root
	for !n.isLeaf() {
		n = n.(*inner[V]).children[0]
	}
	lf := n.(*leaf[V])
	if len(lf.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	return lf.keys[0], lf.vals[0], true
}

// Max returns the largest key and its value.
func (m *Map[V]) Max() ([]byte, V, bool) {
	n := m.root
	for !n.isLeaf() {
		in := n.(*inner[V])
		n = in.children[len(in.children)-1]
	}
	lf := n.(*leaf[V])
	if len(lf.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	return lf.keys[len(lf.keys)-1], lf.vals[len(lf.keys)-1], true
}
