package relstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/uint128"
)

// --- columnar heap page layout (format 2) ---
//
// A format-2 heap page stores its cluster-key-ordered records as runs of
// column groups instead of slotted record-at-a-time encodings:
//
//	[0:2]  record count
//	[2:4]  run count
//	[4:..] run directory, 4 bytes per run: {block offset u16, first slot u16}
//	       then the run blocks
//
// A run is a maximal stretch of records on the page sharing the cluster
// prefix (the {plabel, tag id} pair on SP, the tag id on SD). Its block:
//
//	SP: plabel[16] tagID[4] count[2] startsLen[2] endsLen[2] levelsLen[2] vlensLen[2]
//	SD: tagID[4] count[2] startsLen[2] endsLen[2] levelsLen[2] vlensLen[2] plabels[16*count]
//
// followed by four varint columns and the value bytes:
//
//	starts: uvarint(start[0]), then uvarint(start[i] - start[i-1])
//	ends:   zigzag-uvarint(end[i] - start[i]) per record
//	levels: uvarint per record
//	vlens:  uvarint(len(data)) per record
//	values: the data bytes, concatenated in record order
//
// Starts ascend within a run (the cluster key is {prefix, start}), so the
// deltas are small; ends are encoded relative to their own start, which
// keeps them small regardless of nesting. The column byte lengths in the
// run header let a decoder position every column cursor without scanning,
// so a whole run decodes with one branch-light loop per column. Locators
// are unchanged: Slot is the record's ordinal position on the page.

const (
	colPageHeader = 4 // record count + run count
	colRunDirEnt  = 4 // block offset + first slot
	spRunHeader   = 16 + 4 + 2 + 4*2
	sdRunHeader   = 4 + 2 + 4*2
)

func runHeaderSize(kind Clustering) int {
	if kind == ClusterPLabel {
		return spRunHeader
	}
	return sdRunHeader
}

// perRecordFixed is the fixed per-record cost outside the varint columns.
func perRecordFixed(kind Clustering) int {
	if kind == ClusterTag {
		return 16 // the plabel column entry
	}
	return 0
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// sameRun reports whether b continues a's run (same cluster prefix).
func sameRun(kind Clustering, a, b *Record) bool {
	if kind == ClusterPLabel {
		return a.PLabel == b.PLabel && a.TagID == b.TagID
	}
	return a.TagID == b.TagID
}

// colRecordCost returns the encoded size of r on a format-2 page: the
// varint column bytes, the value bytes, and (on SD) the plabel column
// entry. prev is the preceding record of the run, nil when r opens one.
func colRecordCost(kind Clustering, prev, r *Record) int {
	var startBytes int
	if prev == nil {
		startBytes = uvarintLen(uint64(r.Start))
	} else {
		startBytes = uvarintLen(uint64(r.Start - prev.Start))
	}
	return startBytes +
		uvarintLen(zigzag(int64(r.End)-int64(r.Start))) +
		uvarintLen(uint64(r.Level)) +
		uvarintLen(uint64(len(r.Data))) +
		len(r.Data) +
		perRecordFixed(kind)
}

// colMaxRecord is the largest encoded size a single record may have and
// still fit alone on an empty page.
func colMaxRecord(kind Clustering) int {
	return pager.PageSize - colPageHeader - colRunDirEnt - runHeaderSize(kind)
}

// encodeColumnarPage writes recs (cluster-key order, pre-sized to fit by
// the builder's cost accounting) into page p.
func encodeColumnarPage(p []byte, kind Clustering, recs []*Record) error {
	// Cut the records into runs.
	type runSpan struct{ lo, hi int }
	var runs []runSpan
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && sameRun(kind, recs[i], recs[j]) {
			j++
		}
		runs = append(runs, runSpan{i, j})
		i = j
	}
	binary.LittleEndian.PutUint16(p[0:2], uint16(len(recs)))
	binary.LittleEndian.PutUint16(p[2:4], uint16(len(runs)))

	off := colPageHeader + colRunDirEnt*len(runs)
	for ri, rs := range runs {
		binary.LittleEndian.PutUint16(p[colPageHeader+colRunDirEnt*ri:], uint16(off))
		binary.LittleEndian.PutUint16(p[colPageHeader+colRunDirEnt*ri+2:], uint16(rs.lo))

		rr := recs[rs.lo:rs.hi]
		var starts, ends, levels, vlens []byte
		var vbytes int
		prev := uint32(0)
		for i, r := range rr {
			d := uint64(r.Start)
			if i > 0 {
				d = uint64(r.Start - prev)
			}
			prev = r.Start
			starts = binary.AppendUvarint(starts, d)
			ends = binary.AppendUvarint(ends, zigzag(int64(r.End)-int64(r.Start)))
			levels = binary.AppendUvarint(levels, uint64(r.Level))
			vlens = binary.AppendUvarint(vlens, uint64(len(r.Data)))
			vbytes += len(r.Data)
		}

		h := rr[0]
		if kind == ClusterPLabel {
			copy(p[off:], h.PLabel.AppendBytes(nil))
			binary.LittleEndian.PutUint32(p[off+16:], h.TagID)
			binary.LittleEndian.PutUint16(p[off+20:], uint16(len(rr)))
			binary.LittleEndian.PutUint16(p[off+22:], uint16(len(starts)))
			binary.LittleEndian.PutUint16(p[off+24:], uint16(len(ends)))
			binary.LittleEndian.PutUint16(p[off+26:], uint16(len(levels)))
			binary.LittleEndian.PutUint16(p[off+28:], uint16(len(vlens)))
			off += spRunHeader
		} else {
			binary.LittleEndian.PutUint32(p[off:], h.TagID)
			binary.LittleEndian.PutUint16(p[off+4:], uint16(len(rr)))
			binary.LittleEndian.PutUint16(p[off+6:], uint16(len(starts)))
			binary.LittleEndian.PutUint16(p[off+8:], uint16(len(ends)))
			binary.LittleEndian.PutUint16(p[off+10:], uint16(len(levels)))
			binary.LittleEndian.PutUint16(p[off+12:], uint16(len(vlens)))
			off += sdRunHeader
			for _, r := range rr {
				copy(p[off:], r.PLabel.AppendBytes(nil))
				off += 16
			}
		}
		for _, col := range [][]byte{starts, ends, levels, vlens} {
			copy(p[off:], col)
			off += len(col)
		}
		for _, r := range rr {
			copy(p[off:], r.Data)
			off += len(r.Data)
		}
	}
	if off > pager.PageSize {
		return fmt.Errorf("relstore: columnar page overflow (%d bytes) — builder cost accounting is wrong", off)
	}
	return nil
}

// colRun is the decoded shape of one run block: the prefix it shares and
// absolute page offsets of every column.
type colRun struct {
	plabel    uint128.Uint128 // SP runs only (SD stores plabels per record)
	tagID     uint32
	count     int
	firstSlot int
	plabels   int // SD plabel column offset (0 on SP)
	starts    int
	ends      int
	levels    int
	vlens     int
	values    int
}

// colPageCounts reads the page header.
func colPageCounts(p []byte) (nrecs, nruns int) {
	return int(binary.LittleEndian.Uint16(p[0:2])), int(binary.LittleEndian.Uint16(p[2:4]))
}

// colRunAt parses run ri's directory entry and block header.
func colRunAt(p []byte, kind Clustering, ri int) colRun {
	off := int(binary.LittleEndian.Uint16(p[colPageHeader+colRunDirEnt*ri:]))
	first := int(binary.LittleEndian.Uint16(p[colPageHeader+colRunDirEnt*ri+2:]))
	var r colRun
	r.firstSlot = first
	if kind == ClusterPLabel {
		r.plabel = uint128.FromBytes(p[off:])
		r.tagID = binary.LittleEndian.Uint32(p[off+16:])
		r.count = int(binary.LittleEndian.Uint16(p[off+20:]))
		r.starts = off + spRunHeader
		r.ends = r.starts + int(binary.LittleEndian.Uint16(p[off+22:]))
		r.levels = r.ends + int(binary.LittleEndian.Uint16(p[off+24:]))
		r.vlens = r.levels + int(binary.LittleEndian.Uint16(p[off+26:]))
		r.values = r.vlens + int(binary.LittleEndian.Uint16(p[off+28:]))
		return r
	}
	r.tagID = binary.LittleEndian.Uint32(p[off:])
	r.count = int(binary.LittleEndian.Uint16(p[off+4:]))
	r.plabels = off + sdRunHeader
	r.starts = r.plabels + 16*r.count
	r.ends = r.starts + int(binary.LittleEndian.Uint16(p[off+6:]))
	r.levels = r.ends + int(binary.LittleEndian.Uint16(p[off+8:]))
	r.vlens = r.levels + int(binary.LittleEndian.Uint16(p[off+10:]))
	r.values = r.vlens + int(binary.LittleEndian.Uint16(p[off+12:]))
	return r
}

// decodeRunRecords materializes the run's records with relative indices
// in [a, b) into dst[0 : b-a]. Each column decodes in its own tight
// loop; records before a are walked (their deltas position the cursors)
// but never stored. Strings are copied out of the page, so nothing in
// dst references the pager frame after the caller's view ends.
//
//blas:hotpath
func decodeRunRecords(p []byte, kind Clustering, run colRun, a, b int, dst []Record) error {
	if a < 0 || b > run.count || a > b {
		return fmt.Errorf("relstore: run slice [%d, %d) out of range (count %d)", a, b, run.count)
	}
	// starts and ends advance together: an end is a zigzag delta off its
	// own start, so one fused loop over both cursors avoids buffering the
	// decoded starts.
	sOff, eOff := run.starts, run.ends
	var cum uint32
	for i := 0; i < b; i++ {
		d, n := binary.Uvarint(p[sOff:])
		if n <= 0 {
			return fmt.Errorf("relstore: corrupt starts column at offset %d", sOff)
		}
		sOff += n
		cum += uint32(d)
		ez, n2 := binary.Uvarint(p[eOff:])
		if n2 <= 0 {
			return fmt.Errorf("relstore: corrupt ends column at offset %d", eOff)
		}
		eOff += n2
		if i >= a {
			dst[i-a].Start = cum
			dst[i-a].End = uint32(int64(cum) + unzigzag(ez))
		}
	}
	lOff := run.levels
	for i := 0; i < b; i++ {
		v, n := binary.Uvarint(p[lOff:])
		if n <= 0 {
			return fmt.Errorf("relstore: corrupt levels column at offset %d", lOff)
		}
		lOff += n
		if i >= a {
			dst[i-a].Level = uint16(v)
		}
	}
	// Values are stored back to back, so the batch's bytes form one
	// contiguous region of the page: copy it out as a single string and
	// hand each record a substring (substrings share the backing array),
	// one allocation per run chunk instead of one per record.
	vOff, val := run.vlens, run.values
	for i := 0; i < a; i++ {
		vl, n := binary.Uvarint(p[vOff:])
		if n <= 0 {
			return fmt.Errorf("relstore: corrupt vlens column at offset %d", vOff)
		}
		vOff += n
		val += int(vl)
		if val > len(p) {
			return fmt.Errorf("relstore: value bytes run past page end (offset %d)", val)
		}
	}
	blobStart, aOff := val, vOff
	for i := a; i < b; i++ {
		vl, n := binary.Uvarint(p[vOff:])
		if n <= 0 {
			return fmt.Errorf("relstore: corrupt vlens column at offset %d", vOff)
		}
		vOff += n
		val += int(vl)
		if val > len(p) {
			return fmt.Errorf("relstore: value bytes run past page end (offset %d)", val)
		}
	}
	blob := string(p[blobStart:val])
	vOff, off := aOff, 0
	for i := a; i < b; i++ {
		vl, n := binary.Uvarint(p[vOff:])
		vOff += n
		dst[i-a].Data = blob[off : off+int(vl)]
		off += int(vl)
	}
	if kind == ClusterPLabel {
		for i := a; i < b; i++ {
			dst[i-a].PLabel = run.plabel
			dst[i-a].TagID = run.tagID
		}
	} else {
		for i := a; i < b; i++ {
			dst[i-a].PLabel = uint128.FromBytes(p[run.plabels+16*i:])
			dst[i-a].TagID = run.tagID
		}
	}
	return nil
}

// decodeColSlots decodes page slots [lo, hi) of a format-2 page into
// dst[0 : hi-lo], walking the run directory and decoding each run's
// overlap.
//
//blas:hotpath
func decodeColSlots(p []byte, kind Clustering, lo, hi int, dst []Record) error {
	nrecs, nruns := colPageCounts(p)
	if lo < 0 || hi > nrecs || lo > hi {
		return fmt.Errorf("relstore: slots [%d, %d) out of range on columnar page (%d records)", lo, hi, nrecs)
	}
	origLo := lo
	for ri := 0; ri < nruns && lo < hi; ri++ {
		run := colRunAt(p, kind, ri)
		if run.firstSlot+run.count <= lo {
			continue
		}
		a := lo - run.firstSlot
		if a < 0 {
			a = 0
		}
		b := hi - run.firstSlot
		if b > run.count {
			b = run.count
		}
		base := run.firstSlot + a - origLo // dst offset of this run's first decoded record
		if err := decodeRunRecords(p, kind, run, a, b, dst[base:base+(b-a)]); err != nil {
			return err
		}
		lo = run.firstSlot + b
	}
	return nil
}

// runStartsUpper walks the run's packed starts column and returns the
// first relative index whose start position is >= hi — the restriction
// cut, evaluated on the compressed column before any record
// materializes. hi == 0 means unbounded (returns count).
//
//blas:hotpath
func runStartsUpper(p []byte, run colRun, hi uint32) int {
	if hi == 0 {
		return run.count
	}
	sOff := run.starts
	var cum uint32
	for i := 0; i < run.count; i++ {
		d, n := binary.Uvarint(p[sOff:])
		if n <= 0 {
			return i // corrupt column: the decode pass will report it
		}
		sOff += n
		cum += uint32(d)
		if cum >= hi {
			return i
		}
	}
	return run.count
}

// heapRunIter is the cluster-scan iterator for format-2 relations: one
// index descend finds the first qualifying locator, then the scan walks
// the contiguous heap pages directly, stopping on the first run whose
// prefix leaves the selection or whose packed starts reach the upper
// bound. Index leaf pages are never touched past the initial seek, and
// only materialized records count as visited — the visited-elements
// statistic is identical to the index-driven scan's.
type heapRunIter struct {
	r    *Relation
	ctx  *ExecContext
	kind Clustering
	// selection: the cluster prefix plus the [*, hi) start bound (the
	// lower bound was folded into the seek). matchAll accepts every run
	// — the full-relation scan.
	plabel   uint128.Uint128
	tagID    uint32
	hi       uint32
	matchAll bool

	page pager.PageID
	slot int
	done bool
	err  error
}

// seekHeapRun positions a heap-run scan at the first record with cluster
// key >= from, handing back a ready BatchIter. The seek probes exactly
// one index position (SeekValue runs inside pager views); the cluster
// prefix in the iterator's selection bounds the scan above, so no `to`
// key is needed.
func (r *Relation) seekHeapRun(ctx *ExecContext, from []byte, plabel uint128.Uint128, tagID uint32, hi uint32, matchAll bool) BatchIter {
	h := &heapRunIter{r: r, ctx: ctx, kind: r.meta.kind, plabel: plabel, tagID: tagID, hi: hi, matchAll: matchAll}
	var locBuf [6]byte
	val, ok, err := r.cluster.SeekValue(from, locBuf[:0], ctx.pageCounters())
	if err != nil || !ok {
		h.done = true
		h.err = err
		return h
	}
	loc := decodeLocator(val)
	h.page, h.slot = loc.Page, int(loc.Slot)
	return h
}

// matches reports whether a run belongs to the selection.
func (h *heapRunIter) matches(run colRun) bool {
	if h.matchAll {
		return true
	}
	if h.kind == ClusterPLabel {
		return run.plabel == h.plabel
	}
	return run.tagID == h.tagID
}

func (h *heapRunIter) NextBatch(dst []Record) (int, error) {
	if h.err != nil {
		return 0, h.err
	}
	if h.done || len(dst) == 0 {
		return 0, nil
	}
	tr := h.ctx.Trace()
	n := 0
	for n < len(dst) && !h.done {
		if h.page > h.r.meta.heapLast {
			h.done = true
			break
		}
		produced := 0
		err := h.r.f.ViewCounted(h.page, h.ctx.pageCounters(), func(p []byte) error {
			begin := tr.Begin()
			nrecs, nruns := colPageCounts(p)
			if h.slot >= nrecs {
				// Off the end of this page (or an empty page): move on.
				h.page++
				h.slot = 0
				tr.End(obs.PhaseDecode, begin)
				return nil
			}
			// The run directory is ordered by firstSlot, so binary-search
			// for the run containing h.slot instead of parsing every
			// header: dir entries carry firstSlot directly.
			lo, up := 0, nruns
			for lo < up {
				mid := int(uint(lo+up) >> 1)
				first := int(binary.LittleEndian.Uint16(p[colPageHeader+colRunDirEnt*mid+2:]))
				if first <= h.slot {
					lo = mid + 1
				} else {
					up = mid
				}
			}
			start := lo - 1
			if start < 0 {
				start = 0
			}
			for ri := start; ri < nruns; ri++ {
				run := colRunAt(p, h.kind, ri)
				if run.firstSlot+run.count <= h.slot {
					continue
				}
				if !h.matches(run) {
					// The heap is cluster-ordered and the seek landed inside
					// the selection, so a non-matching run ends it.
					h.done = true
					tr.End(obs.PhaseDecode, begin)
					return nil
				}
				a := h.slot - run.firstSlot
				b := runStartsUpper(p, run, h.hi)
				if b <= a {
					h.done = true
					tr.End(obs.PhaseDecode, begin)
					return nil
				}
				hitBound := b < run.count
				if b-a > len(dst)-n-produced {
					b = a + len(dst) - n - produced
					hitBound = false
				}
				if err := decodeRunRecords(p, h.kind, run, a, b, dst[n+produced:n+produced+(b-a)]); err != nil {
					return err
				}
				produced += b - a
				h.slot = run.firstSlot + b
				if hitBound {
					h.done = true
					break
				}
				if n+produced == len(dst) {
					break
				}
			}
			if !h.done && h.slot >= nrecs {
				h.page++
				h.slot = 0
			}
			tr.End(obs.PhaseDecode, begin)
			return nil
		})
		if err != nil {
			h.err = err
			return 0, err
		}
		h.ctx.addVisitedN(uint64(produced))
		tr.AddDecoded(produced)
		n += produced
	}
	return n, nil
}
