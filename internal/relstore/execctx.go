package relstore

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pager"
)

// ExecContext accumulates the execution statistics of one query: the
// visited-elements counter (the paper's "elements read" metric) and the
// buffer-pool traffic of every page the query touches (the paper's "disk
// accesses"). One context is created per query execution and threaded
// through every scan iterator, so concurrent queries against one store
// never observe each other's counters — this replaces the former
// store-global ResetCounters/Snapshot protocol, which raced when two
// queries were in flight.
//
// All methods are safe for concurrent use: a single query may fan its
// fragment scans out over a worker pool, with every worker accumulating
// into the same context. A nil *ExecContext is valid everywhere one is
// accepted and simply discards the counts.
type ExecContext struct {
	visited atomic.Uint64
	pages   pager.Counters
	trace   *obs.Trace
	batch   *BatchController
}

// NewExecContext returns a fresh context with all counters at zero.
func NewExecContext() *ExecContext { return &ExecContext{} }

// SetTrace attaches a phase trace to the context. Both engines and the
// stream layer report spans into it via Trace(); with no trace attached
// (the default) span recording is a nil check and nothing more. SetTrace
// must be called before the context is shared with other goroutines.
func (c *ExecContext) SetTrace(t *obs.Trace) {
	if c != nil {
		c.trace = t
	}
}

// Trace returns the context's phase trace, nil-safely: a nil context or
// an untraced query yields a nil *obs.Trace, on which every recording
// method is a no-op.
func (c *ExecContext) Trace() *obs.Trace {
	if c == nil {
		return nil
	}
	return c.trace
}

// SetBatchControl attaches a batch controller to the context. Streams
// size their buffers and prefetch pipelines from it via BatchControl();
// with none attached they fall back to the fixed defaults. Like
// SetTrace, it must be called before the context is shared with other
// goroutines.
func (c *ExecContext) SetBatchControl(b *BatchController) {
	if c != nil {
		c.batch = b
	}
}

// BatchControl returns the context's batch controller, nil-safely: a nil
// context or an unattached query yields a nil *BatchController, whose
// methods answer the fixed defaults.
func (c *ExecContext) BatchControl() *BatchController {
	if c == nil {
		return nil
	}
	return c.batch
}

// Visited returns the number of records decoded by scans under this
// context.
func (c *ExecContext) Visited() uint64 {
	if c == nil {
		return 0
	}
	return c.visited.Load()
}

// PageReads returns the number of buffer-pool requests issued under this
// context (heap fetches plus index traversal).
func (c *ExecContext) PageReads() uint64 {
	if c == nil {
		return 0
	}
	return c.pages.Reads.Load()
}

// PageMisses returns the number of pool requests that went to the
// backing file — the paper's disk-access metric.
func (c *ExecContext) PageMisses() uint64 {
	if c == nil {
		return 0
	}
	return c.pages.Misses.Load()
}

// addVisited records one decoded record, nil-safely.
func (c *ExecContext) addVisited() {
	if c != nil {
		c.visited.Add(1)
	}
}

// addVisitedN records n decoded records at once (batch fetches),
// nil-safely.
func (c *ExecContext) addVisitedN(n uint64) {
	if c != nil {
		c.visited.Add(n)
	}
}

// pageCounters returns the context's page-counter sink for the pager
// layer (nil when the context itself is nil).
func (c *ExecContext) pageCounters() *pager.Counters {
	if c == nil {
		return nil
	}
	return &c.pages
}
