package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pager"
	"repro/internal/uint128"
)

func u(v uint64) uint128.Uint128 { return uint128.From64(v) }

// makeRecords builds n records with plabel = i/10 (runs of 10 share one
// plabel), tag = i%7, start = 2i+1, end = 2i+2.
func makeRecords(n int) []Record {
	recs := make([]Record, n)
	for i := 0; i < n; i++ {
		recs[i] = Record{
			PLabel: u(uint64(i / 10)),
			TagID:  uint32(i%7) + 1,
			Start:  uint32(2*i + 1),
			End:    uint32(2*i + 2),
			Level:  uint16(i%5) + 1,
			Data:   fmt.Sprintf("val-%d", i%13),
		}
	}
	return recs
}

func buildSP(t testing.TB, recs []Record) *Relation {
	t.Helper()
	f := pager.OpenMem(256)
	r, err := Build(f, ClusterPLabel, recs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuildAndCount(t *testing.T) {
	r := buildSP(t, makeRecords(1000))
	if r.Count() != 1000 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Kind() != ClusterPLabel {
		t.Fatalf("Kind = %v", r.Kind())
	}
}

func TestBuildEmpty(t *testing.T) {
	r := buildSP(t, nil)
	if r.Count() != 0 {
		t.Fatal("count")
	}
	got, err := Collect(r.ScanAll(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("scan of empty relation: %d records, %v", len(got), err)
	}
}

func TestScanAllOrdered(t *testing.T) {
	recs := makeRecords(500)
	// Shuffle the input: Build must sort.
	rand.New(rand.NewSource(1)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	r := buildSP(t, recs)
	got, err := Collect(r.ScanAll(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("got %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.PLabel.Cmp(b.PLabel) > 0 || (a.PLabel == b.PLabel && a.Start >= b.Start) {
			t.Fatalf("not in (plabel,start) order at %d: %v,%d then %v,%d", i, a.PLabel, a.Start, b.PLabel, b.Start)
		}
	}
}

func TestScanPLabelExact(t *testing.T) {
	r := buildSP(t, makeRecords(100))
	got, err := Collect(r.ScanPLabelExact(nil, u(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d records, want 10", len(got))
	}
	for i, rec := range got {
		if rec.PLabel != u(3) {
			t.Fatalf("record %d has plabel %v", i, rec.PLabel)
		}
		if i > 0 && got[i-1].Start >= rec.Start {
			t.Fatal("not start-ordered")
		}
	}
	// Missing plabel.
	got, _ = Collect(r.ScanPLabelExact(nil, u(99)))
	if len(got) != 0 {
		t.Fatalf("missing plabel returned %d records", len(got))
	}
}

func TestScanPLabelRange(t *testing.T) {
	r := buildSP(t, makeRecords(100))
	got, err := Collect(r.ScanPLabelRange(nil, u(2), u(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d records, want 30", len(got))
	}
	for _, rec := range got {
		if rec.PLabel.Less(u(2)) || u(4).Less(rec.PLabel) {
			t.Fatalf("record out of range: %v", rec.PLabel)
		}
	}
	// Inclusive bounds.
	got, _ = Collect(r.ScanPLabelRange(nil, u(9), u(9)))
	if len(got) != 10 {
		t.Fatalf("inclusive range got %d", len(got))
	}
	// Empty range.
	got, _ = Collect(r.ScanPLabelRange(nil, u(50), u(60)))
	if len(got) != 0 {
		t.Fatalf("empty range got %d", len(got))
	}
}

func TestScanTag(t *testing.T) {
	f := pager.OpenMem(256)
	recs := makeRecords(700)
	r, err := Build(f, ClusterTag, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r.ScanTag(nil, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, rec := range recs {
		if rec.TagID == 3 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("got %d, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Start >= got[i].Start {
			t.Fatal("tag scan not start-ordered")
		}
	}
}

func TestScanData(t *testing.T) {
	r := buildSP(t, makeRecords(130))
	got, err := Collect(r.ScanData(nil, "val-5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d, want 10", len(got))
	}
	for i, rec := range got {
		if rec.Data != "val-5" {
			t.Fatalf("record %d data = %q", i, rec.Data)
		}
		if i > 0 && got[i-1].Start >= rec.Start {
			t.Fatal("data scan not start-ordered")
		}
	}
	if got, _ := Collect(r.ScanData(nil, "absent")); len(got) != 0 {
		t.Fatal("absent value matched")
	}
}

func TestEmptyDataNotIndexed(t *testing.T) {
	recs := []Record{
		{PLabel: u(1), TagID: 1, Start: 1, End: 2, Level: 1, Data: ""},
		{PLabel: u(2), TagID: 1, Start: 3, End: 4, Level: 1, Data: "x"},
	}
	r := buildSP(t, recs)
	got, _ := Collect(r.ScanData(nil, ""))
	if len(got) != 0 {
		t.Fatalf("empty data indexed: %d", len(got))
	}
}

func TestScanStartRange(t *testing.T) {
	r := buildSP(t, makeRecords(50))
	got, err := Collect(r.ScanStartRange(nil, 11, 21))
	if err != nil {
		t.Fatal(err)
	}
	// starts are 2i+1: 11,13,15,17,19 in [11,21)
	if len(got) != 5 {
		t.Fatalf("got %d, want 5", len(got))
	}
}

func TestDistinctPLabels(t *testing.T) {
	r := buildSP(t, makeRecords(100))
	got, err := r.DistinctPLabels(nil, u(2), u(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d distinct plabels: %v", len(got), got)
	}
	for i, p := range got {
		if p != u(uint64(i+2)) {
			t.Fatalf("plabel[%d] = %v", i, p)
		}
	}
}

func TestScanPLabelRangeByStart(t *testing.T) {
	// Records with interleaved starts across plabels: plabel i/10 with
	// start 2i+1 means plabel runs have consecutive start blocks; make it
	// adversarial with a custom layout instead.
	var recs []Record
	n := 0
	for p := 0; p < 5; p++ {
		for k := 0; k < 20; k++ {
			recs = append(recs, Record{
				PLabel: u(uint64(p)),
				TagID:  1,
				Start:  uint32(p + 5*k + 1), // interleaved round-robin
				End:    uint32(1000 + n),
				Level:  2,
			})
			n++
		}
	}
	r := buildSP(t, recs)
	it, err := r.ScanPLabelRangeByStart(nil, u(1), u(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("got %d records, want 60", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Start >= got[i].Start {
			t.Fatalf("merge not start-ordered at %d: %d then %d", i, got[i-1].Start, got[i].Start)
		}
	}
	// Single-plabel fast path.
	it, err = r.ScanPLabelRangeByStart(nil, u(2), u(2))
	if err != nil {
		t.Fatal(err)
	}
	got, _ = Collect(it)
	if len(got) != 20 {
		t.Fatalf("single-run got %d", len(got))
	}
	// Empty range.
	it, err = r.ScanPLabelRangeByStart(nil, u(100), u(200))
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("empty merged range yielded records")
	}
}

func TestVisitedCounter(t *testing.T) {
	r := buildSP(t, makeRecords(100))
	ctx := NewExecContext()
	if _, err := Collect(r.ScanPLabelExact(ctx, u(1))); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Visited(); got != 10 {
		t.Fatalf("visited = %d, want 10", got)
	}
	if ctx.PageReads() == 0 {
		t.Fatal("scan recorded no page reads in its context")
	}
	// A fresh context starts at zero — and a nil context is valid.
	if NewExecContext().Visited() != 0 {
		t.Fatal("fresh context not zero")
	}
	if _, err := Collect(r.ScanPLabelExact(nil, u(1))); err != nil {
		t.Fatal(err)
	}
}

func TestExecContextIsolation(t *testing.T) {
	// Two contexts scanning the same relation never see each other's
	// counts — the property the old store-global counters lacked.
	r := buildSP(t, makeRecords(100))
	a, b := NewExecContext(), NewExecContext()
	if _, err := Collect(r.ScanPLabelExact(a, u(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r.ScanPLabelRange(b, u(2), u(4))); err != nil {
		t.Fatal(err)
	}
	if got := a.Visited(); got != 10 {
		t.Fatalf("ctx a visited = %d, want 10", got)
	}
	if got := b.Visited(); got != 30 {
		t.Fatalf("ctx b visited = %d, want 30", got)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sp.pg"
	f, err := pager.Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(300)
	if _, err := Build(f, ClusterPLabel, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := pager.Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	r, err := Open(f2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 300 {
		t.Fatalf("count after reopen = %d", r.Count())
	}
	got, err := Collect(r.ScanPLabelExact(nil, u(7)))
	if err != nil || len(got) != 10 {
		t.Fatalf("scan after reopen: %d, %v", len(got), err)
	}
	if got[0].Data == "" {
		t.Fatal("data lost")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	f := pager.OpenMem(8)
	if _, err := f.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestLargeDataValues(t *testing.T) {
	recs := []Record{
		{PLabel: u(1), TagID: 1, Start: 1, End: 2, Level: 1, Data: string(make([]byte, 4000))},
		{PLabel: u(2), TagID: 1, Start: 3, End: 4, Level: 1, Data: "small"},
	}
	r := buildSP(t, recs)
	got, err := Collect(r.ScanAll(nil))
	if err != nil || len(got) != 2 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	if len(got[0].Data) != 4000 {
		t.Fatalf("large data truncated: %d", len(got[0].Data))
	}
}

func TestRecordTooLarge(t *testing.T) {
	f := pager.OpenMem(8)
	_, err := Build(f, ClusterPLabel, []Record{{PLabel: u(1), Start: 1, End: 2, Data: string(make([]byte, pager.PageSize))}})
	if err == nil {
		t.Fatal("expected record-too-large error")
	}
}

func TestClusteringReducesPageMisses(t *testing.T) {
	// The clustered plabel scan should touch far fewer pages than
	// fetching the same records scattered by start order.
	const n = 20000
	recs := make([]Record, n)
	for i := 0; i < n; i++ {
		recs[i] = Record{
			PLabel: u(uint64(i % 100)), // 100 source paths, 200 nodes each
			TagID:  uint32(i%50) + 1,
			Start:  uint32(i + 1),
			End:    uint32(n + i + 1),
			Level:  3,
			Data:   fmt.Sprintf("d%d", i),
		}
	}
	f := pager.OpenMem(16) // small pool to make misses visible
	r, err := Build(f, ClusterPLabel, recs)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.DropCache()
	f.ResetStats()
	got, err := Collect(r.ScanPLabelExact(nil, u(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n/100 {
		t.Fatalf("got %d", len(got))
	}
	misses := f.Stats().Misses
	// 200 records of ~30 bytes fit in a handful of pages; add index
	// descent. Anything near 200 would mean clustering is broken.
	if misses > 20 {
		t.Fatalf("clustered scan took %d page misses for %d records", misses, len(got))
	}
}

func BenchmarkBuild10k(b *testing.B) {
	recs := makeRecords(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := pager.OpenMem(1024)
		if _, err := Build(f, ClusterPLabel, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanPLabelExact(b *testing.B) {
	recs := makeRecords(100000)
	f := pager.OpenMem(4096)
	r, err := Build(f, ClusterPLabel, recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.ScanPLabelExact(nil, u(uint64(i%10000)))
		for it.Next() {
		}
		if it.Err() != nil {
			b.Fatal(it.Err())
		}
	}
}

func TestScanOrderedAfterShuffledBuildByTag(t *testing.T) {
	recs := makeRecords(400)
	rand.New(rand.NewSource(3)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	f := pager.OpenMem(128)
	r, err := Build(f, ClusterTag, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r.ScanAll(nil))
	if err != nil {
		t.Fatal(err)
	}
	ok := sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].TagID != got[j].TagID {
			return got[i].TagID < got[j].TagID
		}
		return got[i].Start < got[j].Start
	})
	if !ok {
		t.Fatal("SD relation not in (tag,start) order")
	}
}
