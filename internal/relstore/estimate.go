package relstore

import (
	"repro/internal/keyenc"
	"repro/internal/uint128"
)

// Selectivity probes for the greedy physical planner.
//
// Each probe answers "how many records would this selection scan?" with
// two O(log n) index descents and no statistics tables: a P-label run's
// length is directly readable from the clustered index, because the
// cluster key orders records by {plabel, start} (or {tag, start}). The
// returned count is exact when both range bounds land on the same index
// leaf and an interpolated estimate otherwise — but zero is always
// definitive (see pbtree.EstimateRange), which is what lets the planner
// prove a fragment empty and short-circuit the whole query.
//
// Probe page reads are accounted to the ExecContext like any scan, so
// planning cost shows up in the same per-query page-read metric the
// paper's experiments report.

// EstimatePLabelRange estimates the number of records with
// lo <= plabel <= hi. The relation must be plabel-clustered.
func (r *Relation) EstimatePLabelRange(ctx *ExecContext, lo, hi uint128.Uint128) (uint64, error) {
	from := keyenc.Uint128(lo)
	to := keyenc.PrefixSuccessor(keyenc.Uint128(hi))
	return r.cluster.EstimateRange(from, to, ctx.pageCounters())
}

// EstimatePLabelExact estimates the length of the single P-label run p.
// The relation must be plabel-clustered.
func (r *Relation) EstimatePLabelExact(ctx *ExecContext, p uint128.Uint128) (uint64, error) {
	prefix := keyenc.Uint128(p)
	return r.cluster.EstimateRange(prefix, keyenc.PrefixSuccessor(prefix), ctx.pageCounters())
}

// EstimateTag estimates the number of records with the given tag id. The
// relation must be tag-clustered.
func (r *Relation) EstimateTag(ctx *ExecContext, tagID uint32) (uint64, error) {
	prefix := keyenc.Uint32(tagID)
	return r.cluster.EstimateRange(prefix, keyenc.PrefixSuccessor(prefix), ctx.pageCounters())
}

// EstimateData estimates the number of records whose data equals value,
// via the data index (which indexes only non-empty values).
func (r *Relation) EstimateData(ctx *ExecContext, value string) (uint64, error) {
	prefix := keyenc.String(value)
	return r.dataIdx.EstimateRange(prefix, keyenc.PrefixSuccessor(prefix), ctx.pageCounters())
}
