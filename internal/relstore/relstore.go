// Package relstore implements the BLAS node relations (paper §4, §5.2.1).
//
// A Relation stores one tuple per XML node:
//
//	SP(plabel, start, end, level, data)  clustered by {plabel, start}
//	SD(tag,    start, end, level, data)  clustered by {tag, start}
//
// SP drives the BLAS translators (P-label range/equality selections); SD
// is the D-labeling baseline's relation. Both carry all five attributes
// plus the tag id, so either relation can answer any query.
//
// A relation is a paged heap file holding records in cluster-key order,
// plus three bulk-loaded B+ tree indexes (paper §4: "B+ tree indexes are
// built on start, plabel and data"):
//
//	cluster: (plabel|tag, start) -> locator     — the clustered index
//	start:   start              -> locator
//	data:    (data, start)      -> locator      — only non-empty values
//
// All reads go through the pager's buffer pool, and every record decoded
// by a scan is counted in the querying ExecContext — the two quantities
// the paper's experiments report, attributed per query so that any
// number of queries can run concurrently over one Relation.
//
// # On-disk page formats
//
// Two heap page formats exist; the meta page's magic identifies which
// one a relation uses, and every page of one relation uses the same
// format:
//
//	format  magic       heap page layout
//	------  ----------  ----------------------------------------------
//	1       "BLASREL1"  slotted, record at a time:
//	                    [0:2] record count, slot offsets (2 B each),
//	                    then per-record encodings
//	                    (plabel 16 B, tagID u32, start u32, end u32,
//	                    level u16, dlen u16, data bytes)
//	2       "BLASREL2"  columnar, delta-compressed runs — see the
//	                    layout comment in columnar.go: per cluster-
//	                    prefix run, starts as ascending delta varints,
//	                    ends/levels/value-lengths as packed varint
//	                    columns, values out of line
//
// Compatibility contract: Build writes format 2; Open reads either
// format (format-1 stores keep working read-only, with the original
// record-at-a-time decode paths), and any other magic is rejected with
// an unsupported-page-format error. Rebuilding with blasload migrates a
// store to the current format. Locators, index layouts and every scan
// API are format-independent, and scan results are byte-identical
// across formats.
package relstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/keyenc"
	"repro/internal/pager"
	"repro/internal/pbtree"
	"repro/internal/uint128"
)

// Clustering selects the relation's cluster key.
type Clustering byte

// Clustering kinds.
const (
	ClusterPLabel Clustering = 1 // {plabel, start} — the BLAS relation SP
	ClusterTag    Clustering = 2 // {tag, start} — the D-labeling relation SD
)

func (c Clustering) String() string {
	if c == ClusterPLabel {
		return "SP"
	}
	return "SD"
}

// Record is one node tuple.
type Record struct {
	PLabel uint128.Uint128
	TagID  uint32 // scheme digit (1-based)
	Start  uint32
	End    uint32
	Level  uint16
	Data   string // text value; "" = null
}

// recordSize returns the encoded size of r.
func recordSize(r *Record) int { return 16 + 4 + 4 + 4 + 2 + 2 + len(r.Data) }

// encodeRecord appends r's encoding to dst.
func encodeRecord(dst []byte, r *Record) []byte {
	dst = r.PLabel.AppendBytes(dst)
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:], r.TagID)
	binary.LittleEndian.PutUint32(b[4:], r.Start)
	binary.LittleEndian.PutUint32(b[8:], r.End)
	binary.LittleEndian.PutUint16(b[12:], r.Level)
	binary.LittleEndian.PutUint16(b[14:], uint16(len(r.Data)))
	dst = append(dst, b[:]...)
	return append(dst, r.Data...)
}

// decodeRecord parses a record at buf and returns it.
func decodeRecord(buf []byte) Record {
	var r Record
	r.PLabel = uint128.FromBytes(buf)
	r.TagID = binary.LittleEndian.Uint32(buf[16:])
	r.Start = binary.LittleEndian.Uint32(buf[20:])
	r.End = binary.LittleEndian.Uint32(buf[24:])
	r.Level = binary.LittleEndian.Uint16(buf[28:])
	dlen := int(binary.LittleEndian.Uint16(buf[30:]))
	r.Data = string(buf[32 : 32+dlen])
	return r
}

// clusterKey builds the cluster-index key for r.
func clusterKey(kind Clustering, r *Record, enc *keyenc.Encoder) []byte {
	enc.Reset()
	if kind == ClusterPLabel {
		enc.PutUint128(r.PLabel)
	} else {
		enc.PutUint32(r.TagID)
	}
	enc.PutUint32(r.Start)
	return enc.Bytes()
}

// Locator addresses a record in the heap.
type Locator struct {
	Page pager.PageID
	Slot uint16
}

func encodeLocator(l Locator) []byte {
	var b [6]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(l.Page))
	binary.LittleEndian.PutUint16(b[4:], l.Slot)
	return b[:]
}

func decodeLocator(b []byte) Locator {
	return Locator{
		Page: pager.PageID(binary.LittleEndian.Uint32(b[0:])),
		Slot: binary.LittleEndian.Uint16(b[4:]),
	}
}

// --- heap page layout ---
//
//	[0:2]  record count
//	[2:..] slot offsets (2 bytes each), then records

const heapHeader = 2

// pageHeaderSize returns the fixed header size of a heap page in the
// given format (before any slot directory / run directory entries).
func pageHeaderSize(format int) int {
	if format == FormatColumnar {
		return colPageHeader
	}
	return heapHeader
}

// Relation is an open node relation. A Relation is immutable after Build
// and safe for concurrent scans; per-query statistics accumulate in the
// ExecContext each scan is given.
type Relation struct {
	f        *pager.File
	meta     relMeta
	cluster  *pbtree.Reader
	startIdx *pbtree.Reader
	dataIdx  *pbtree.Reader
}

type relMeta struct {
	format    int // heap page format: FormatLegacy or FormatColumnar
	kind      Clustering
	count     uint64
	heapFirst pager.PageID
	heapLast  pager.PageID
	cluster   pbtree.Tree
	start     pbtree.Tree
	data      pbtree.Tree
}

// Heap page formats (see the package doc's format table).
const (
	// FormatLegacy is the slotted record-at-a-time layout (v1 stores).
	FormatLegacy = 1
	// FormatColumnar is the columnar delta-compressed layout Build
	// writes.
	FormatColumnar = 2
)

const (
	metaMagicV1 = "BLASREL1"
	metaMagicV2 = "BLASREL2"
)

func magicFor(format int) string {
	if format == FormatLegacy {
		return metaMagicV1
	}
	return metaMagicV2
}

func writeMeta(f *pager.File, id pager.PageID, m *relMeta) error {
	return f.Update(id, func(p []byte) error {
		copy(p, magicFor(m.format))
		p[8] = byte(m.kind)
		binary.LittleEndian.PutUint64(p[9:], m.count)
		binary.LittleEndian.PutUint32(p[17:], uint32(m.heapFirst))
		binary.LittleEndian.PutUint32(p[21:], uint32(m.heapLast))
		off := 25
		for _, t := range []pbtree.Tree{m.cluster, m.start, m.data} {
			binary.LittleEndian.PutUint32(p[off:], uint32(t.Root))
			binary.LittleEndian.PutUint32(p[off+4:], t.Height)
			binary.LittleEndian.PutUint64(p[off+8:], t.Count)
			off += 16
		}
		return nil
	})
}

func readMeta(f *pager.File, id pager.PageID) (relMeta, error) {
	var m relMeta
	err := f.View(id, func(p []byte) error {
		switch string(p[:8]) {
		case metaMagicV1:
			m.format = FormatLegacy
		case metaMagicV2:
			m.format = FormatColumnar
		default:
			return fmt.Errorf("relstore: unsupported page format (magic %q; this build reads %q and %q — rebuild the store with blasload)",
				p[:8], metaMagicV1, metaMagicV2)
		}
		m.kind = Clustering(p[8])
		if m.kind != ClusterPLabel && m.kind != ClusterTag {
			return fmt.Errorf("relstore: bad clustering %d", p[8])
		}
		m.count = binary.LittleEndian.Uint64(p[9:])
		m.heapFirst = pager.PageID(binary.LittleEndian.Uint32(p[17:]))
		m.heapLast = pager.PageID(binary.LittleEndian.Uint32(p[21:]))
		off := 25
		for _, t := range []*pbtree.Tree{&m.cluster, &m.start, &m.data} {
			t.Root = pager.PageID(binary.LittleEndian.Uint32(p[off:]))
			t.Height = binary.LittleEndian.Uint32(p[off+4:])
			t.Count = binary.LittleEndian.Uint64(p[off+8:])
			off += 16
		}
		return nil
	})
	return m, err
}

// Build creates a relation in f from records. The records are sorted by
// the cluster key internally (the input order does not matter); the heap
// is packed in cluster order into columnar delta-compressed pages
// (FormatColumnar), then the three indexes are bulk loaded. Page 0 of f
// holds the metadata.
func Build(f *pager.File, kind Clustering, records []Record) (*Relation, error) {
	return BuildFormat(f, kind, records, FormatColumnar)
}

// BuildFormat is Build with an explicit heap page format. FormatLegacy
// exists for compatibility tests and the decode benchmark; production
// stores use Build (FormatColumnar).
func BuildFormat(f *pager.File, kind Clustering, records []Record, format int) (*Relation, error) {
	if kind != ClusterPLabel && kind != ClusterTag {
		return nil, fmt.Errorf("relstore: bad clustering %d", kind)
	}
	if format != FormatLegacy && format != FormatColumnar {
		return nil, fmt.Errorf("relstore: unknown page format %d", format)
	}
	metaPage, err := f.Alloc()
	if err != nil {
		return nil, err
	}
	if metaPage != 0 {
		return nil, fmt.Errorf("relstore: metadata page must be page 0, got %d", metaPage)
	}

	recs := make([]*Record, len(records))
	for i := range records {
		recs[i] = &records[i]
	}
	enc1, enc2 := keyenc.New(nil), keyenc.New(nil)
	sort.Slice(recs, func(i, j int) bool {
		return keyenc.Compare(clusterKey(kind, recs[i], enc1), clusterKey(kind, recs[j], enc2)) < 0
	})

	// Pack the heap.
	type pending struct {
		rec *Record
		loc Locator
	}
	placed := make([]pending, 0, len(recs))
	var curPage pager.PageID
	var curRecs []*Record
	curUsed := pageHeaderSize(format)
	heapFirst, heapLast := pager.PageID(0), pager.PageID(0)
	havePages := false

	flush := func() error {
		if len(curRecs) == 0 {
			return nil
		}
		id, err := f.Alloc()
		if err != nil {
			return err
		}
		if !havePages {
			heapFirst = id
			havePages = true
		}
		heapLast = id
		curPage = id
		err = f.Update(id, func(p []byte) error {
			if format == FormatColumnar {
				return encodeColumnarPage(p, kind, curRecs)
			}
			binary.LittleEndian.PutUint16(p[0:2], uint16(len(curRecs)))
			off := heapHeader + 2*len(curRecs)
			for i, r := range curRecs {
				binary.LittleEndian.PutUint16(p[heapHeader+2*i:], uint16(off))
				encoded := encodeRecord(p[off:off], r)
				off += len(encoded)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for i, r := range curRecs {
			placed = append(placed, pending{rec: r, loc: Locator{Page: curPage, Slot: uint16(i)}})
		}
		curRecs = curRecs[:0]
		curUsed = pageHeaderSize(format)
		return nil
	}

	for _, r := range recs {
		var need int
		if format == FormatColumnar {
			// Exact incremental cost: a record continuing the current
			// page's last run pays its column bytes only; a record opening
			// a run additionally pays the directory entry and run header,
			// and its start is stored absolute.
			var prev *Record
			runCost := 0
			if len(curRecs) > 0 && sameRun(kind, curRecs[len(curRecs)-1], r) {
				prev = curRecs[len(curRecs)-1]
			} else {
				runCost = colRunDirEnt + runHeaderSize(kind)
			}
			need = runCost + colRecordCost(kind, prev, r)
			if colRecordCost(kind, nil, r) > colMaxRecord(kind) {
				return nil, fmt.Errorf("relstore: record too large (%d bytes of data %q…)", len(r.Data), clip(r.Data, 20))
			}
		} else {
			need = 2 + recordSize(r) // slot + record
			if recordSize(r) > pager.PageSize-heapHeader-2 {
				return nil, fmt.Errorf("relstore: record too large (%d bytes, data %q…)", recordSize(r), clip(r.Data, 20))
			}
		}
		if curUsed+need > pager.PageSize {
			if err := flush(); err != nil {
				return nil, err
			}
			if format == FormatColumnar {
				// On a fresh page the record opens a run unconditionally.
				need = colRunDirEnt + runHeaderSize(kind) + colRecordCost(kind, nil, r)
			}
		}
		curRecs = append(curRecs, r)
		curUsed += need
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if !havePages {
		// Empty relation: allocate one empty heap page so scans work.
		id, err := f.Alloc()
		if err != nil {
			return nil, err
		}
		heapFirst, heapLast = id, id
	}

	// Bulk load the indexes. placed is in cluster-key order already.
	cb := pbtree.NewBuilder(f)
	enc := keyenc.New(nil)
	for _, pe := range placed {
		if err := cb.Add(clusterKey(kind, pe.rec, enc), encodeLocator(pe.loc)); err != nil {
			return nil, err
		}
	}
	clusterTree, err := cb.Finish()
	if err != nil {
		return nil, err
	}

	byStart := make([]pending, len(placed))
	copy(byStart, placed)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].rec.Start < byStart[j].rec.Start })
	sb := pbtree.NewBuilder(f)
	for _, pe := range byStart {
		if err := sb.Add(keyenc.Uint32(pe.rec.Start), encodeLocator(pe.loc)); err != nil {
			return nil, err
		}
	}
	startTree, err := sb.Finish()
	if err != nil {
		return nil, err
	}

	var byData []pending
	for _, pe := range placed {
		if pe.rec.Data != "" {
			byData = append(byData, pe)
		}
	}
	sort.Slice(byData, func(i, j int) bool {
		if byData[i].rec.Data != byData[j].rec.Data {
			return byData[i].rec.Data < byData[j].rec.Data
		}
		return byData[i].rec.Start < byData[j].rec.Start
	})
	db := pbtree.NewBuilder(f)
	for _, pe := range byData {
		k := keyenc.New(nil).PutString(pe.rec.Data).PutUint32(pe.rec.Start).Bytes()
		if err := db.Add(k, encodeLocator(pe.loc)); err != nil {
			return nil, err
		}
	}
	dataTree, err := db.Finish()
	if err != nil {
		return nil, err
	}

	m := relMeta{
		format:    format,
		kind:      kind,
		count:     uint64(len(recs)),
		heapFirst: heapFirst,
		heapLast:  heapLast,
		cluster:   clusterTree,
		start:     startTree,
		data:      dataTree,
	}
	if err := writeMeta(f, metaPage, &m); err != nil {
		return nil, err
	}
	if err := f.Flush(); err != nil {
		return nil, err
	}
	return openWithMeta(f, m), nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Open opens a relation previously built in f.
func Open(f *pager.File) (*Relation, error) {
	m, err := readMeta(f, 0)
	if err != nil {
		return nil, err
	}
	return openWithMeta(f, m), nil
}

func openWithMeta(f *pager.File, m relMeta) *Relation {
	return &Relation{
		f:        f,
		meta:     m,
		cluster:  pbtree.NewReader(f, m.cluster),
		startIdx: pbtree.NewReader(f, m.start),
		dataIdx:  pbtree.NewReader(f, m.data),
	}
}

// Kind returns the relation's clustering.
func (r *Relation) Kind() Clustering { return r.meta.kind }

// Count returns the number of records.
func (r *Relation) Count() uint64 { return r.meta.count }

// File exposes the underlying paged file (for buffer-pool statistics and
// cache control).
func (r *Relation) File() *pager.File { return r.f }

// fetch reads the record at loc, accounting the page request and the
// decoded record to ctx. decodeRecord copies every field out of the page
// (strings included), so nothing references the pager's frame once the
// view callback returns and the frame is unpinned.
func (r *Relation) fetch(ctx *ExecContext, loc Locator) (Record, error) {
	var rec Record
	err := r.f.ViewCounted(loc.Page, ctx.pageCounters(), func(p []byte) error {
		n := int(binary.LittleEndian.Uint16(p[0:2]))
		if int(loc.Slot) >= n {
			return fmt.Errorf("relstore: slot %d out of range on page %d (%d records)", loc.Slot, loc.Page, n)
		}
		if r.meta.format == FormatColumnar {
			s := int(loc.Slot)
			var one [1]Record
			if err := decodeColSlots(p, r.meta.kind, s, s+1, one[:]); err != nil {
				return err
			}
			rec = one[0]
			return nil
		}
		off := int(binary.LittleEndian.Uint16(p[heapHeader+2*int(loc.Slot):]))
		rec = decodeRecord(p[off:])
		return nil
	})
	if err != nil {
		return Record{}, err
	}
	ctx.addVisited()
	return rec, nil
}

// Get fetches the record at loc (exported for engines that keep locators).
func (r *Relation) Get(ctx *ExecContext, loc Locator) (Record, error) { return r.fetch(ctx, loc) }
