package relstore

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/pager"
	"repro/internal/uint128"
)

// genColumnarCorpus builds a randomized cluster-ordered corpus that
// exercises the columnar encoder's edge cases: single-record runs, runs
// long enough to span pages, empty values, values large enough to force
// a page break, and start gaps wide enough to need multi-byte deltas.
// Starts are globally unique so the same records are valid under both
// clusterings.
func genColumnarCorpus(rng *rand.Rand, nRuns int) []Record {
	var recs []Record
	start := uint32(1)
	for run := 0; run < nRuns; run++ {
		plabel := u(uint64(run + 1))
		tag := uint32(rng.Intn(13) + 1)
		count := 1
		switch rng.Intn(4) {
		case 1:
			count = rng.Intn(20) + 2
		case 2:
			count = rng.Intn(200) + 20
		case 3:
			count = rng.Intn(900) + 200 // spans multiple pages
		}
		for i := 0; i < count; i++ {
			var data string
			switch rng.Intn(5) {
			case 0: // empty
			case 1:
				data = strings.Repeat("x", rng.Intn(3000)+500) // forces page breaks
			default:
				data = strings.Repeat("v", rng.Intn(20))
			}
			recs = append(recs, Record{
				PLabel: plabel,
				TagID:  tag,
				Start:  start,
				End:    start + uint32(rng.Intn(1000)),
				Level:  uint16(rng.Intn(30) + 1),
				Data:   data,
			})
			start += uint32(rng.Intn(500) + 1) // 1-byte and multi-byte deltas
		}
	}
	return recs
}

func buildFormatT(t testing.TB, kind Clustering, recs []Record, format int) *Relation {
	t.Helper()
	f := pager.OpenMem(1024)
	r, err := BuildFormat(f, kind, recs, format)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func drainBatch(t testing.TB, bi BatchIter, bufSize int) []Record {
	t.Helper()
	buf := make([]Record, bufSize)
	var out []Record
	for {
		n, err := bi.NextBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// TestColumnarLegacyEquivalence is the round-trip property test: the
// same records built in both page formats must decode byte-identically
// through every scan path, with matching visited counts on full drains.
func TestColumnarLegacyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := genColumnarCorpus(rng, 40)
	for _, kind := range []Clustering{ClusterPLabel, ClusterTag} {
		leg := buildFormatT(t, kind, recs, FormatLegacy)
		col := buildFormatT(t, kind, recs, FormatColumnar)

		lc, cc := NewExecContext(), NewExecContext()
		a, err := Collect(leg.ScanAll(lc))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Collect(col.ScanAll(cc))
		if err != nil {
			t.Fatal(err)
		}
		if !recordsEqual(a, b) {
			t.Fatalf("kind %v: ScanAll differs between formats (%d vs %d records)", kind, len(a), len(b))
		}
		if lc.Visited() != cc.Visited() {
			t.Errorf("kind %v: full-drain visited differs: legacy %d, columnar %d", kind, lc.Visited(), cc.Visited())
		}

		if kind == ClusterPLabel {
			for _, p := range []uint128.Uint128{u(1), u(3), u(40), u(9999)} {
				a := drainBatch(t, leg.ScanPLabelExactBatch(nil, p, 0, 0), 128)
				b := drainBatch(t, col.ScanPLabelExactBatch(nil, p, 0, 0), 128)
				if !recordsEqual(a, b) {
					t.Fatalf("plabel %v: batch scans differ (%d vs %d)", p, len(a), len(b))
				}
			}
		} else {
			for tag := uint32(1); tag <= 14; tag++ {
				a := drainBatch(t, leg.ScanTagBatch(nil, tag, 0, 0), 128)
				b := drainBatch(t, col.ScanTagBatch(nil, tag, 0, 0), 128)
				if !recordsEqual(a, b) {
					t.Fatalf("tag %d: batch scans differ (%d vs %d)", tag, len(a), len(b))
				}
			}
		}
	}
}

// TestColumnarStartRangeEdges drives the [lo, hi) restriction through
// both formats at the boundary values the packed-starts cut must get
// exactly right: bounds equal to record starts (lo inclusive, hi
// exclusive), bounds past either end, and an empty window.
func TestColumnarStartRangeEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := genColumnarCorpus(rng, 12)
	leg := buildFormatT(t, ClusterPLabel, recs, FormatLegacy)
	col := buildFormatT(t, ClusterPLabel, recs, FormatColumnar)

	// Collect per-plabel starts to aim the bounds at exact records.
	byPLabel := map[uint128.Uint128][]uint32{}
	for _, r := range recs {
		byPLabel[r.PLabel] = append(byPLabel[r.PLabel], r.Start)
	}
	for p, starts := range byPLabel {
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		first, last := starts[0], starts[len(starts)-1]
		bounds := [][2]uint32{
			{0, 0},                // unbounded
			{first, 0},            // lo == first start (inclusive)
			{first + 1, 0},        // just past the first
			{0, last},             // hi == last start (exclusive: drops it)
			{0, last + 1},         // hi just past the last (keeps it)
			{first, first},        // lo == hi, nonzero: empty
			{last + 1, last + 10}, // past the run
		}
		if len(starts) > 2 {
			mid := starts[len(starts)/2]
			bounds = append(bounds, [2]uint32{first, mid}, [2]uint32{mid, last + 1})
		}
		for _, bd := range bounds {
			lo, hi := bd[0], bd[1]
			a := drainBatch(t, leg.ScanPLabelExactBatch(nil, p, lo, hi), 64)
			b := drainBatch(t, col.ScanPLabelExactBatch(nil, p, lo, hi), 64)
			if !recordsEqual(a, b) {
				t.Fatalf("plabel %v [%d, %d): formats differ (%d vs %d records)", p, lo, hi, len(a), len(b))
			}
			for _, r := range b {
				if r.Start < lo || (hi != 0 && r.Start >= hi) {
					t.Fatalf("plabel %v [%d, %d): record start %d outside bounds", p, lo, hi, r.Start)
				}
			}
		}
	}
}

// TestColumnarStartIndexFetch routes the start-index batch path (index
// locators resolved through fetchBatch's columnar slot decoding) through
// both formats.
func TestColumnarStartIndexFetch(t *testing.T) {
	recs := makeRecords(3000)
	leg := buildFormatT(t, ClusterPLabel, recs, FormatLegacy)
	col := buildFormatT(t, ClusterPLabel, recs, FormatColumnar)
	for _, bd := range [][2]uint32{{0, 0}, {101, 1001}, {1, 2}, {5999, 0}} {
		a := drainBatch(t, leg.ScanStartRangeBatch(nil, bd[0], bd[1]), 100)
		b := drainBatch(t, col.ScanStartRangeBatch(nil, bd[0], bd[1]), 100)
		if !recordsEqual(a, b) {
			t.Fatalf("start range [%d, %d): formats differ (%d vs %d)", bd[0], bd[1], len(a), len(b))
		}
	}
}

// TestFormatVersionMismatch: a store written by a newer build (unknown
// magic) must be rejected with an error that names the readable formats
// and points at rebuilding.
func TestFormatVersionMismatch(t *testing.T) {
	f := pager.OpenMem(64)
	if _, err := Build(f, ClusterPLabel, makeRecords(10)); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(0, func(p []byte) error {
		copy(p, "BLASREL9")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Open(f)
	if err == nil {
		t.Fatal("Open accepted an unknown page-format magic")
	}
	for _, want := range []string{"BLASREL9", "BLASREL1", "BLASREL2", "blasload"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("format-mismatch error %q does not mention %q", err, want)
		}
	}
}

func TestBuildFormatRejectsUnknown(t *testing.T) {
	for _, format := range []int{0, 3, -1} {
		if _, err := BuildFormat(pager.OpenMem(16), ClusterPLabel, nil, format); err == nil {
			t.Errorf("BuildFormat accepted format %d", format)
		}
	}
}

// FuzzColumnarRoundTrip builds a derived corpus in both formats and
// requires identical scans. The corpus shape (run lengths, value sizes,
// start gaps) is derived from the fuzzed seed.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(10))
	f.Add(int64(99), uint16(3))
	f.Add(int64(-7), uint16(60))
	f.Fuzz(func(t *testing.T, seed int64, nRuns uint16) {
		rng := rand.New(rand.NewSource(seed))
		recs := genColumnarCorpus(rng, int(nRuns%64))
		leg := buildFormatT(t, ClusterPLabel, recs, FormatLegacy)
		col := buildFormatT(t, ClusterPLabel, recs, FormatColumnar)
		a, err := Collect(leg.ScanAll(nil))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Collect(col.ScanAll(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !recordsEqual(a, b) {
			t.Fatalf("formats differ: %d vs %d records", len(a), len(b))
		}
		if len(recs) > 0 {
			p := recs[rng.Intn(len(recs))].PLabel
			hi := recs[rng.Intn(len(recs))].Start
			x := drainBatch(t, leg.ScanPLabelExactBatch(nil, p, 0, hi), 64)
			y := drainBatch(t, col.ScanPLabelExactBatch(nil, p, 0, hi), 64)
			if !recordsEqual(x, y) {
				t.Fatalf("restricted scans differ: %d vs %d records", len(x), len(y))
			}
		}
	})
}

// encodeTestPage packs recs (which must fit) into one columnar page.
func encodeTestPage(t testing.TB, kind Clustering, recs []Record) []byte {
	t.Helper()
	ptrs := make([]*Record, len(recs))
	for i := range recs {
		ptrs[i] = &recs[i]
	}
	p := make([]byte, pager.PageSize)
	if err := encodeColumnarPage(p, kind, ptrs); err != nil {
		t.Fatal(err)
	}
	return p
}

func zeroAllocPageRecords(kind Clustering) []Record {
	var recs []Record
	for run := 0; run < 3; run++ {
		for i := 0; i < 60; i++ {
			recs = append(recs, Record{
				PLabel: u(uint64(run + 1)),
				TagID:  uint32(run + 1),
				Start:  uint32(run*1000 + i*3 + 1),
				End:    uint32(run*1000 + i*3 + 2),
				Level:  uint16(i%9 + 1),
				// Data deliberately empty: the value blob of an
				// empty-values run chunk is the empty string, so the
				// decode must not allocate at all.
			})
		}
	}
	_ = kind
	return recs
}

// TestColumnarDecodeZeroAlloc guards the decode hot path: materializing
// records with empty values into a preallocated batch must not allocate
// (with values, the only allocation is the one blob per run chunk).
func TestColumnarDecodeZeroAlloc(t *testing.T) {
	for _, kind := range []Clustering{ClusterPLabel, ClusterTag} {
		recs := zeroAllocPageRecords(kind)
		p := encodeTestPage(t, kind, recs)
		dst := make([]Record, len(recs))
		var decodeErr error
		allocs := testing.AllocsPerRun(100, func() {
			decodeErr = decodeColSlots(p, kind, 0, len(recs), dst)
		})
		if decodeErr != nil {
			t.Fatal(decodeErr)
		}
		if allocs != 0 {
			t.Errorf("kind %v: decodeColSlots allocates %.1f times per page, want 0", kind, allocs)
		}
		for i := range recs {
			if dst[i] != recs[i] {
				t.Fatalf("kind %v: record %d decoded as %+v, want %+v", kind, i, dst[i], recs[i])
			}
		}
	}
}

// TestHotpathAnnotations pins the //blas:hotpath set to the decode fast
// paths the zero-alloc guard and BenchmarkDecode* measure, so the
// hotalloc gate and the benchmarks cannot drift apart silently.
func TestHotpathAnnotations(t *testing.T) {
	got, err := analysis.HotpathFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"decodeColSlots", "decodeRunRecords", "fetchBatch", "runStartsUpper"}
	for _, name := range want {
		if !got[name] {
			t.Errorf("%s lost its //blas:hotpath annotation; the decode zero-alloc guard and hotalloc no longer cover the same code", name)
		}
	}
	if len(got) != len(want) {
		var names []string
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Errorf("//blas:hotpath set = %v, want exactly %v: annotate new fast paths here and extend the zero-alloc guard", names, want)
	}
}

// BenchmarkDecodeColumnarPage tracks single-page batch-decode cost on
// the SP layout (the CI zero-alloc step runs it with -benchtime=1x).
func BenchmarkDecodeColumnarPage(b *testing.B) {
	recs := zeroAllocPageRecords(ClusterPLabel)
	p := encodeTestPage(b, ClusterPLabel, recs)
	dst := make([]Record, len(recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decodeColSlots(p, ClusterPLabel, 0, len(recs), dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeColumnarScan tracks the full columnar cluster-scan
// batch path against a relation, values included.
func BenchmarkDecodeColumnarScan(b *testing.B) {
	recs := makeRecords(100000)
	f := pager.OpenMem(4096)
	r, err := BuildFormat(f, ClusterPLabel, recs, FormatColumnar)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Record, DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bi := r.ScanPLabelExactBatch(nil, u(uint64(i%10000)), 0, 0)
		for {
			n, err := bi.NextBatch(buf)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
	}
}
