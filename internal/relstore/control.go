package relstore

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Batch sizing bounds. DefaultBatchSize (batch.go) is the fixed fallback
// when no controller is attached and the adaptive controller's starting
// point; adaptation stays inside [MinBatchSize, MaxBatchSize].
const (
	// MinBatchSize is the smallest batch an adaptive stream will request.
	MinBatchSize = 64
	// MaxBatchSize is the largest batch an adaptive stream will request.
	MaxBatchSize = 4096
	// DefaultPrefetchDepth is the starting number of in-flight batches a
	// prefetching stream keeps; adaptation stays in [1, maxPrefetchDepth].
	DefaultPrefetchDepth = 2

	maxPrefetchDepth = 8
)

// BatchController tunes one query's batch size and prefetch depth from
// observed stream behaviour. Streams call ObserveBatch after filling a
// batch (with the fill latency and the pager-miss delta it caused) and
// ObserveStall when a consumer blocks on a prefetcher; between calls the
// controller converges the batch size toward the smallest that keeps
// misses amortized and the prefetch depth toward the shallowest that
// hides fill latency:
//
//   - full, miss-heavy batches grow the size (misses are being paid per
//     batch; fewer, larger batches amortize them),
//   - repeatedly underfilled clean batches shrink it (the stream drains
//     less than it asks for; smaller buffers cut memory and copy waste),
//   - consumers stalling on prefetchers for more than a quarter of the
//     producers' fill time deepen the pipeline.
//
// A zero value passed to NewBatchController means "adaptive"; a positive
// value pins that dimension (clamped to its bounds). All methods are
// safe for concurrent use by a query's streams, and every method is
// nil-safe: a nil controller behaves as the fixed defaults, so engine
// hot paths need no attached-controller branch. The controller never
// affects results — only buffer sizes and pipeline depth.
type BatchController struct {
	size  atomic.Int64
	depth atomic.Int64

	fixedSize  bool
	fixedDepth bool

	growStreak   atomic.Int64
	shrinkStreak atomic.Int64
	fillNS       atomic.Int64
	stallNS      atomic.Int64

	classes [obs.NumBatchClasses]atomic.Uint64
}

// NewBatchController returns a controller with the given fixed batch
// size and prefetch depth; zero means adapt that dimension. Values are
// clamped to [MinBatchSize, MaxBatchSize] and [1, 8].
func NewBatchController(batchSize, prefetchDepth int) *BatchController {
	c := &BatchController{}
	if batchSize > 0 {
		c.fixedSize = true
		c.size.Store(int64(clampInt(batchSize, MinBatchSize, MaxBatchSize)))
	} else {
		c.size.Store(DefaultBatchSize)
	}
	if prefetchDepth > 0 {
		c.fixedDepth = true
		c.depth.Store(int64(clampInt(prefetchDepth, 1, maxPrefetchDepth)))
	} else {
		c.depth.Store(DefaultPrefetchDepth)
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BatchSize returns the batch size streams should request next. On a nil
// controller it is the fixed DefaultBatchSize.
func (c *BatchController) BatchSize() int {
	if c == nil {
		return DefaultBatchSize
	}
	return int(c.size.Load())
}

// PrefetchDepth returns the number of batches a prefetching stream
// should keep in flight. On a nil controller it is DefaultPrefetchDepth.
func (c *BatchController) PrefetchDepth() int {
	if c == nil {
		return DefaultPrefetchDepth
	}
	return int(c.depth.Load())
}

// ObserveBatch records one produced batch: n records materialized, the
// time spent filling it, and the pager misses the fill incurred. Empty
// batches (stream exhaustion probes) are ignored.
func (c *BatchController) ObserveBatch(n int, fill time.Duration, misses uint64) {
	if c == nil || n <= 0 {
		return
	}
	c.classes[batchSizeClass(n)].Add(1)
	c.fillNS.Add(int64(fill))
	if c.fixedSize {
		return
	}
	size := c.size.Load()
	switch {
	case misses > 0 && int64(n) >= size:
		// Full and paying pager misses: amortize them over larger batches.
		c.shrinkStreak.Store(0)
		if c.growStreak.Add(1) >= 2 && size < MaxBatchSize {
			c.size.CompareAndSwap(size, min64(size*2, MaxBatchSize))
			c.growStreak.Store(0)
		}
	case misses == 0 && int64(n) < size/2:
		// Cache-resident and underfilled: the consumer drains less than
		// requested, so shrink toward what it actually uses.
		c.growStreak.Store(0)
		if c.shrinkStreak.Add(1) >= 4 && size > MinBatchSize {
			c.size.CompareAndSwap(size, max64(size/2, MinBatchSize))
			c.shrinkStreak.Store(0)
		}
	default:
		c.growStreak.Store(0)
		c.shrinkStreak.Store(0)
	}
}

// ObserveStall records time a consumer spent blocked waiting on a
// prefetcher. Once cumulative stall exceeds a quarter of cumulative fill
// time the pipeline is too shallow to hide fill latency, so the depth
// deepens (and the accounting resets to demand fresh evidence).
func (c *BatchController) ObserveStall(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	stall := c.stallNS.Add(int64(d))
	if c.fixedDepth {
		return
	}
	fill := c.fillNS.Load()
	if stall > fill/4 && fill > 0 {
		depth := c.depth.Load()
		if depth < maxPrefetchDepth && c.depth.CompareAndSwap(depth, depth+1) {
			c.stallNS.Store(0)
		}
	}
}

// SizeClasses returns the controller's per-size-class batch counts for
// merging into the store registry (obs.Registry.AddBatchSizes).
func (c *BatchController) SizeClasses() [obs.NumBatchClasses]uint64 {
	var out [obs.NumBatchClasses]uint64
	if c == nil {
		return out
	}
	for i := range c.classes {
		out[i] = c.classes[i].Load()
	}
	return out
}

// batchSizeClass maps a batch record count to its power-of-two class:
// class i covers 64·2^i .. 64·2^(i+1)-1, the last class absorbs larger.
func batchSizeClass(n int) int {
	cls := 0
	for v := n / MinBatchSize; v > 1; v >>= 1 {
		cls++
	}
	return clampInt(cls, 0, obs.NumBatchClasses-1)
}

// BatchSizeClassLabel returns the human-readable record-count range of
// batch-size class i, e.g. "64-127" or "8192+".
func BatchSizeClassLabel(i int) string {
	if i < 0 || i >= obs.NumBatchClasses {
		return "unknown"
	}
	lo := MinBatchSize << i
	if i == obs.NumBatchClasses-1 {
		return fmt.Sprintf("%d+", lo)
	}
	return fmt.Sprintf("%d-%d", lo, lo*2-1)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
