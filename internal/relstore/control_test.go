package relstore

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBatchControllerDefaults(t *testing.T) {
	c := NewBatchController(0, 0)
	if got := c.BatchSize(); got != DefaultBatchSize {
		t.Errorf("adaptive controller starts at batch size %d, want %d", got, DefaultBatchSize)
	}
	if got := c.PrefetchDepth(); got != DefaultPrefetchDepth {
		t.Errorf("adaptive controller starts at depth %d, want %d", got, DefaultPrefetchDepth)
	}
}

func TestBatchControllerNilSafe(t *testing.T) {
	var c *BatchController
	if got := c.BatchSize(); got != DefaultBatchSize {
		t.Errorf("nil controller batch size = %d, want %d", got, DefaultBatchSize)
	}
	if got := c.PrefetchDepth(); got != DefaultPrefetchDepth {
		t.Errorf("nil controller depth = %d, want %d", got, DefaultPrefetchDepth)
	}
	c.ObserveBatch(100, time.Millisecond, 3)
	c.ObserveStall(time.Second)
	if got := c.SizeClasses(); got != ([obs.NumBatchClasses]uint64{}) {
		t.Errorf("nil controller SizeClasses = %v, want zeros", got)
	}
}

func TestBatchControllerPinnedClamped(t *testing.T) {
	c := NewBatchController(100000, 99)
	if got := c.BatchSize(); got != MaxBatchSize {
		t.Errorf("oversize pin clamps to %d, got %d", MaxBatchSize, got)
	}
	if got := c.PrefetchDepth(); got != maxPrefetchDepth {
		t.Errorf("oversize depth pin clamps to %d, got %d", maxPrefetchDepth, got)
	}
	c = NewBatchController(1, 0)
	if got := c.BatchSize(); got != MinBatchSize {
		t.Errorf("undersize pin clamps to %d, got %d", MinBatchSize, got)
	}
}

func TestBatchControllerPinnedNeverAdapts(t *testing.T) {
	c := NewBatchController(512, 3)
	for i := 0; i < 20; i++ {
		c.ObserveBatch(512, time.Millisecond, 10) // would grow if adaptive
	}
	if got := c.BatchSize(); got != 512 {
		t.Errorf("pinned batch size moved to %d", got)
	}
	for i := 0; i < 20; i++ {
		c.ObserveStall(time.Second) // would deepen if adaptive
	}
	if got := c.PrefetchDepth(); got != 3 {
		t.Errorf("pinned prefetch depth moved to %d", got)
	}
}

func TestBatchControllerGrowsOnFullMissyBatches(t *testing.T) {
	c := NewBatchController(0, 0)
	c.ObserveBatch(DefaultBatchSize, time.Millisecond, 5)
	if got := c.BatchSize(); got != DefaultBatchSize {
		t.Fatalf("grew after one batch (got %d); needs a streak of 2", got)
	}
	c.ObserveBatch(DefaultBatchSize, time.Millisecond, 5)
	if got := c.BatchSize(); got != DefaultBatchSize*2 {
		t.Fatalf("after 2 full miss-paying batches size = %d, want %d", got, DefaultBatchSize*2)
	}
	// Keep feeding full, missy batches: growth saturates at MaxBatchSize.
	for i := 0; i < 40; i++ {
		c.ObserveBatch(c.BatchSize(), time.Millisecond, 5)
	}
	if got := c.BatchSize(); got != MaxBatchSize {
		t.Errorf("sustained growth ends at %d, want %d", got, MaxBatchSize)
	}
}

func TestBatchControllerShrinksOnUnderfilledCleanBatches(t *testing.T) {
	c := NewBatchController(0, 0)
	for i := 0; i < 3; i++ {
		c.ObserveBatch(DefaultBatchSize/4, time.Millisecond, 0)
		if got := c.BatchSize(); got != DefaultBatchSize {
			t.Fatalf("shrank after %d batches (got %d); needs a streak of 4", i+1, got)
		}
	}
	c.ObserveBatch(DefaultBatchSize/4, time.Millisecond, 0)
	if got := c.BatchSize(); got != DefaultBatchSize/2 {
		t.Fatalf("after 4 clean underfilled batches size = %d, want %d", got, DefaultBatchSize/2)
	}
	for i := 0; i < 40; i++ {
		c.ObserveBatch(1, time.Millisecond, 0)
	}
	if got := c.BatchSize(); got != MinBatchSize {
		t.Errorf("sustained shrink ends at %d, want %d", got, MinBatchSize)
	}
}

func TestBatchControllerMixedSignalResetsStreaks(t *testing.T) {
	c := NewBatchController(0, 0)
	c.ObserveBatch(DefaultBatchSize, time.Millisecond, 5) // grow streak 1
	c.ObserveBatch(DefaultBatchSize, time.Millisecond, 0) // full but clean: reset
	c.ObserveBatch(DefaultBatchSize, time.Millisecond, 5) // grow streak 1 again
	if got := c.BatchSize(); got != DefaultBatchSize {
		t.Errorf("size moved to %d across interrupted streaks, want %d", got, DefaultBatchSize)
	}
}

func TestBatchControllerIgnoresEmptyBatches(t *testing.T) {
	c := NewBatchController(0, 0)
	for i := 0; i < 10; i++ {
		c.ObserveBatch(0, time.Millisecond, 5)
		c.ObserveBatch(-1, time.Millisecond, 5)
	}
	if got := c.BatchSize(); got != DefaultBatchSize {
		t.Errorf("empty batches moved the size to %d", got)
	}
	if got := c.SizeClasses(); got != ([obs.NumBatchClasses]uint64{}) {
		t.Errorf("empty batches were counted: %v", got)
	}
}

func TestBatchControllerDeepensOnStall(t *testing.T) {
	// No fill time observed yet: stalls alone must not deepen.
	c := NewBatchController(0, 0)
	c.ObserveStall(time.Second)
	if got := c.PrefetchDepth(); got != DefaultPrefetchDepth {
		t.Fatalf("depth deepened with no fill evidence (got %d)", got)
	}
	// Fresh controller with 100ms of fill; a 10ms stall is under a
	// quarter of it.
	c = NewBatchController(0, 0)
	c.ObserveBatch(DefaultBatchSize, 100*time.Millisecond, 0)
	c.ObserveStall(10 * time.Millisecond)
	if got := c.PrefetchDepth(); got != DefaultPrefetchDepth {
		t.Fatalf("depth deepened below the stall threshold (got %d)", got)
	}
	// Push cumulative stall past fill/4.
	c.ObserveStall(20 * time.Millisecond)
	if got := c.PrefetchDepth(); got != DefaultPrefetchDepth+1 {
		t.Fatalf("depth = %d after stall > fill/4, want %d", got, DefaultPrefetchDepth+1)
	}
	// Deepening resets the stall accounting: the same small stall no
	// longer crosses the threshold.
	c.ObserveStall(10 * time.Millisecond)
	if got := c.PrefetchDepth(); got != DefaultPrefetchDepth+1 {
		t.Fatalf("depth deepened again without fresh evidence (got %d)", got)
	}
	// Sustained stalling saturates at the depth ceiling.
	for i := 0; i < 100; i++ {
		c.ObserveStall(time.Second)
	}
	if got := c.PrefetchDepth(); got != maxPrefetchDepth {
		t.Errorf("sustained stalls end at depth %d, want %d", got, maxPrefetchDepth)
	}
}

func TestBatchControllerSizeClasses(t *testing.T) {
	c := NewBatchController(0, 0)
	c.ObserveBatch(64, time.Millisecond, 0)   // class 0
	c.ObserveBatch(127, time.Millisecond, 0)  // class 0
	c.ObserveBatch(128, time.Millisecond, 0)  // class 1
	c.ObserveBatch(4096, time.Millisecond, 0) // class 6
	c.ObserveBatch(1, time.Millisecond, 0)    // below MinBatchSize: class 0
	c.ObserveBatch(1<<20, time.Millisecond, 0)
	got := c.SizeClasses()
	var want [obs.NumBatchClasses]uint64
	want[0] = 3
	want[1] = 1
	want[6] = 1
	want[obs.NumBatchClasses-1] = 1
	if got != want {
		t.Errorf("SizeClasses = %v, want %v", got, want)
	}
}

func TestBatchSizeClassLabel(t *testing.T) {
	cases := map[int]string{
		0:                       "64-127",
		1:                       "128-255",
		obs.NumBatchClasses - 1: "8192+",
		-1:                      "unknown",
		obs.NumBatchClasses:     "unknown",
	}
	for i, want := range cases {
		if got := BatchSizeClassLabel(i); got != want {
			t.Errorf("BatchSizeClassLabel(%d) = %q, want %q", i, got, want)
		}
	}
}
