package relstore

import (
	"testing"

	"repro/internal/pager"
)

// TestEstimates cross-checks the planner probes against real scans on
// the makeRecords corpus (runs of 10 per plabel, tags 1..7, 13 data
// values): zero means provably empty, non-zero stays within the loose
// interpolation bound, and exact short runs come back exact.
func TestEstimates(t *testing.T) {
	const n = 5000
	sp := buildSP(t, makeRecords(n))

	ctx := NewExecContext()
	// Exact run length: plabel 3 is a run of 10, well inside one leaf.
	if got, err := sp.EstimatePLabelExact(ctx, u(3)); err != nil || got != 10 {
		t.Fatalf("EstimatePLabelExact(3) = %d, %v, want exact 10", got, err)
	}
	// Provably empty run: plabel past the data.
	if got, err := sp.EstimatePLabelExact(ctx, u(n)); err != nil || got != 0 {
		t.Fatalf("EstimatePLabelExact(%d) = %d, %v, want 0", n, got, err)
	}
	// Range probe vs. true count.
	trueCount := func(lo, hi uint64) int {
		recs, err := Collect(sp.ScanPLabelRange(nil, u(lo), u(hi)))
		if err != nil {
			t.Fatal(err)
		}
		return len(recs)
	}
	for _, r := range [][2]uint64{{0, 0}, {10, 20}, {0, n / 10}, {100, 400}} {
		want := trueCount(r[0], r[1])
		got, err := sp.EstimatePLabelRange(ctx, u(r[0]), u(r[1]))
		if err != nil {
			t.Fatal(err)
		}
		if (got == 0) != (want == 0) {
			t.Fatalf("range [%d,%d]: estimate %d, true %d — zero must be definitive", r[0], r[1], got, want)
		}
		if want > 0 && (got > uint64(want)*3+64 || uint64(want) > got*3+64) {
			t.Fatalf("range [%d,%d]: estimate %d too far from true %d", r[0], r[1], got, want)
		}
	}
	// Probes charge their page reads to the context.
	if ctx.PageReads() == 0 {
		t.Fatal("probe page reads were not accounted to the ExecContext")
	}

	// Data probe: "val-3" occurs every 13 records; "nope" never.
	f := pager.OpenMem(256)
	sd, err := Build(f, ClusterTag, makeRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sd.EstimateData(nil, "nope"); err != nil || got != 0 {
		t.Fatalf("EstimateData(nope) = %d, %v, want 0", got, err)
	}
	got, err := sd.EstimateData(nil, "val-3")
	if err != nil || got == 0 {
		t.Fatalf("EstimateData(val-3) = %d, %v, want > 0", got, err)
	}
	// Tag probe on the SD relation: each tag covers ~1/7 of the corpus.
	gotTag, err := sd.EstimateTag(nil, 1)
	if err != nil || gotTag == 0 {
		t.Fatalf("EstimateTag(1) = %d, %v, want > 0", gotTag, err)
	}
	if want := uint64(n / 7); gotTag > want*3 || want > gotTag*3 {
		t.Fatalf("EstimateTag(1) = %d, want near %d", gotTag, want)
	}
	if got, err := sd.EstimateTag(nil, 99); err != nil || got != 0 {
		t.Fatalf("EstimateTag(99) = %d, %v, want 0", got, err)
	}
}
