package relstore

import (
	"math/rand"
	"testing"

	"repro/internal/pager"
	"repro/internal/uint128"
)

// batchFixture builds an in-memory plabel-clustered relation with nlabels
// distinct plabels and per-label runs of varying length.
func batchFixture(t *testing.T, nlabels, perLabel int) (*Relation, []Record) {
	t.Helper()
	rnd := rand.New(rand.NewSource(42))
	var recs []Record
	start := uint32(1)
	for i := 0; i < nlabels*perLabel; i++ {
		label := uint128.From64(uint64(rnd.Intn(nlabels) + 1))
		data := ""
		if rnd.Intn(3) == 0 {
			data = "v"
		}
		recs = append(recs, Record{
			PLabel: label,
			TagID:  uint32(rnd.Intn(4) + 1),
			Start:  start,
			End:    start + 1,
			Level:  uint16(rnd.Intn(5) + 1),
			Data:   data,
		})
		start += 2
	}
	f := pager.OpenMemConfig(pager.Config{PoolPages: 16})
	rel, err := Build(f, ClusterPLabel, recs)
	if err != nil {
		t.Fatal(err)
	}
	return rel, recs
}

// TestBatchScanMatchesIter: every batched scan must produce exactly the
// records of its record-at-a-time counterpart, in the same order, at
// several batch sizes (including sizes smaller than a page run and
// larger than the result).
func TestBatchScanMatchesIter(t *testing.T) {
	rel, _ := batchFixture(t, 6, 40)
	for _, batchSize := range []int{1, 3, 64, 4096} {
		for label := uint64(1); label <= 6; label++ {
			p := uint128.From64(label)
			want, err := Collect(rel.ScanPLabelExact(nil, p))
			if err != nil {
				t.Fatal(err)
			}
			got, err := CollectBatches(rel.ScanPLabelExactBatch(nil, p, 0, 0), batchSize)
			if err != nil {
				t.Fatal(err)
			}
			if !recordsEqual(got, want) {
				t.Fatalf("label %d batchSize %d: %d records, want %d", label, batchSize, len(got), len(want))
			}
		}
	}
}

// TestBatchStartRestriction: a batched scan restricted to [lo, hi) must
// return exactly the full scan's records with start in that range, and a
// disjoint cover of restrictions must reproduce the full scan — with the
// visited-elements count identical to one full scan (no record is
// fetched twice, none skipped).
func TestBatchStartRestriction(t *testing.T) {
	rel, _ := batchFixture(t, 5, 60)
	p := uint128.From64(3)

	fullCtx := NewExecContext()
	full, err := CollectBatches(rel.ScanPLabelExactBatch(fullCtx, p, 0, 0), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("fixture produced no records for label 3")
	}

	mid := full[len(full)/2].Start
	quarter := full[len(full)/4].Start
	partCtx := NewExecContext()
	var stitched []Record
	for _, r := range [][2]uint32{{0, quarter}, {quarter, mid}, {mid, 0}} {
		part, err := CollectBatches(rel.ScanPLabelExactBatch(partCtx, p, r[0], r[1]), 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range part {
			if rec.Start < r[0] || (r[1] != 0 && rec.Start >= r[1]) {
				t.Fatalf("record start %d outside restriction [%d,%d)", rec.Start, r[0], r[1])
			}
		}
		stitched = append(stitched, part...)
	}
	if !recordsEqual(stitched, full) {
		t.Fatalf("stitched partitions: %d records, want %d", len(stitched), len(full))
	}
	if partCtx.Visited() != fullCtx.Visited() {
		t.Fatalf("partitioned scans visited %d records, full scan %d", partCtx.Visited(), fullCtx.Visited())
	}
}

// TestBatchMergeByStart: the batched k-way merge must equal the
// record-at-a-time merge over the same runs and stay start-ordered
// under restriction.
func TestBatchMergeByStart(t *testing.T) {
	rel, _ := batchFixture(t, 6, 50)
	labels := []uint64{1, 3, 5, 6}

	var iterRuns []Iter
	var batchRuns []BatchIter
	for _, l := range labels {
		iterRuns = append(iterRuns, rel.ScanPLabelExact(nil, uint128.From64(l)))
		batchRuns = append(batchRuns, rel.ScanPLabelExactBatch(nil, uint128.From64(l), 0, 0))
	}
	mIter, err := MergeByStart(iterRuns)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(mIter)
	if err != nil {
		t.Fatal(err)
	}
	mBatch, err := MergeBatchesByStart(batchRuns, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatches(mBatch, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, want) {
		t.Fatalf("batched merge: %d records, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Start >= got[i].Start {
			t.Fatalf("merge out of order at %d: %d >= %d", i, got[i-1].Start, got[i].Start)
		}
	}
}

// TestBatchPageReadAmortization pins the point of the batch layer: a
// batched scan of a multi-page run must issue fewer buffer-pool requests
// than the record-at-a-time scan, which pays one view per record.
func TestBatchPageReadAmortization(t *testing.T) {
	rel, _ := batchFixture(t, 2, 600) // hundreds of records per label => several heap pages
	p := uint128.From64(1)

	iterCtx := NewExecContext()
	recs, err := Collect(rel.ScanPLabelExact(iterCtx, p))
	if err != nil {
		t.Fatal(err)
	}
	batchCtx := NewExecContext()
	brecs, err := CollectBatches(rel.ScanPLabelExactBatch(batchCtx, p, 0, 0), DefaultBatchSize)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(brecs, recs) {
		t.Fatalf("batched scan diverged: %d records, want %d", len(brecs), len(recs))
	}
	if batchCtx.Visited() != iterCtx.Visited() {
		t.Fatalf("visited %d != %d", batchCtx.Visited(), iterCtx.Visited())
	}
	if batchCtx.PageReads() >= iterCtx.PageReads() {
		t.Fatalf("batched scan issued %d pool requests, record-at-a-time %d — batching should amortize",
			batchCtx.PageReads(), iterCtx.PageReads())
	}
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
