package relstore

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/keyenc"
	"repro/internal/obs"
	"repro/internal/uint128"
)

// DefaultBatchSize is the record-batch size the engines use when they
// have no reason to pick another one. It is large enough that a batch
// spans several heap pages on typical documents (so per-page work is
// amortized) and small enough that a handful of in-flight batches per
// stream stays cheap.
const DefaultBatchSize = 256

// BatchIter is the batched counterpart of Iter: NextBatch fills dst with
// up to len(dst) consecutive records of the stream and returns how many
// it produced. A return of (0, nil) means the stream is exhausted.
//
// Unlike Iter, a BatchIter backed by an index scan decodes all records
// that live on one heap page inside a single pager view, so a batch of
// records clustered on k pages costs k pool requests instead of one per
// record. Like Iter, a BatchIter is not safe for concurrent use itself,
// but any number of them may run concurrently over one Relation.
type BatchIter interface {
	NextBatch(dst []Record) (int, error)
}

// fetchBatch decodes the records addressed by locs into dst (len(dst)
// must equal len(locs)). Runs of consecutive locators on the same heap
// page are decoded under one pager view, which is what makes batched
// scans cheaper than record-at-a-time fetches: the pool is consulted
// once per page run, not once per record. Every decoded record is
// accounted to ctx.
//
//blas:hotpath
func (r *Relation) fetchBatch(ctx *ExecContext, locs []Locator, dst []Record) error {
	tr := ctx.Trace()
	columnar := r.meta.format == FormatColumnar
	for i := 0; i < len(locs); {
		j := i + 1
		for j < len(locs) && locs[j].Page == locs[i].Page {
			j++
		}
		lo, hi := i, j
		err := r.f.ViewCounted(locs[lo].Page, ctx.pageCounters(), func(p []byte) error {
			begin := tr.Begin()
			n := int(binary.LittleEndian.Uint16(p[0:2]))
			if columnar {
				// Decode maximal runs of consecutive slots with one
				// column-group pass each.
				for k := lo; k < hi; {
					m := k + 1
					for m < hi && locs[m].Slot == locs[m-1].Slot+1 {
						m++
					}
					s := int(locs[k].Slot)
					if err := decodeColSlots(p, r.meta.kind, s, s+(m-k), dst[k:m]); err != nil {
						return err
					}
					k = m
				}
				tr.End(obs.PhaseDecode, begin)
				return nil
			}
			for k := lo; k < hi; k++ {
				if int(locs[k].Slot) >= n {
					return fmt.Errorf("relstore: slot %d out of range on page %d (%d records)", locs[k].Slot, locs[k].Page, n)
				}
				off := int(binary.LittleEndian.Uint16(p[heapHeader+2*int(locs[k].Slot):]))
				dst[k] = decodeRecord(p[off:])
			}
			tr.End(obs.PhaseDecode, begin)
			return nil
		})
		if err != nil {
			return err
		}
		ctx.addVisitedN(uint64(hi - lo))
		tr.AddDecoded(hi - lo)
		i = j
	}
	return nil
}

// indexBatchIter drains an index iterator in locator batches and decodes
// them with fetchBatch.
type indexBatchIter struct {
	r    *Relation
	ctx  *ExecContext
	it   interface{ Next() bool }
	val  func() []byte
	ierr func() error

	locs []Locator
	done bool
}

func (b *indexBatchIter) NextBatch(dst []Record) (int, error) {
	if b.done || len(dst) == 0 {
		return 0, nil
	}
	locs := b.locs[:0]
	for len(locs) < len(dst) && b.it.Next() {
		locs = append(locs, decodeLocator(b.val()))
	}
	b.locs = locs
	if len(locs) < len(dst) {
		b.done = true
		if err := b.ierr(); err != nil {
			return 0, err
		}
	}
	if len(locs) == 0 {
		return 0, nil
	}
	if err := b.r.fetchBatch(b.ctx, locs, dst[:len(locs)]); err != nil {
		return 0, err
	}
	return len(locs), nil
}

// clusterStartKey builds a cluster-index bound for records of one
// cluster-key prefix (plabel or tag) at the given start position.
func clusterStartKey(prefix []byte, start uint32) []byte {
	return append(append(make([]byte, 0, len(prefix)+4), prefix...), keyenc.Uint32(start)...)
}

// clusterBatchRange returns the cluster-index [from, to) bounds for one
// prefix restricted to starts in [lo, hi) (hi == 0 means unbounded).
func clusterBatchRange(prefix []byte, lo, hi uint32) (from, to []byte) {
	from = prefix
	if lo != 0 {
		from = clusterStartKey(prefix, lo)
	}
	if hi != 0 {
		to = clusterStartKey(prefix, hi)
	} else {
		to = keyenc.PrefixSuccessor(prefix)
	}
	return from, to
}

func (r *Relation) scanClusterBatch(ctx *ExecContext, from, to []byte) BatchIter {
	it := r.cluster.ScanCounted(from, to, ctx.pageCounters())
	return &indexBatchIter{r: r, ctx: ctx, it: it, val: it.Value, ierr: it.Err}
}

// ScanAllBatch iterates every record, in cluster-key order, in batches.
// On a columnar relation the index is probed for exactly one position
// (the first entry); the scan then walks the heap pages directly.
func (r *Relation) ScanAllBatch(ctx *ExecContext) BatchIter {
	if r.meta.format == FormatColumnar {
		return r.seekHeapRun(ctx, nil, uint128.Uint128{}, 0, 0, true)
	}
	return r.scanClusterBatch(ctx, nil, nil)
}

// ScanPLabelExactBatch is the batched ScanPLabelExact, additionally
// restricted to records whose start lies in [lo, hi) (hi == 0 means
// unbounded). The restriction is pushed into the cluster-key range —
// records outside it are never fetched or counted — which is what lets a
// partitioned sweep split one stream across workers without reading any
// record twice. The relation must be plabel-clustered.
func (r *Relation) ScanPLabelExactBatch(ctx *ExecContext, p uint128.Uint128, lo, hi uint32) BatchIter {
	from, to := clusterBatchRange(keyenc.Uint128(p), lo, hi)
	if r.meta.format == FormatColumnar {
		// Columnar heaps are cluster-ordered and contiguous: seek once via
		// the index, then walk the heap pages directly, cutting on the
		// packed starts — no index leaves past the seek.
		return r.seekHeapRun(ctx, from, p, 0, hi, false)
	}
	return r.scanClusterBatch(ctx, from, to)
}

// ScanTagBatch is the batched ScanTag with the same [lo, hi) start
// restriction as ScanPLabelExactBatch. The relation must be
// tag-clustered.
func (r *Relation) ScanTagBatch(ctx *ExecContext, tagID uint32, lo, hi uint32) BatchIter {
	from, to := clusterBatchRange(keyenc.Uint32(tagID), lo, hi)
	if r.meta.format == FormatColumnar {
		return r.seekHeapRun(ctx, from, uint128.Uint128{}, tagID, hi, false)
	}
	return r.scanClusterBatch(ctx, from, to)
}

// ScanStartRangeBatch is the batched ScanStartRange: document order via
// the start index, restricted to starts in [lo, hi) (hi == 0 means
// unbounded).
func (r *Relation) ScanStartRangeBatch(ctx *ExecContext, lo, hi uint32) BatchIter {
	from := keyenc.Uint32(lo)
	var to []byte
	if hi != 0 {
		to = keyenc.Uint32(hi)
	}
	it := r.startIdx.ScanCounted(from, to, ctx.pageCounters())
	return &indexBatchIter{r: r, ctx: ctx, it: it, val: it.Value, ierr: it.Err}
}

// --- k-way batch merge ---

// mergeBatchRun is one input of a batch merge: a batched source plus the
// buffered window it has been read into.
type mergeBatchRun struct {
	src BatchIter
	buf []Record
	n   int // valid records in buf
	i   int // next record
}

// refill loads the next batch; reports whether records are available.
func (r *mergeBatchRun) refill() (bool, error) {
	n, err := r.src.NextBatch(r.buf)
	if err != nil {
		return false, err
	}
	if n == 0 {
		return false, nil
	}
	r.n, r.i = n, 0
	return true, nil
}

// MergeBatchesByStart combines start-ordered batched streams into one
// start-ordered batched stream (k-way heap merge). Start positions are
// unique document positions, so the merge order is total. It is the
// batched counterpart of MergeByStart, used for P-label set and range
// fragments whose selections span several cluster runs.
func MergeBatchesByStart(runs []BatchIter, batchSize int) (BatchIter, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	if len(runs) == 1 {
		return runs[0], nil
	}
	m := &batchMergeIter{}
	for _, src := range runs {
		run := &mergeBatchRun{src: src, buf: make([]Record, batchSize)}
		ok, err := run.refill()
		if err != nil {
			return nil, err
		}
		if ok {
			m.runs = append(m.runs, run)
		}
	}
	heap.Init(m)
	return m, nil
}

// batchMergeIter is a heap of positioned runs; NextBatch pops the global
// minimum repeatedly.
type batchMergeIter struct {
	runs []*mergeBatchRun
	err  error
}

func (m *batchMergeIter) Len() int { return len(m.runs) }
func (m *batchMergeIter) Less(i, j int) bool {
	return m.runs[i].buf[m.runs[i].i].Start < m.runs[j].buf[m.runs[j].i].Start
}
func (m *batchMergeIter) Swap(i, j int) { m.runs[i], m.runs[j] = m.runs[j], m.runs[i] }
func (m *batchMergeIter) Push(x any)    { m.runs = append(m.runs, x.(*mergeBatchRun)) }
func (m *batchMergeIter) Pop() any {
	x := m.runs[len(m.runs)-1]
	m.runs = m.runs[:len(m.runs)-1]
	return x
}

func (m *batchMergeIter) NextBatch(dst []Record) (int, error) {
	if m.err != nil {
		return 0, m.err
	}
	n := 0
	for n < len(dst) && len(m.runs) > 0 {
		top := m.runs[0]
		dst[n] = top.buf[top.i]
		n++
		top.i++
		if top.i >= top.n {
			ok, err := top.refill()
			if err != nil {
				m.err = err
				return 0, err
			}
			if !ok {
				heap.Pop(m)
				continue
			}
		}
		heap.Fix(m, 0)
	}
	return n, nil
}

// CollectBatches drains a batched stream into a slice.
func CollectBatches(bi BatchIter, batchSize int) ([]Record, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	var out []Record
	buf := make([]Record, batchSize)
	for {
		n, err := bi.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// CollectAdaptive drains a batched stream into a slice, sizing every
// batch from the context's batch controller and reporting each one back
// to it (fill latency, pager-miss delta). With no controller attached it
// degrades to CollectBatches at DefaultBatchSize.
func CollectAdaptive(ctx *ExecContext, bi BatchIter) ([]Record, error) {
	ctl := ctx.BatchControl()
	var out []Record
	var buf []Record
	for {
		if want := ctl.BatchSize(); want > cap(buf) {
			buf = make([]Record, want)
		} else {
			buf = buf[:want]
		}
		missBefore := ctx.PageMisses()
		begin := time.Now()
		n, err := bi.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		ctl.ObserveBatch(n, time.Since(begin), ctx.PageMisses()-missBefore)
		out = append(out, buf[:n]...)
	}
}
