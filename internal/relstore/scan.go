package relstore

import (
	"container/heap"

	"repro/internal/keyenc"
	"repro/internal/uint128"
)

// Iter is a record iterator. All scan methods return one.
//
// Every scan takes the query's *ExecContext as its first argument; the
// records it decodes and the pages it touches are accounted there. A nil
// context is valid and discards the counts. Iterators are not safe for
// concurrent use themselves, but any number of iterators — sharing a
// context or not — may run concurrently over one Relation.
type Iter interface {
	// Next advances to the next record, returning false at the end or on
	// error (check Err).
	Next() bool
	// Record returns the current record.
	Record() Record
	// Err returns the first error encountered.
	Err() error
}

// indexIter fetches records addressed by an index iterator.
type indexIter struct {
	r    *Relation
	ctx  *ExecContext
	it   interface{ Next() bool }
	val  func() []byte
	ierr func() error

	rec Record
	err error
}

func (s *indexIter) Next() bool {
	if s.err != nil {
		return false
	}
	if !s.it.Next() {
		s.err = s.ierr()
		return false
	}
	loc := decodeLocator(s.val())
	s.rec, s.err = s.r.fetch(s.ctx, loc)
	return s.err == nil
}

func (s *indexIter) Record() Record { return s.rec }
func (s *indexIter) Err() error     { return s.err }

// scanClusterRange returns records whose cluster key lies in [from, to).
func (r *Relation) scanClusterRange(ctx *ExecContext, from, to []byte) Iter {
	it := r.cluster.ScanCounted(from, to, ctx.pageCounters())
	return &indexIter{r: r, ctx: ctx, it: it, val: it.Value, ierr: it.Err}
}

// batchRecordIter adapts a BatchIter to the record-at-a-time Iter
// interface. The columnar cluster scans decode whole runs; going
// through a batch keeps that shape for the convenience iterators
// instead of paying a per-record run-prefix decode via fetch. The
// batch may decode a few records past where the caller stops.
type batchRecordIter struct {
	bi   BatchIter
	buf  []Record
	n, i int
	err  error
}

// batchRecordBuf is the adapter's decode granularity — deliberately
// smaller than DefaultBatchSize, since record-at-a-time consumers are
// tests, tools and merges that may hold many iterators at once.
const batchRecordBuf = 64

func (s *batchRecordIter) Next() bool {
	if s.err != nil {
		return false
	}
	if s.i+1 < s.n {
		s.i++
		return true
	}
	if s.buf == nil {
		s.buf = make([]Record, batchRecordBuf)
	}
	n, err := s.bi.NextBatch(s.buf)
	if err != nil {
		s.err = err
		return false
	}
	s.n, s.i = n, 0
	return n > 0
}

func (s *batchRecordIter) Record() Record { return s.buf[s.i] }
func (s *batchRecordIter) Err() error     { return s.err }

// ScanAll iterates every record in cluster-key order.
func (r *Relation) ScanAll(ctx *ExecContext) Iter {
	if r.meta.format == FormatColumnar {
		return &batchRecordIter{bi: r.ScanAllBatch(ctx)}
	}
	return r.scanClusterRange(ctx, nil, nil)
}

// ScanPLabelRange iterates records with lo <= plabel <= hi, in
// (plabel, start) order. The relation must be plabel-clustered.
func (r *Relation) ScanPLabelRange(ctx *ExecContext, lo, hi uint128.Uint128) Iter {
	from := keyenc.Uint128(lo)
	to := keyenc.PrefixSuccessor(keyenc.Uint128(hi))
	return r.scanClusterRange(ctx, from, to)
}

// ScanPLabelExact iterates records with plabel == p, in start order.
func (r *Relation) ScanPLabelExact(ctx *ExecContext, p uint128.Uint128) Iter {
	if r.meta.format == FormatColumnar {
		return &batchRecordIter{bi: r.ScanPLabelExactBatch(ctx, p, 0, 0)}
	}
	prefix := keyenc.Uint128(p)
	return r.scanClusterRange(ctx, prefix, keyenc.PrefixSuccessor(prefix))
}

// ScanTag iterates records with the given tag id, in start order. The
// relation must be tag-clustered.
func (r *Relation) ScanTag(ctx *ExecContext, tagID uint32) Iter {
	if r.meta.format == FormatColumnar {
		return &batchRecordIter{bi: r.ScanTagBatch(ctx, tagID, 0, 0)}
	}
	prefix := keyenc.Uint32(tagID)
	return r.scanClusterRange(ctx, prefix, keyenc.PrefixSuccessor(prefix))
}

// ScanData iterates records whose data equals value, in start order,
// using the data index.
func (r *Relation) ScanData(ctx *ExecContext, value string) Iter {
	prefix := keyenc.String(value)
	it := r.dataIdx.ScanCounted(prefix, keyenc.PrefixSuccessor(prefix), ctx.pageCounters())
	return &indexIter{r: r, ctx: ctx, it: it, val: it.Value, ierr: it.Err}
}

// ScanStartRange iterates records with lo <= start < hi via the start
// index (hi == 0 means unbounded).
func (r *Relation) ScanStartRange(ctx *ExecContext, lo, hi uint32) Iter {
	from := keyenc.Uint32(lo)
	var to []byte
	if hi != 0 {
		to = keyenc.Uint32(hi)
	}
	it := r.startIdx.ScanCounted(from, to, ctx.pageCounters())
	return &indexIter{r: r, ctx: ctx, it: it, val: it.Value, ierr: it.Err}
}

// --- start-ordered merge over a plabel range ---

// DistinctPLabels enumerates the distinct plabel values present in
// [lo, hi] using a skip scan over the clustered index: only the first
// entry of each run is touched.
func (r *Relation) DistinctPLabels(ctx *ExecContext, lo, hi uint128.Uint128) ([]uint128.Uint128, error) {
	var out []uint128.Uint128
	cur := keyenc.Uint128(lo)
	end := keyenc.PrefixSuccessor(keyenc.Uint128(hi))
	for {
		it := r.cluster.ScanCounted(cur, end, ctx.pageCounters())
		if !it.Next() {
			if err := it.Err(); err != nil {
				return nil, err
			}
			return out, nil
		}
		p := uint128.FromBytes(it.Key())
		out = append(out, p)
		next := keyenc.PrefixSuccessor(keyenc.Uint128(p))
		if next == nil {
			return out, nil
		}
		cur = next
	}
}

// ScanPLabelRangeByStart iterates records with lo <= plabel <= hi in
// document (start) order. Records within one plabel run are already
// start-ordered (the cluster key is {plabel, start}); runs are combined
// with a k-way merge, so the stream is produced without materializing it.
//
// The holistic twig join engine consumes these streams: TwigStack needs
// each query node's input sorted by start position.
func (r *Relation) ScanPLabelRangeByStart(ctx *ExecContext, lo, hi uint128.Uint128) (Iter, error) {
	plabels, err := r.DistinctPLabels(ctx, lo, hi)
	if err != nil {
		return nil, err
	}
	if len(plabels) == 1 {
		return r.ScanPLabelExact(ctx, plabels[0]), nil
	}
	runs := make([]Iter, 0, len(plabels))
	for _, p := range plabels {
		runs = append(runs, r.ScanPLabelExact(ctx, p))
	}
	return MergeByStart(runs)
}

// MergeByStart combines start-ordered iterators into one start-ordered
// stream (k-way heap merge). It is used to build document-order streams
// over P-label sets for the twig join engine.
func MergeByStart(runs []Iter) (Iter, error) {
	if len(runs) == 1 {
		return runs[0], nil
	}
	m := &mergeIter{}
	for _, run := range runs {
		if run.Next() {
			m.runs = append(m.runs, run)
		} else if err := run.Err(); err != nil {
			return nil, err
		}
	}
	heap.Init(m)
	return m, nil
}

// mergeIter merges start-ordered runs. Each run in runs is positioned at
// its current record.
type mergeIter struct {
	runs []Iter
	cur  Record
	err  error
	init bool
}

func (m *mergeIter) Len() int { return len(m.runs) }
func (m *mergeIter) Less(i, j int) bool {
	return m.runs[i].Record().Start < m.runs[j].Record().Start
}
func (m *mergeIter) Swap(i, j int) { m.runs[i], m.runs[j] = m.runs[j], m.runs[i] }
func (m *mergeIter) Push(x any)    { m.runs = append(m.runs, x.(Iter)) }
func (m *mergeIter) Pop() any {
	x := m.runs[len(m.runs)-1]
	m.runs = m.runs[:len(m.runs)-1]
	return x
}

func (m *mergeIter) Next() bool {
	if m.err != nil {
		return false
	}
	if m.init {
		// Advance the run we last emitted from.
		top := m.runs[0]
		if top.Next() {
			heap.Fix(m, 0)
		} else {
			if err := top.Err(); err != nil {
				m.err = err
				return false
			}
			heap.Pop(m)
		}
	}
	m.init = true
	if len(m.runs) == 0 {
		return false
	}
	m.cur = m.runs[0].Record()
	return true
}

func (m *mergeIter) Record() Record { return m.cur }
func (m *mergeIter) Err() error     { return m.err }

// Collect drains an iterator into a slice (testing and small-result use).
func Collect(it Iter) ([]Record, error) {
	var out []Record
	for it.Next() {
		out = append(out, it.Record())
	}
	return out, it.Err()
}
