package schema

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestBasicGraph(t *testing.T) {
	g := New()
	g.AddRoot("db")
	g.AddEdge("db", "entry")
	g.AddEdge("entry", "name")
	g.AddEdge("entry", "ref")
	g.ObserveDepth(3)

	if got := g.Roots(); !reflect.DeepEqual(got, []string{"db"}) {
		t.Fatalf("roots = %v", got)
	}
	if got := g.Children("entry"); !reflect.DeepEqual(got, []string{"name", "ref"}) {
		t.Fatalf("children = %v", got)
	}
	if !g.HasEdge("db", "entry") || g.HasEdge("entry", "db") {
		t.Fatal("HasEdge wrong")
	}
	if g.MaxDepth() != 3 {
		t.Fatalf("depth = %d", g.MaxDepth())
	}
	want := []string{"db", "entry", "name", "ref"}
	if got := g.Tags(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tags = %v", got)
	}
}

func TestRecursive(t *testing.T) {
	g := New()
	g.AddRoot("a")
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	if g.IsRecursive() {
		t.Fatal("acyclic graph reported recursive")
	}
	g.AddEdge("c", "b") // cycle b -> c -> b
	if !g.IsRecursive() {
		t.Fatal("cycle not detected")
	}
	// Self-loop.
	g2 := New()
	g2.AddEdge("x", "x")
	if !g2.IsRecursive() {
		t.Fatal("self-loop not detected")
	}
}

func TestCanReach(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "b") // cycle must not loop forever
	if !g.CanReach("a", "c") {
		t.Fatal("a should reach c")
	}
	if g.CanReach("c", "a") {
		t.Fatal("c should not reach a")
	}
	if g.CanReach("a", "a") {
		t.Fatal("a has no cycle to itself")
	}
	if !g.CanReach("b", "b") {
		t.Fatal("b is on a cycle; b//b is reachable")
	}
}

func TestChainsBetween(t *testing.T) {
	// db -> entry -> {name, ref}; ref -> name
	g := New()
	g.AddRoot("db")
	g.AddEdge("db", "entry")
	g.AddEdge("entry", "name")
	g.AddEdge("entry", "ref")
	g.AddEdge("ref", "name")

	chains, err := g.ChainsBetween("db", "name", 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"entry", "name"},
		{"entry", "ref", "name"},
	}
	if !reflect.DeepEqual(chains, want) {
		t.Fatalf("chains = %v", chains)
	}

	// Direct child chain has length 1.
	chains, _ = g.ChainsBetween("entry", "name", 10, 100)
	if len(chains) != 2 || len(chains[0]) != 1 {
		t.Fatalf("chains = %v", chains)
	}

	// Length bound.
	chains, _ = g.ChainsBetween("db", "name", 2, 100)
	if len(chains) != 1 {
		t.Fatalf("bounded chains = %v", chains)
	}

	// No path.
	chains, _ = g.ChainsBetween("name", "db", 10, 100)
	if len(chains) != 0 {
		t.Fatalf("impossible chains = %v", chains)
	}
}

func TestChainsBetweenRecursiveBounded(t *testing.T) {
	// parlist -> listitem -> parlist (XMark-style recursion).
	g := New()
	g.AddEdge("desc", "parlist")
	g.AddEdge("parlist", "listitem")
	g.AddEdge("listitem", "parlist")
	g.AddEdge("listitem", "text")

	chains, err := g.ChainsBetween("desc", "text", 6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// parlist/listitem/text (3), parlist/listitem/parlist/listitem/text (5)
	if len(chains) != 2 {
		t.Fatalf("chains = %v", chains)
	}
	for _, c := range chains {
		if len(c) > 6 {
			t.Fatalf("chain too long: %v", c)
		}
	}
}

func TestChainsCapExceeded(t *testing.T) {
	g := New()
	g.AddEdge("a", "a") // infinite chains a, aa, aaa...
	if _, err := g.ChainsBetween("a", "a", 50, 10); err == nil {
		t.Fatal("expected cap error")
	}
}

func TestPathsFromRoot(t *testing.T) {
	g := New()
	g.AddRoot("db")
	g.AddEdge("db", "entry")
	g.AddEdge("entry", "name")
	paths, err := g.PathsFromRoot("name", 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || strings.Join(paths[0], "/") != "db/entry/name" {
		t.Fatalf("paths = %v", paths)
	}
	// Root itself.
	paths, _ = g.PathsFromRoot("db", 5, 100)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("root path = %v", paths)
	}
}

func TestFromTree(t *testing.T) {
	doc, err := xmltree.ParseString(`<db><entry id="1"><name>x</name></entry><entry><ref><name/></ref></entry></db>`)
	if err != nil {
		t.Fatal(err)
	}
	g := FromTree(doc)
	if !reflect.DeepEqual(g.Roots(), []string{"db"}) {
		t.Fatalf("roots = %v", g.Roots())
	}
	if !g.HasEdge("entry", "@id") {
		t.Fatal("attribute edge missing")
	}
	if !g.HasEdge("ref", "name") || !g.HasEdge("entry", "name") {
		t.Fatal("edges missing")
	}
	if g.MaxDepth() != 4 { // db/entry/ref/name
		t.Fatalf("depth = %d", g.MaxDepth())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := New()
	g.AddRoot("db")
	g.AddEdge("db", "entry")
	g.AddEdge("entry", "name")
	g.ObserveDepth(7)

	var buf bytes.Buffer
	if err := g.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.Roots(), g.Roots()) ||
		!reflect.DeepEqual(g2.Tags(), g.Tags()) ||
		g2.MaxDepth() != g.MaxDepth() ||
		!g2.HasEdge("entry", "name") {
		t.Fatal("round trip lost data")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"bogus line here",
		"depth notanumber",
		"root",
		"edge onlyone",
	}
	for _, s := range bad {
		if _, err := Unmarshal(strings.NewReader(s)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", s)
		}
	}
}
