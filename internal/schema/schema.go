// Package schema provides the DTD-like schema graph used by the Unfold
// translator (paper §4.1.3).
//
// The graph records which tags may appear as children of which, the root
// tags, and the maximum observed document depth. Unfold rewrites p//q
// into the union of p/r1/…/rk/q over all chains the schema admits
// (bounded by the document depth for recursive schemas), and substitutes
// wildcards with the actual child tags.
//
// Graphs can be declared programmatically, extracted from a document
// tree, or accumulated during a streaming shred, and serialize to a
// compact text form for storage in the BLAS metadata file.
package schema

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// Graph is a schema graph.
type Graph struct {
	children map[string]map[string]bool
	roots    map[string]bool
	maxDepth int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		children: map[string]map[string]bool{},
		roots:    map[string]bool{},
	}
}

// AddRoot marks tag as a document root tag.
func (g *Graph) AddRoot(tag string) {
	g.roots[tag] = true
	if g.maxDepth < 1 {
		g.maxDepth = 1
	}
}

// AddEdge records that child may appear under parent.
func (g *Graph) AddEdge(parent, child string) {
	m, ok := g.children[parent]
	if !ok {
		m = map[string]bool{}
		g.children[parent] = m
	}
	m[child] = true
}

// ObserveDepth raises the recorded maximum depth to d if larger.
func (g *Graph) ObserveDepth(d int) {
	if d > g.maxDepth {
		g.maxDepth = d
	}
}

// MaxDepth returns the maximum observed document depth (in nodes).
func (g *Graph) MaxDepth() int { return g.maxDepth }

// Roots returns the root tags, sorted.
func (g *Graph) Roots() []string { return sortedKeys(g.roots) }

// Children returns the possible child tags of parent, sorted.
func (g *Graph) Children(parent string) []string { return sortedKeys(g.children[parent]) }

// HasEdge reports whether child may appear directly under parent.
func (g *Graph) HasEdge(parent, child string) bool { return g.children[parent][child] }

// Tags returns every tag mentioned in the graph, sorted.
func (g *Graph) Tags() []string {
	set := map[string]bool{}
	for t := range g.roots {
		set[t] = true
	}
	for p, cs := range g.children {
		set[p] = true
		for c := range cs {
			set[c] = true
		}
	}
	return sortedKeys(set)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsRecursive reports whether the graph contains a cycle (a recursive
// DTD, like XMark's parlist/listitem).
func (g *Graph) IsRecursive() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(t string) bool
	visit = func(t string) bool {
		color[t] = gray
		for c := range g.children[t] {
			switch color[c] {
			case gray:
				return true
			case white:
				if visit(c) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for _, t := range g.Tags() {
		if color[t] == white && visit(t) {
			return true
		}
	}
	return false
}

// CanReach reports whether desc is reachable from anc by one or more
// edges.
func (g *Graph) CanReach(anc, desc string) bool {
	seen := map[string]bool{}
	var stack []string
	for c := range g.children[anc] {
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[t] {
			continue
		}
		seen[t] = true
		if t == desc {
			return true
		}
		for c := range g.children[t] {
			if !seen[c] {
				stack = append(stack, c)
			}
		}
	}
	return false
}

// ChainsBetween enumerates every tag chain c1/…/ck with c1 a child of
// anc, each c(i+1) a child of c(i), ck == desc, and k <= maxLen. This is
// the unfolding of anc//desc: each chain, appended to the path ending at
// anc, is one simple-path alternative. Chains are returned in
// lexicographic order. maxChains caps the enumeration; exceeding it is an
// error (the caller should fall back to a D-join).
func (g *Graph) ChainsBetween(anc, desc string, maxLen, maxChains int) ([][]string, error) {
	if maxLen <= 0 {
		return nil, nil
	}
	var out [][]string
	chain := make([]string, 0, maxLen)
	var dfs func(cur string) error
	dfs = func(cur string) error {
		for _, c := range g.Children(cur) {
			chain = append(chain, c)
			if c == desc {
				if len(out) >= maxChains {
					chain = chain[:len(chain)-1]
					return fmt.Errorf("schema: unfolding %s//%s exceeds %d chains", anc, desc, maxChains)
				}
				out = append(out, append([]string(nil), chain...))
			}
			if len(chain) < maxLen {
				if err := dfs(c); err != nil {
					chain = chain[:len(chain)-1]
					return err
				}
			}
			chain = chain[:len(chain)-1]
		}
		return nil
	}
	if err := dfs(anc); err != nil {
		return nil, err
	}
	return out, nil
}

// AllChains enumerates every non-empty tag chain of length at most maxLen
// starting below anc (the unfolding of anc//* or anc/*). Chains are
// returned in depth-first lexicographic order; exceeding maxChains is an
// error.
func (g *Graph) AllChains(anc string, maxLen, maxChains int) ([][]string, error) {
	if maxLen <= 0 {
		return nil, nil
	}
	var out [][]string
	chain := make([]string, 0, maxLen)
	var dfs func(cur string) error
	dfs = func(cur string) error {
		for _, c := range g.Children(cur) {
			chain = append(chain, c)
			if len(out) >= maxChains {
				chain = chain[:len(chain)-1]
				return fmt.Errorf("schema: enumerating chains below %s exceeds %d", anc, maxChains)
			}
			out = append(out, append([]string(nil), chain...))
			if len(chain) < maxLen {
				if err := dfs(c); err != nil {
					chain = chain[:len(chain)-1]
					return err
				}
			}
			chain = chain[:len(chain)-1]
		}
		return nil
	}
	if err := dfs(anc); err != nil {
		return nil, err
	}
	return out, nil
}

// PathsFromRoot enumerates every root-to-desc tag path of length at most
// maxLen. It is the unfolding of a leading //desc step.
func (g *Graph) PathsFromRoot(desc string, maxLen, maxChains int) ([][]string, error) {
	var out [][]string
	for _, r := range g.Roots() {
		if r == desc {
			out = append(out, []string{r})
		}
		chains, err := g.ChainsBetween(r, desc, maxLen-1, maxChains-len(out))
		if err != nil {
			return nil, err
		}
		for _, c := range chains {
			out = append(out, append([]string{r}, c...))
		}
	}
	return out, nil
}

// FromTree extracts the schema graph of a document tree.
func FromTree(root *xmltree.Node) *Graph {
	g := New()
	g.AddRoot(root.Tag)
	var walk func(n *xmltree.Node, depth int)
	walk = func(n *xmltree.Node, depth int) {
		g.ObserveDepth(depth)
		for _, c := range n.Children {
			g.AddEdge(n.Tag, c.Tag)
			walk(c, depth+1)
		}
	}
	walk(root, 1)
	return g
}

// Marshal writes the graph in its text form:
//
//	depth <n>
//	root <tag>
//	edge <parent> <child>
func (g *Graph) Marshal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "depth %d\n", g.maxDepth)
	for _, r := range g.Roots() {
		fmt.Fprintf(bw, "root %s\n", r)
	}
	for _, p := range sortedKeys(mapKeysToBool(g.children)) {
		for _, c := range g.Children(p) {
			fmt.Fprintf(bw, "edge %s %s\n", p, c)
		}
	}
	return bw.Flush()
}

func mapKeysToBool(m map[string]map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// Unmarshal reads the text form produced by Marshal.
func Unmarshal(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "depth":
			if len(fields) != 2 {
				return nil, fmt.Errorf("schema: bad depth line %q", line)
			}
			var d int
			if _, err := fmt.Sscanf(fields[1], "%d", &d); err != nil {
				return nil, fmt.Errorf("schema: bad depth %q", fields[1])
			}
			g.ObserveDepth(d)
		case "root":
			if len(fields) != 2 {
				return nil, fmt.Errorf("schema: bad root line %q", line)
			}
			g.AddRoot(fields[1])
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("schema: bad edge line %q", line)
			}
			g.AddEdge(fields[1], fields[2])
		default:
			return nil, fmt.Errorf("schema: unknown directive %q", fields[0])
		}
	}
	return g, sc.Err()
}
