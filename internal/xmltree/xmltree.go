// Package xmltree provides an in-memory XML document tree.
//
// The tree is BLAS's reference data model: the synthetic data generators
// build trees, the naive XPath evaluator (ground truth for every engine
// test) walks them, and the serializer turns them back into documents for
// the streaming shredder.
//
// Attributes are modeled as child nodes whose tag begins with "@", so that
// element and attribute nodes share one node universe — this matches the
// paper's node accounting (Fig. 12 counts "element and attribute nodes").
package xmltree

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sax"
)

// Node is an element or attribute node.
type Node struct {
	Tag      string // element tag, or "@name" for an attribute
	Text     string // concatenated trimmed character data (or attribute value)
	Parent   *Node
	Children []*Node // element and attribute children, in document order
}

// IsAttr reports whether n is an attribute node.
func (n *Node) IsAttr() bool { return strings.HasPrefix(n.Tag, "@") }

// New returns an element node with the given tag.
func New(tag string) *Node { return &Node{Tag: tag} }

// Append adds child to n and returns child.
func (n *Node) Append(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// AppendNew creates a tagged child, appends and returns it.
func (n *Node) AppendNew(tag string) *Node { return n.Append(New(tag)) }

// AppendText creates a tagged child holding text, appends it, and returns n
// (for chaining sibling fields).
func (n *Node) AppendText(tag, text string) *Node {
	c := n.AppendNew(tag)
	c.Text = text
	return n
}

// SetAttr adds an attribute node. Attribute nodes precede element children
// in document order; SetAttr keeps that invariant.
func (n *Node) SetAttr(name, value string) *Node {
	a := &Node{Tag: "@" + name, Text: value, Parent: n}
	// Insert after the last existing attribute.
	i := 0
	for i < len(n.Children) && n.Children[i].IsAttr() {
		i++
	}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = a
	return n
}

// Level returns the node's level: the root has level 1 (the paper defines
// level as the length of the path from the root).
func (n *Node) Level() int {
	l := 0
	for c := n; c != nil; c = c.Parent {
		l++
	}
	return l
}

// SourcePath returns the tags on the path from the root down to n,
// beginning with the root tag (the paper's SP(n)).
func (n *Node) SourcePath() []string {
	var rev []string
	for c := n; c != nil; c = c.Parent {
		rev = append(rev, c.Tag)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Walk visits n and all its descendants in document order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Stats describes a document's shape, mirroring the paper's Fig. 12.
type Stats struct {
	Nodes int // element + attribute nodes
	Tags  int // distinct tags
	Depth int // longest root-to-leaf path, in nodes
}

// ComputeStats walks the tree rooted at n.
func ComputeStats(n *Node) Stats {
	tags := map[string]bool{}
	var st Stats
	var walk func(m *Node, depth int)
	walk = func(m *Node, depth int) {
		st.Nodes++
		tags[m.Tag] = true
		if depth > st.Depth {
			st.Depth = depth
		}
		for _, c := range m.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 1)
	st.Tags = len(tags)
	return st
}

// DistinctTags returns the sorted set of tags in the tree rooted at n.
func DistinctTags(n *Node) []string {
	set := map[string]bool{}
	n.Walk(func(m *Node) { set[m.Tag] = true })
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// Parse builds a tree from an XML document.
func Parse(r io.Reader) (*Node, error) {
	var root *Node
	cur := (*Node)(nil)
	h := sax.FuncHandler{
		Start: func(name string, attrs []sax.Attr) error {
			n := New(name)
			for _, a := range attrs {
				n.SetAttr(a.Name, a.Value)
			}
			if cur == nil {
				root = n
			} else {
				cur.Append(n)
			}
			cur = n
			return nil
		},
		Chars: func(text string) error {
			if cur.Text == "" {
				cur.Text = text
			} else {
				cur.Text += " " + text
			}
			return nil
		},
		End: func(name string) error {
			if cur == nil {
				return fmt.Errorf("xmltree: unbalanced end tag </%s>", name)
			}
			cur = cur.Parent
			return nil
		},
	}
	if err := sax.Parse(r, h); err != nil {
		return nil, err
	}
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// WriteXML serializes the tree rooted at n as an XML document.
func WriteXML(w io.Writer, n *Node) error {
	bw := &errWriter{w: w}
	writeNode(bw, n)
	return bw.err
}

// String returns the XML serialization of the tree rooted at n.
func (n *Node) String() string {
	var b strings.Builder
	_ = WriteXML(&b, n)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func writeNode(w *errWriter, n *Node) {
	w.WriteString("<")
	w.WriteString(n.Tag)
	i := 0
	for ; i < len(n.Children) && n.Children[i].IsAttr(); i++ {
		a := n.Children[i]
		w.WriteString(" ")
		w.WriteString(a.Tag[1:])
		w.WriteString(`="`)
		w.WriteString(escape(a.Text))
		w.WriteString(`"`)
	}
	rest := n.Children[i:]
	if len(rest) == 0 && n.Text == "" {
		w.WriteString("/>")
		return
	}
	w.WriteString(">")
	if n.Text != "" {
		w.WriteString(escape(n.Text))
	}
	for _, c := range rest {
		writeNode(w, c)
	}
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">")
}

var escaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

func escape(s string) string { return escaper.Replace(s) }
