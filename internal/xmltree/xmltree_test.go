package xmltree

import (
	"strings"
	"testing"
)

func TestBuildAndNavigate(t *testing.T) {
	root := New("db")
	entry := root.AppendNew("entry")
	entry.AppendText("name", "alpha")
	entry.SetAttr("id", "e1")

	if entry.Parent != root {
		t.Fatal("parent link broken")
	}
	if root.Level() != 1 || entry.Level() != 2 {
		t.Fatalf("levels = %d, %d", root.Level(), entry.Level())
	}
	// SetAttr puts attributes before element children.
	if entry.Children[0].Tag != "@id" {
		t.Fatalf("first child = %s, want @id", entry.Children[0].Tag)
	}
	name := entry.Children[1]
	sp := name.SourcePath()
	if strings.Join(sp, "/") != "db/entry/name" {
		t.Fatalf("SourcePath = %v", sp)
	}
}

func TestIsAttr(t *testing.T) {
	n := New("x")
	n.SetAttr("a", "1")
	if !n.Children[0].IsAttr() {
		t.Fatal("attribute node not recognized")
	}
	if n.IsAttr() {
		t.Fatal("element misclassified as attribute")
	}
}

func TestParseRoundTrip(t *testing.T) {
	doc := `<db><entry id="e1"><name>alpha &amp; beta</name><tags/></entry></db>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := root.String()
	if got != doc {
		t.Fatalf("roundtrip:\n got %s\nwant %s", got, doc)
	}
	// Parse the serialization again; must be stable.
	root2, err := ParseString(got)
	if err != nil {
		t.Fatal(err)
	}
	if root2.String() != got {
		t.Fatal("serialization not stable")
	}
}

func TestParseAttrsBecomeNodes(t *testing.T) {
	root, err := ParseString(`<a x="1" y="2"><b z="3"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3 (two attrs + b)", len(root.Children))
	}
	if root.Children[0].Tag != "@x" || root.Children[0].Text != "1" {
		t.Fatalf("attr node = %+v", root.Children[0])
	}
	b := root.Children[2]
	if b.Tag != "b" || len(b.Children) != 1 || b.Children[0].Tag != "@z" {
		t.Fatalf("b = %+v", b)
	}
}

func TestParseTextCoalesced(t *testing.T) {
	root, err := ParseString(`<a>one<b/>two</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Text != "one two" {
		t.Fatalf("text = %q", root.Text)
	}
}

func TestWalkDocumentOrder(t *testing.T) {
	root, err := ParseString(`<a><b><c/></b><d/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	root.Walk(func(n *Node) { order = append(order, n.Tag) })
	want := "a b c d"
	if strings.Join(order, " ") != want {
		t.Fatalf("walk order = %v", order)
	}
}

func TestComputeStats(t *testing.T) {
	root, err := ParseString(`<a x="1"><b><c/></b><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(root)
	// nodes: a, @x, b, c, b = 5
	if st.Nodes != 5 {
		t.Fatalf("Nodes = %d, want 5", st.Nodes)
	}
	// tags: a, @x, b, c = 4
	if st.Tags != 4 {
		t.Fatalf("Tags = %d, want 4", st.Tags)
	}
	// depth: a/b/c = 3
	if st.Depth != 3 {
		t.Fatalf("Depth = %d, want 3", st.Depth)
	}
}

func TestDistinctTags(t *testing.T) {
	root, _ := ParseString(`<a><b/><b/><c/></a>`)
	tags := DistinctTags(root)
	if strings.Join(tags, ",") != "a,b,c" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestEscaping(t *testing.T) {
	n := New("a")
	n.Text = `<>&"`
	n.SetAttr("q", `"quoted"`)
	s := n.String()
	if !strings.Contains(s, "&lt;&gt;&amp;&quot;") {
		t.Fatalf("text not escaped: %s", s)
	}
	if !strings.Contains(s, `q="&quot;quoted&quot;"`) {
		t.Fatalf("attr not escaped: %s", s)
	}
	// Round trip.
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Text != n.Text {
		t.Fatalf("text roundtrip: %q", back.Text)
	}
}

func TestParseError(t *testing.T) {
	if _, err := ParseString(`<a><b></a>`); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSourcePathOfRoot(t *testing.T) {
	root := New("r")
	sp := root.SourcePath()
	if len(sp) != 1 || sp[0] != "r" {
		t.Fatalf("SourcePath(root) = %v", sp)
	}
}
