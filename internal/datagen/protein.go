package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Values the paper's protein queries select on.
const (
	// AuthorDaniel is the author value of query QP2.
	AuthorDaniel = "Daniel, M."
	// AuthorEvans and YearEvans appear in the paper's running example Q.
	AuthorEvans = "Evans, M.J."
	YearEvans   = "2001"
	// SuperfamilyCytochrome is the classification the running example
	// filters on.
	SuperfamilyCytochrome = "cytochrome c"
)

var authorPool = []string{
	AuthorEvans, AuthorDaniel, "Smith, K.", "Jones, A.", "Brown, T.",
	"Garcia, L.", "Chen, Y.", "Davidson, S.", "Zheng, Y.", "Tannen, V.",
	"Kim, J.", "Mueller, R.", "Okafor, N.", "Rossi, P.",
}

var superfamilies = []string{
	SuperfamilyCytochrome, "globin", "lysozyme", "ferredoxin", "insulin",
	"histone H4", "protease inhibitor", "kinase",
}

var proteinNames = []string{
	"cytochrome c [validated]", "hemoglobin alpha chain", "lysozyme C",
	"ferredoxin I", "insulin precursor", "histone H4", "trypsin inhibitor",
	"protein kinase A",
}

var titleWords = []string{
	"the", "human", "somatic", "gene", "structure", "sequence", "analysis",
	"of", "and", "protein", "evolution", "expression", "cloning", "rat",
	"bovine", "amino", "acid", "complete",
}

// Protein generates the protein sequence database: tree-shaped DTD,
// 66 distinct tags, depth 7. Each ProteinEntry carries the header,
// protein classification, organism, references, genetics, features and
// summary sections of the PIR format.
func Protein(o Options) *xmltree.Node {
	rnd := rand.New(rand.NewSource(o.Seed ^ 0x9407e14))
	root := xmltree.New("ProteinDatabase")
	entries := 1980 * o.factor()
	for e := 0; e < entries; e++ {
		entry := root.AppendNew("ProteinEntry")

		entry.SetAttr("status", pick2(e%3 == 0, "validated", "provisional"))

		header := entry.AppendNew("header")
		header.SetAttr("version", fmt.Sprint(1+e%4))
		header.AppendText("uid", fmt.Sprintf("A%05d", e))
		header.AppendText("accession", fmt.Sprintf("PIR%06d", e*7%999983))
		created := header.AppendNew("created_date")
		created.Text = fmt.Sprintf("%02d-%s-%d", 1+e%28, month(e), 1980+e%22)
		header.AppendText("seq-rev_date", fmt.Sprintf("%02d-%s-%d", 1+e%28, month(e+3), 1985+e%17))
		header.AppendText("txt-rev_date", fmt.Sprintf("%02d-%s-%d", 1+e%28, month(e+5), 1990+e%12))

		protein := entry.AppendNew("protein")
		protein.AppendText("name", proteinNames[e%len(proteinNames)])
		if e%4 == 0 {
			protein.AppendText("alt-name", "alternative designation")
		}
		cls := protein.AppendNew("classification")
		cls.AppendText("superfamily", superfamilies[e%len(superfamilies)])
		if e%2 == 0 {
			cls.AppendText("family", "soluble cytochrome family")
		}
		if e%3 == 0 {
			cls.AppendText("homology-domain", "cytochrome c homology")
		}
		source := protein.AppendNew("source")
		org := source.AppendNew("organism")
		org.AppendText("formal", "Homo sapiens")
		org.AppendText("common", "man")

		nRefs := 1 + rnd.Intn(3)
		for r := 0; r < nRefs; r++ {
			ref := entry.AppendNew("reference")
			ri := ref.AppendNew("refinfo")
			ri.SetAttr("refid", fmt.Sprintf("R%d.%d", e, r))
			authors := ri.AppendNew("authors")
			nAuth := 1 + rnd.Intn(3)
			for a := 0; a < nAuth; a++ {
				authors.AppendText("author", authorPool[(e+r+a*3)%len(authorPool)])
			}
			if e%2 == 0 {
				cit := ri.AppendNew("citation")
				jr := cit.AppendNew("journal")
				jr.Text = "J. Biol. Chem."
				jr.AppendText("issue", fmt.Sprint(1+(e+r)%12))
				cit.AppendText("volume", fmt.Sprint(200+e%80))
				cit.AppendText("pages", fmt.Sprintf("%d-%d", 100+e%800, 110+e%800))
				cit.AppendText("year-from-cit", fmt.Sprint(1995+(e+r)%10))
			}
			ri.AppendText("year", fmt.Sprint(1995+(e+r)%10))
			ri.AppendText("title", randTitle(rnd))
			if r == 0 {
				ri.AppendText("xrefs", fmt.Sprintf("MUID:%08d", e*13%99999999))
			}
			accinfo := ref.AppendNew("accinfo")
			accinfo.AppendText("mol-type", "protein")
			if e%5 == 0 {
				accinfo.AppendText("seq-spec", "1-104")
			}
		}

		if e%2 == 1 {
			gen := entry.AppendNew("genetics")
			gene := gen.AppendNew("gene")
			gene.Text = fmt.Sprintf("GEN%d", e%997)
			gs := gene.AppendNew("gene-symbols")
			gs.AppendText("symbol", fmt.Sprintf("G%d", e%97))
			gen.AppendText("gene-map", fmt.Sprintf("%dq%d", 1+e%22, 1+e%3))
			if e%6 == 1 {
				gen.AppendText("introns", fmt.Sprintf("%d", 1+e%7))
			}
		}

		if e%3 == 2 {
			feats := entry.AppendNew("features")
			ft := feats.AppendNew("feature")
			ft.SetAttr("label", fmt.Sprintf("F%d", e%53))
			ft.AppendText("feature-type", "binding site")
			fd := ft.AppendNew("feature-descr")
			fd.AppendText("descr-text", "heme (covalent)")
			ft.AppendText("feature-spec", fmt.Sprintf("%d,%d", 14+e%3, 17+e%3))
		}

		if e%4 == 3 {
			fn := entry.AppendNew("function")
			fn.AppendText("funct-descr", "electron transport")
			fn.AppendText("ec", fmt.Sprintf("1.%d.%d.%d", 1+e%9, 1+e%9, 1+e%99))
		}
		if e%3 == 0 {
			xr := entry.AppendNew("crossreferences")
			x := xr.AppendNew("xref")
			x.AppendText("xdb", "EMBL")
			x.AppendText("xuid", fmt.Sprintf("X%06d", e*11%999999))
		}
		if e%6 == 5 {
			entry.AppendText("note", "synthetic stand-in entry")
		}
		if e%5 == 4 {
			kw := entry.AppendNew("keywords")
			kw.AppendText("keyword", "electron transfer")
			kw.AppendText("keyword", "heme")
		}

		summary := entry.AppendNew("summary")
		summary.AppendText("length", fmt.Sprint(80+e%400))
		summary.AppendText("type", "complete")

		seq := entry.AppendNew("sequence")
		seq.Text = randSeq(rnd, 40)
		if e%7 == 0 {
			entry.AppendText("comment", "This entry is a synthetic stand-in.")
		}
	}
	return root
}

func pick2(cond bool, a, b string) string {
	if cond {
		return a
	}
	return b
}

func month(i int) string {
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	return months[i%12]
}

func randTitle(rnd *rand.Rand) string {
	n := 5 + rnd.Intn(5)
	out := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, titleWords[rnd.Intn(len(titleWords))]...)
	}
	return string(out)
}

func randSeq(rnd *rand.Rand, n int) string {
	const acids = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = acids[rnd.Intn(len(acids))]
	}
	return string(out)
}
