package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

// NameSkewed is the planner-stress corpus: not one of the paper's three
// data sets (Names leaves it out so the Fig. 12 experiments are
// untouched), but generable through ByName for the plan-quality
// benchmarks and tests.
const NameSkewed = "skewed"

// ColdVal is the value every cold item carries; queries selecting any
// other value come back empty after scanning only the tiny val run.
const ColdVal = "frozen"

// DecoyVal is a value present in the document but never under an item,
// so a data-index probe for it is non-zero (no emptiness proof) while
// the item-side scan still filters to nothing.
const DecoyVal = "melted"

// Skewed generates a corpus with deliberately lopsided P-label run
// lengths: one path with a huge run (hot/item and its id children, 4000
// per factor each) next to runs of single-digit length (the cold items'
// val children, the tail sections). Translation order puts the huge
// fragment first in the queries the plan-quality figure runs, so a
// fixed-order execution pays the big scan before discovering the tiny
// fragment was empty — exactly the gap greedy most-selective-first
// ordering closes. The decoy value keeps the planner from proving those
// plans empty outright; see the provably-empty case in the tests for
// the path that short-circuits with zero scans.
func Skewed(o Options) *xmltree.Node {
	root := xmltree.New("catalog")
	hot := root.AppendNew("hot")
	n := 4000 * o.factor()
	for i := 0; i < n; i++ {
		item := hot.AppendNew("item")
		item.AppendText("id", fmt.Sprintf("hot-%d", i))
	}
	cold := root.AppendNew("cold")
	for i := 0; i < 3; i++ {
		item := cold.AppendNew("item")
		item.AppendText("id", fmt.Sprintf("cold-%d", i))
		item.AppendText("val", ColdVal)
	}
	decoy := root.AppendNew("decoy")
	decoy.AppendText("note", DecoyVal)
	// A long tail of tiny distinct runs, so the estimate ordering has
	// more than two classes to rank.
	tail := root.AppendNew("tail")
	for i := 0; i < 16; i++ {
		sec := tail.AppendNew(fmt.Sprintf("t%d", i))
		for j := 0; j <= i%3; j++ {
			sec.AppendText("leaf", fmt.Sprintf("leaf-%d-%d", i, j))
		}
	}
	return root
}
