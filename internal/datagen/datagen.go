// Package datagen generates the three synthetic data sets the evaluation
// runs on (paper §5.1.1, Fig. 12). The originals (Bosak's Shakespeare,
// the Georgetown PIR protein database, XMark's Auction benchmark) are not
// redistributable, so the generators reproduce their *shapes*: element
// hierarchy, distinct tag count, depth, node count and the specific
// values the paper's queries select on. Every measured effect in §5 is a
// function of document shape and query structure, so the substitution
// preserves the experiments (see DESIGN.md).
//
//	            size    nodes   tags  depth   (paper Fig. 12)
//	Shakespeare 1.3MB   31975    19     7
//	Protein     3.5MB  113831    66     7
//	Auction     3.4MB   61890    77    12
//
// Generators are deterministic for a given Options value. Factor scales
// the number of top-level entities linearly, standing in for the paper's
// "replicate the data set N times" scaling (§5.3.4).
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Options controls generation.
type Options struct {
	Seed   int64 // random seed; generators are deterministic per seed
	Factor int   // entity multiplier; 0 or 1 reproduces Fig. 12 scale
}

func (o Options) factor() int {
	if o.Factor < 1 {
		return 1
	}
	return o.Factor
}

// Dataset names understood by ByName.
const (
	NameShakespeare = "shakespeare"
	NameProtein     = "protein"
	NameAuction     = "auction"
)

// ByName generates a data set by name. Beyond the paper's three, it
// also accepts the skewed-selectivity planner corpus (NameSkewed),
// which Names deliberately omits.
func ByName(name string, o Options) (*xmltree.Node, error) {
	switch name {
	case NameShakespeare:
		return Shakespeare(o), nil
	case NameProtein:
		return Protein(o), nil
	case NameAuction:
		return Auction(o), nil
	case NameSkewed:
		return Skewed(o), nil
	}
	return nil, fmt.Errorf("datagen: unknown data set %q (want shakespeare, protein, auction or skewed)", name)
}

// Names lists the paper's data sets in the paper's order. The skewed
// planner corpus is excluded on purpose: the Fig. 12-18 experiment
// drivers iterate Names and must keep running on exactly the paper's
// trio.
func Names() []string { return []string{NameShakespeare, NameProtein, NameAuction} }

// --- Shakespeare -----------------------------------------------------

// SceneIIITitle is the scene title the paper's query QS3 selects on.
const SceneIIITitle = "SCENE III. A public place."

var playTitles = []string{
	"The Tragedy of Antony and Cleopatra", "All's Well That Ends Well",
	"As You Like It", "The Comedy of Errors", "The Tragedy of Coriolanus",
	"Cymbeline", "The Tragedy of Hamlet", "The First Part of Henry the Fourth",
	"The Life of Henry the Fifth", "The Tragedy of Julius Caesar",
	"The Tragedy of King Lear", "The Tragedy of Macbeth",
}

var speakerNames = []string{
	"BERNARDO", "FRANCISCO", "HORATIO", "MARCELLUS", "HAMLET", "CLAUDIUS",
	"GERTRUDE", "POLONIUS", "OPHELIA", "LAERTES", "FIRST WITCH", "MACBETH",
}

var lineWords = []string{
	"the", "and", "to", "of", "thou", "that", "with", "his", "what", "him",
	"shall", "king", "lord", "good", "sir", "love", "night", "well", "come",
	"let", "speak", "heart", "time", "death", "most", "men", "heaven",
}

// Shakespeare generates the plays corpus: graph-shaped DTD, 19 tags,
// depth 7 (PLAYS/PLAY/ACT/SCENE/SPEECH/LINE/STAGEDIR).
func Shakespeare(o Options) *xmltree.Node {
	rnd := rand.New(rand.NewSource(o.Seed ^ 0x5ea5))
	root := xmltree.New("PLAYS")
	plays := 37 * o.factor()
	for p := 0; p < plays; p++ {
		play := root.AppendNew("PLAY")
		play.AppendText("TITLE", playTitles[p%len(playTitles)])
		fm := play.AppendNew("FM")
		fm.AppendText("P", "Text placed in the public domain.")
		play.AppendText("PLAYSUBT", playTitles[p%len(playTitles)])
		play.AppendText("SCNDESCR", "SCENE Denmark.")
		personae := play.AppendNew("PERSONAE")
		personae.AppendText("TITLE", "Dramatis Personae")
		for i := 0; i < 6; i++ {
			personae.AppendText("PERSONA", speakerNames[(p+i)%len(speakerNames)])
		}
		pg := personae.AppendNew("PGROUP")
		for i := 0; i < 2; i++ {
			pg.AppendText("PERSONA", speakerNames[(p+6+i)%len(speakerNames)])
		}
		pg.AppendText("GRPDESCR", "courtiers")
		acts := 5
		for a := 0; a < acts; a++ {
			act := play.AppendNew("ACT")
			act.AppendText("TITLE", fmt.Sprintf("ACT %s", roman(a+1)))
			if a == 0 && p%2 == 0 {
				pro := act.AppendNew("PROLOGUE")
				pro.AppendText("LINE", randLine(rnd))
			}
			scenes := 3 + rnd.Intn(2)
			for s := 0; s < scenes; s++ {
				scene := act.AppendNew("SCENE")
				if a == 0 && s == 2 {
					scene.AppendText("TITLE", SceneIIITitle)
				} else {
					scene.AppendText("TITLE", fmt.Sprintf("SCENE %s. A room in the castle.", roman(s+1)))
				}
				if rnd.Intn(3) == 0 {
					scene.AppendText("STAGEDIR", "Enter attendants")
				}
				speeches := 6 + rnd.Intn(3)
				for sp := 0; sp < speeches; sp++ {
					speech := scene.AppendNew("SPEECH")
					speech.AppendText("SPEAKER", speakerNames[rnd.Intn(len(speakerNames))])
					lines := 3 + rnd.Intn(3)
					for l := 0; l < lines; l++ {
						line := speech.AppendNew("LINE")
						line.Text = randLine(rnd)
						if rnd.Intn(12) == 0 {
							line.AppendText("STAGEDIR", "Aside")
						}
					}
				}
			}
		}
		epi := play.AppendNew("EPILOGUE")
		epi.AppendText("TITLE", "EPILOGUE")
		for l := 0; l < 4; l++ {
			line := epi.AppendNew("LINE")
			line.Text = randLine(rnd)
			if l == 1 {
				line.AppendText("STAGEDIR", "Exeunt")
			}
		}
	}
	return root
}

func randLine(rnd *rand.Rand) string {
	n := 4 + rnd.Intn(5)
	out := make([]byte, 0, 48)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, lineWords[rnd.Intn(len(lineWords))]...)
	}
	return string(out)
}

func roman(n int) string {
	vals := []struct {
		v int
		s string
	}{{10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"}}
	out := ""
	for _, e := range vals {
		for n >= e.v {
			out += e.s
			n -= e.v
		}
	}
	return out
}
