package datagen

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func stats(t *testing.T, root *xmltree.Node) xmltree.Stats {
	t.Helper()
	return xmltree.ComputeStats(root)
}

// TestFig12Shapes checks the generated data sets against the paper's
// Fig. 12 characteristics: distinct tag counts and depths must match
// exactly; node counts must be in the same ballpark.
func TestFig12Shapes(t *testing.T) {
	cases := []struct {
		name      string
		wantTags  int
		wantDepth int
		minNodes  int
		maxNodes  int
	}{
		{NameShakespeare, 19, 7, 20000, 50000},
		{NameProtein, 66, 7, 80000, 150000},
		{NameAuction, 77, 12, 40000, 90000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root, err := ByName(c.name, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			st := stats(t, root)
			if st.Tags != c.wantTags {
				t.Errorf("%s tags = %d, want %d", c.name, st.Tags, c.wantTags)
			}
			if st.Depth != c.wantDepth {
				t.Errorf("%s depth = %d, want %d", c.name, st.Depth, c.wantDepth)
			}
			if st.Nodes < c.minNodes || st.Nodes > c.maxNodes {
				t.Errorf("%s nodes = %d, want within [%d, %d]", c.name, st.Nodes, c.minNodes, c.maxNodes)
			}
		})
	}
}

func TestDeterministic(t *testing.T) {
	a := Auction(Options{Seed: 7})
	b := Auction(Options{Seed: 7})
	if a.String() != b.String() {
		t.Fatal("same seed produced different documents")
	}
	c := Auction(Options{Seed: 8})
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestFactorScalesLinearly(t *testing.T) {
	small := stats(t, Protein(Options{Seed: 1, Factor: 1}))
	big := stats(t, Protein(Options{Seed: 1, Factor: 3}))
	ratio := float64(big.Nodes) / float64(small.Nodes)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("factor 3 scaled nodes by %.2f", ratio)
	}
	// Depth and tag universe must not change with scale.
	if big.Depth != small.Depth {
		t.Fatalf("depth changed with factor: %d vs %d", big.Depth, small.Depth)
	}
}

// TestPaperQueriesHaveResults: every query of Fig. 10 (and the paper's §1
// example) must select something on its data set — otherwise the
// benchmarks would measure empty work.
func TestPaperQueriesHaveResults(t *testing.T) {
	shak := Shakespeare(Options{Seed: 1})
	prot := Protein(Options{Seed: 1})
	auct := Auction(Options{Seed: 1})

	cases := []struct {
		doc   *xmltree.Node
		query string
	}{
		{shak, "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE"},
		{shak, "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR"},
		{shak, `/PLAYS/PLAY/ACT/SCENE[TITLE="` + SceneIIITitle + `"]//LINE`},
		{prot, "/ProteinDatabase/ProteinEntry/protein/name"},
		{prot, `/ProteinDatabase/ProteinEntry//authors/author="` + AuthorDaniel + `"`},
		{prot, "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name"},
		{prot, `/ProteinDatabase/ProteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`},
		{auct, "//category/description/parlist/listitem"},
		{auct, "/site/regions//item/description"},
		{auct, "/site/regions/asia/item[shipping]/description"},
		{auct, "/site/people/person/name"},
		{auct, "/site/open_auctions/open_auction/bidder/increase"},
		{auct, "/site/closed_auctions/closed_auction[annotation]/price"},
		{auct, "/site/closed_auctions/closed_auction/price"},
		{auct, "/site/regions//item"},
	}
	for _, c := range cases {
		q, err := xpath.Parse(c.query)
		if err != nil {
			t.Fatalf("parse %s: %v", c.query, err)
		}
		if got := xpath.Eval(c.doc, q); len(got) == 0 {
			t.Errorf("query %s returns nothing", c.query)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("bogus", Options{}); err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, n := range Names() {
		if _, err := ByName(n, Options{Seed: 1}); err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
	}
}

// TestAuctionRecursionDepth ensures the parlist/listitem recursion
// reaches depth 12 but never exceeds it (the P-label scheme must hold).
func TestAuctionRecursionDepth(t *testing.T) {
	root := Auction(Options{Seed: 3})
	st := stats(t, root)
	if st.Depth != 12 {
		t.Fatalf("depth = %d, want 12", st.Depth)
	}
}

func TestShakespeareSceneIIIUnique(t *testing.T) {
	root := Shakespeare(Options{Seed: 1})
	q := xpath.MustParse(`//SCENE[TITLE="` + SceneIIITitle + `"]`)
	got := xpath.Eval(root, q)
	if len(got) == 0 {
		t.Fatal("QS3's scene title missing")
	}
	// One per play.
	plays := xpath.Eval(root, xpath.MustParse("/PLAYS/PLAY"))
	if len(got) != len(plays) {
		t.Fatalf("scene III count = %d, plays = %d", len(got), len(plays))
	}
}

func TestSerializedSizeBallpark(t *testing.T) {
	// The paper's sizes: 1.3MB, 3.5MB, 3.4MB. Stay within a factor ~2.
	cases := []struct {
		name     string
		min, max int
	}{
		{NameShakespeare, 600_000, 3_000_000},
		{NameProtein, 1_800_000, 7_000_000},
		{NameAuction, 1_500_000, 7_000_000},
	}
	for _, c := range cases {
		root, _ := ByName(c.name, Options{Seed: 1})
		var b strings.Builder
		if err := xmltree.WriteXML(&b, root); err != nil {
			t.Fatal(err)
		}
		if n := b.Len(); n < c.min || n > c.max {
			t.Errorf("%s serialized size = %d, want within [%d, %d]", c.name, n, c.min, c.max)
		}
	}
}
