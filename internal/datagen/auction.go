package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

var regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var firstNames = []string{"Maya", "Jun", "Olaf", "Priya", "Kofi", "Elena", "Tariq", "Ana"}
var lastNames = []string{"Ito", "Okafor", "Nilsson", "Sharma", "Costa", "Weber", "Haddad", "Silva"}

var itemWords = []string{
	"vintage", "rare", "antique", "signed", "boxed", "mint", "classic",
	"limited", "edition", "collector", "series", "original",
}

// Auction generates the XMark-style auction data: recursive DTD
// (description/parlist/listitem recursion), 77 distinct tags (attributes
// included, as the paper counts them), depth 12.
func Auction(o Options) *xmltree.Node {
	rnd := rand.New(rand.NewSource(o.Seed ^ 0xa0c710))
	f := o.factor()
	root := xmltree.New("site")

	nItems := 648 * f // per region: nItems/6
	nCats := 324 * f
	nPeople := 1375 * f
	nOpen, nClosed := 650*f, 525*f

	// regions
	reg := root.AppendNew("regions")
	item := 0
	for _, rn := range regions {
		region := reg.AppendNew(rn)
		for i := 0; i < nItems/len(regions); i++ {
			it := region.AppendNew("item")
			it.SetAttr("id", fmt.Sprintf("item%d", item))
			it.SetAttr("featured", pick(rnd, "yes", "no"))
			it.AppendText("location", pick(rnd, "United States", "Japan", "Germany", "Kenya"))
			it.AppendText("quantity", fmt.Sprint(1+rnd.Intn(5)))
			it.AppendText("name", randWordsFrom(rnd, itemWords, 3))
			payment := it.AppendNew("payment")
			payment.Text = pick(rnd, "Creditcard", "Money order", "Cash")
			description(rnd, it, 5, i == 0)
			if rnd.Intn(2) == 0 {
				it.AppendText("shipping", pick(rnd, "Will ship internationally", "Buyer pays fixed shipping charges"))
			}
			for c := 0; c < 1+rnd.Intn(2); c++ {
				inc := it.AppendNew("incategory")
				inc.SetAttr("category", fmt.Sprintf("category%d", rnd.Intn(nCats)))
			}
			if rnd.Intn(3) == 0 {
				mb := it.AppendNew("mailbox")
				mail := mb.AppendNew("mail")
				mail.AppendText("from", randName(rnd))
				mail.AppendText("to", randName(rnd))
				mail.AppendText("date", randDate(rnd))
				text(rnd, mail, 7)
			}
			item++
		}
	}

	// categories
	cats := root.AppendNew("categories")
	for c := 0; c < nCats; c++ {
		cat := cats.AppendNew("category")
		cat.SetAttr("id", fmt.Sprintf("category%d", c))
		cat.AppendText("name", randWordsFrom(rnd, itemWords, 2))
		description(rnd, cat, 4, c == 0)
	}

	// catgraph
	cg := root.AppendNew("catgraph")
	for c := 0; c < nCats/2; c++ {
		edge := cg.AppendNew("edge")
		edge.SetAttr("from", fmt.Sprintf("category%d", rnd.Intn(nCats)))
		edge.SetAttr("to", fmt.Sprintf("category%d", rnd.Intn(nCats)))
	}

	// people
	people := root.AppendNew("people")
	for p := 0; p < nPeople; p++ {
		person := people.AppendNew("person")
		person.SetAttr("id", fmt.Sprintf("person%d", p))
		person.AppendText("name", randName(rnd))
		person.AppendText("emailaddress", fmt.Sprintf("mailto:u%d@example.org", p))
		if rnd.Intn(2) == 0 {
			person.AppendText("phone", fmt.Sprintf("+1 (%03d) 555-01%02d", 200+rnd.Intn(700), rnd.Intn(100)))
		}
		if rnd.Intn(2) == 0 {
			addr := person.AppendNew("address")
			addr.AppendText("street", fmt.Sprintf("%d Main St", 1+rnd.Intn(99)))
			addr.AppendText("city", pick(rnd, "Tokyo", "Berlin", "Nairobi", "Lima"))
			addr.AppendText("country", pick(rnd, "Japan", "Germany", "Kenya", "Peru"))
			addr.AppendText("zipcode", fmt.Sprint(10000+rnd.Intn(89999)))
		}
		if rnd.Intn(3) == 0 {
			person.AppendText("creditcard", fmt.Sprintf("%04d %04d %04d %04d", rnd.Intn(9999), rnd.Intn(9999), rnd.Intn(9999), rnd.Intn(9999)))
		}
		if rnd.Intn(2) == 0 {
			prof := person.AppendNew("profile")
			prof.SetAttr("income", fmt.Sprintf("%d", 20000+rnd.Intn(80000)))
			for i := 0; i < rnd.Intn(3); i++ {
				in := prof.AppendNew("interest")
				in.SetAttr("category", fmt.Sprintf("category%d", rnd.Intn(nCats)))
			}
			prof.AppendText("business", pick(rnd, "Yes", "No"))
		}
		if rnd.Intn(3) == 0 {
			w := person.AppendNew("watches")
			for i := 0; i < 1+rnd.Intn(2); i++ {
				watch := w.AppendNew("watch")
				watch.SetAttr("open_auction", fmt.Sprintf("open_auction%d", rnd.Intn(nOpen)))
			}
		}
	}

	// open auctions
	open := root.AppendNew("open_auctions")
	for a := 0; a < nOpen; a++ {
		oa := open.AppendNew("open_auction")
		oa.SetAttr("id", fmt.Sprintf("open_auction%d", a))
		oa.AppendText("initial", money(rnd))
		if rnd.Intn(2) == 0 {
			oa.AppendText("reserve", money(rnd))
		}
		for b := 0; b < rnd.Intn(4); b++ {
			bidder := oa.AppendNew("bidder")
			bidder.AppendText("date", randDate(rnd))
			bidder.AppendText("time", fmt.Sprintf("%02d:%02d:%02d", rnd.Intn(24), rnd.Intn(60), rnd.Intn(60)))
			pr := bidder.AppendNew("personref")
			pr.SetAttr("person", fmt.Sprintf("person%d", rnd.Intn(nPeople)))
			bidder.AppendText("increase", money(rnd))
		}
		oa.AppendText("current", money(rnd))
		ir := oa.AppendNew("itemref")
		ir.SetAttr("item", fmt.Sprintf("item%d", rnd.Intn(nItems)))
		sl := oa.AppendNew("seller")
		sl.SetAttr("person", fmt.Sprintf("person%d", rnd.Intn(nPeople)))
		annotation(rnd, oa)
		oa.AppendText("quantity", fmt.Sprint(1+rnd.Intn(5)))
		oa.AppendText("type", pick(rnd, "Regular", "Featured", "Dutch"))
		iv := oa.AppendNew("interval")
		iv.AppendText("start", randDate(rnd))
		iv.AppendText("end", randDate(rnd))
	}

	// closed auctions
	closed := root.AppendNew("closed_auctions")
	for a := 0; a < nClosed; a++ {
		ca := closed.AppendNew("closed_auction")
		sl := ca.AppendNew("seller")
		sl.SetAttr("person", fmt.Sprintf("person%d", rnd.Intn(nPeople)))
		by := ca.AppendNew("buyer")
		by.SetAttr("person", fmt.Sprintf("person%d", rnd.Intn(nPeople)))
		ir := ca.AppendNew("itemref")
		ir.SetAttr("item", fmt.Sprintf("item%d", rnd.Intn(nItems)))
		ca.AppendText("price", money(rnd))
		ca.AppendText("date", randDate(rnd))
		ca.AppendText("quantity", fmt.Sprint(1+rnd.Intn(3)))
		ca.AppendText("type", pick(rnd, "Regular", "Featured"))
		annotation(rnd, ca)
	}
	return root
}

// maxAuctionDepth bounds the recursive description/parlist/listitem
// structure: the deepest chain is site/regions/<region>/item/description/
// parlist/listitem/parlist/listitem/parlist/listitem/text, 12 levels
// (Fig. 12's Auction depth).
const maxAuctionDepth = 12

// description emits the recursive description structure. depth is the
// depth of the description node itself; deep forces a full-depth chain
// (so every generated document reaches depth 12 deterministically).
func description(rnd *rand.Rand, parent *xmltree.Node, depth int, deep bool) {
	d := parent.AppendNew("description")
	if deep || (depth+3 <= maxAuctionDepth && rnd.Intn(2) == 0) {
		parlist(rnd, d, depth+1, deep)
	} else {
		text(rnd, d, depth+1)
	}
}

func parlist(rnd *rand.Rand, parent *xmltree.Node, depth int, deep bool) {
	pl := parent.AppendNew("parlist")
	n := 1 + rnd.Intn(2)
	for i := 0; i < n; i++ {
		li := pl.AppendNew("listitem")
		canRecurse := depth+4 <= maxAuctionDepth // nested parlist+listitem+text
		if canRecurse && ((deep && i == 0) || rnd.Intn(3) == 0) {
			parlist(rnd, li, depth+2, deep && i == 0)
		} else {
			text(rnd, li, depth+2)
		}
	}
}

func text(rnd *rand.Rand, parent *xmltree.Node, depth int) {
	t := parent.AppendNew("text")
	t.Text = randWordsFrom(rnd, itemWords, 14)
	if depth+1 > maxAuctionDepth {
		return
	}
	switch rnd.Intn(4) {
	case 0:
		t.AppendText("bold", randWordsFrom(rnd, itemWords, 2))
	case 1:
		t.AppendText("keyword", randWordsFrom(rnd, itemWords, 1))
	case 2:
		t.AppendText("emph", randWordsFrom(rnd, itemWords, 2))
	}
}

func annotation(rnd *rand.Rand, parent *xmltree.Node) {
	an := parent.AppendNew("annotation")
	an.AppendText("author", randName(rnd))
	description(rnd, an, 5, false)
	an.AppendText("happiness", fmt.Sprint(1+rnd.Intn(10)))
}

func pick(rnd *rand.Rand, opts ...string) string { return opts[rnd.Intn(len(opts))] }

func randName(rnd *rand.Rand) string {
	return firstNames[rnd.Intn(len(firstNames))] + " " + lastNames[rnd.Intn(len(lastNames))]
}

func randDate(rnd *rand.Rand) string {
	return fmt.Sprintf("%02d/%02d/%d", 1+rnd.Intn(12), 1+rnd.Intn(28), 1998+rnd.Intn(4))
}

func money(rnd *rand.Rand) string {
	return fmt.Sprintf("%d.%02d", 1+rnd.Intn(300), rnd.Intn(100))
}

func randWordsFrom(rnd *rand.Rand, pool []string, n int) string {
	out := make([]byte, 0, 12*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, pool[rnd.Intn(len(pool))]...)
	}
	return string(out)
}
