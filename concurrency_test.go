// Concurrency contract tests: a *Store must serve any number of
// simultaneous Query calls, each with per-query-correct ExecStats. The
// seed version reset store-global counters at the start of every query
// (blas.go called ResetCounters, then Snapshot), so two in-flight
// queries corrupted each other's statistics; these tests pin the fix and
// are meant to run under -race.
package blas

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// concurrencyDoc builds a document large enough that scans overlap in
// time but small enough for the race detector.
func concurrencyDoc() string {
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b,
			`<entry id="%d"><protein><name>p%d</name><class><superfamily>sf%d</superfamily></class></protein>`+
				`<reference><refinfo><author>a%d</author><year>%d</year><title>t%d</title></refinfo></reference></entry>`,
			i, i, i%7, i%13, 1990+i%20, i)
	}
	b.WriteString("</db>")
	return b.String()
}

// concurrencyWorkload mixes suffix paths, branching predicates and
// //-axes so the plans cover equality selections, range selections and
// multi-fragment D-joins.
var concurrencyWorkload = []string{
	"/db/entry/protein/name",
	"//superfamily",
	`/db/entry[protein/class/superfamily="sf3"]/reference/refinfo/title`,
	`//entry[reference//year="1995"]//name`,
	`/db/entry/reference/refinfo[author="a5"]/title`,
}

// TestConcurrentQueriesMatchSequential runs N goroutines of mixed
// translators and engines against one open store and requires every
// result to equal the sequential answer, with self-consistent per-query
// statistics.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	translators := []Translator{TranslatorSplit, TranslatorPushUp, TranslatorUnfold}
	engines := []Engine{EngineRelational, EngineTwig}

	type combo struct {
		query string
		tr    Translator
		eng   Engine
	}
	var combos []combo
	want := map[combo][]Match{}
	for _, q := range concurrencyWorkload {
		for _, tr := range translators {
			for _, eng := range engines {
				c := combo{q, tr, eng}
				res, err := st.Query(q, QueryOptions{Translator: tr, Engine: eng, Parallelism: 1})
				if err != nil {
					t.Fatalf("sequential %s [%s/%s]: %v", q, tr, eng, err)
				}
				if len(res.Matches) == 0 {
					t.Fatalf("sequential %s [%s/%s]: empty result would make the stress vacuous", q, tr, eng)
				}
				combos = append(combos, c)
				want[c] = res.Matches
			}
		}
	}

	const goroutines = 8
	const iterations = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				c := combos[(g+i)%len(combos)]
				// Alternate default (GOMAXPROCS) and sequential execution so
				// the in-query worker pool races against other queries too.
				par := 0
				if i%2 == 1 {
					par = 1
				}
				res, err := st.Query(c.query, QueryOptions{Translator: c.tr, Engine: c.eng, Parallelism: par})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %s [%s/%s]: %v", g, c.query, c.tr, c.eng, err)
					return
				}
				if !reflect.DeepEqual(res.Matches, want[c]) {
					errs <- fmt.Errorf("goroutine %d: %s [%s/%s]: %d matches != sequential %d",
						g, c.query, c.tr, c.eng, len(res.Matches), len(want[c]))
					return
				}
				if err := checkStatsConsistent(res); err != nil {
					errs <- fmt.Errorf("goroutine %d: %s [%s/%s]: %v", g, c.query, c.tr, c.eng, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// checkStatsConsistent verifies the per-query invariants that the old
// store-global counters violated under concurrency.
func checkStatsConsistent(res *Result) error {
	s := res.Stats
	if len(res.Matches) > 0 && s.VisitedElements == 0 {
		return fmt.Errorf("non-empty result with zero visited elements")
	}
	if s.VisitedElements < uint64(len(res.Matches)) {
		return fmt.Errorf("visited %d < matches %d: stats bled across queries", s.VisitedElements, len(res.Matches))
	}
	if s.PageReads == 0 {
		return fmt.Errorf("query read records but no pages")
	}
	if s.PageMisses > s.PageReads {
		return fmt.Errorf("misses %d > reads %d", s.PageMisses, s.PageReads)
	}
	return nil
}

// TestConcurrentStatsDoNotBleed pins the per-query attribution directly:
// a tiny query racing a large one must report the tiny query's visit
// count, not a mixture. Under the seed's shared counters the small
// query's stats routinely included the big scan's work.
func TestConcurrentStatsDoNotBleed(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The exact visited count of the small suffix-path query, measured
	// alone: split answers it with matches only (§4.2).
	small := "/db/entry/protein/name"
	alone, err := st.Query(small, QueryOptions{Translator: TranslatorSplit})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Deferred after st.Close, so it runs first: the background goroutine
	// is stopped and drained before the store goes away, even when an
	// assertion below fails the test.
	defer func() {
		close(stop)
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// A baseline scan visiting far more elements than small's answer.
			if _, err := st.Query("//name", QueryOptions{Translator: TranslatorDLabel}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		res, err := st.Query(small, QueryOptions{Translator: TranslatorSplit})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.VisitedElements != alone.Stats.VisitedElements {
			t.Fatalf("iteration %d: visited %d != solo measurement %d (cross-query bleed)",
				i, res.Stats.VisitedElements, alone.Stats.VisitedElements)
		}
	}
}
