// Concurrency contract tests: a *Store must serve any number of
// simultaneous Query calls, each with per-query-correct ExecStats. The
// seed version reset store-global counters at the start of every query
// (blas.go called ResetCounters, then Snapshot), so two in-flight
// queries corrupted each other's statistics; these tests pin the fix and
// are meant to run under -race.
package blas

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pager"
)

// concurrencyDoc builds a document large enough that scans overlap in
// time but small enough for the race detector.
func concurrencyDoc() string {
	var b strings.Builder
	b.WriteString("<db>")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b,
			`<entry id="%d"><protein><name>p%d</name><class><superfamily>sf%d</superfamily></class></protein>`+
				`<reference><refinfo><author>a%d</author><year>%d</year><title>t%d</title></refinfo></reference></entry>`,
			i, i, i%7, i%13, 1990+i%20, i)
	}
	b.WriteString("</db>")
	return b.String()
}

// concurrencyWorkload mixes suffix paths, branching predicates and
// //-axes so the plans cover equality selections, range selections and
// multi-fragment D-joins.
var concurrencyWorkload = []string{
	"/db/entry/protein/name",
	"//superfamily",
	`/db/entry[protein/class/superfamily="sf3"]/reference/refinfo/title`,
	`//entry[reference//year="1995"]//name`,
	`/db/entry/reference/refinfo[author="a5"]/title`,
}

// TestConcurrentQueriesMatchSequential runs N goroutines of mixed
// translators and engines against one open store and requires every
// result to equal the sequential answer, with self-consistent per-query
// statistics.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	translators := []Translator{TranslatorSplit, TranslatorPushUp, TranslatorUnfold}
	engines := []Engine{EngineRelational, EngineTwig}

	type combo struct {
		query string
		tr    Translator
		eng   Engine
	}
	var combos []combo
	want := map[combo][]Match{}
	for _, q := range concurrencyWorkload {
		for _, tr := range translators {
			for _, eng := range engines {
				c := combo{q, tr, eng}
				res, err := st.Query(q, QueryOptions{Translator: tr, Engine: eng, Parallelism: 1})
				if err != nil {
					t.Fatalf("sequential %s [%s/%s]: %v", q, tr, eng, err)
				}
				if len(res.Matches) == 0 {
					t.Fatalf("sequential %s [%s/%s]: empty result would make the stress vacuous", q, tr, eng)
				}
				combos = append(combos, c)
				want[c] = res.Matches
			}
		}
	}

	const goroutines = 8
	const iterations = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				c := combos[(g+i)%len(combos)]
				// Alternate default (GOMAXPROCS) and sequential execution so
				// the in-query worker pool races against other queries too.
				par := 0
				if i%2 == 1 {
					par = 1
				}
				res, err := st.Query(c.query, QueryOptions{Translator: c.tr, Engine: c.eng, Parallelism: par})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %s [%s/%s]: %v", g, c.query, c.tr, c.eng, err)
					return
				}
				if !reflect.DeepEqual(res.Matches, want[c]) {
					errs <- fmt.Errorf("goroutine %d: %s [%s/%s]: %d matches != sequential %d",
						g, c.query, c.tr, c.eng, len(res.Matches), len(want[c]))
					return
				}
				if err := checkStatsConsistent(res); err != nil {
					errs <- fmt.Errorf("goroutine %d: %s [%s/%s]: %v", g, c.query, c.tr, c.eng, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// checkStatsConsistent verifies the per-query invariants that the old
// store-global counters violated under concurrency.
func checkStatsConsistent(res *Result) error {
	s := res.Stats
	if s.Elapsed != s.PlanElapsed+s.ExecElapsed {
		return fmt.Errorf("elapsed %v != plan %v + exec %v", s.Elapsed, s.PlanElapsed, s.ExecElapsed)
	}
	if len(res.Matches) > 0 && s.VisitedElements == 0 {
		return fmt.Errorf("non-empty result with zero visited elements")
	}
	if s.VisitedElements < uint64(len(res.Matches)) {
		return fmt.Errorf("visited %d < matches %d: stats bled across queries", s.VisitedElements, len(res.Matches))
	}
	if s.PageReads == 0 {
		return fmt.Errorf("query read records but no pages")
	}
	if s.PageMisses > s.PageReads {
		return fmt.Errorf("misses %d > reads %d", s.PageMisses, s.PageReads)
	}
	return nil
}

// TestConcurrentStatsDoNotBleed pins the per-query attribution directly:
// a tiny query racing a large one must report the tiny query's visit
// count, not a mixture. Under the seed's shared counters the small
// query's stats routinely included the big scan's work.
func TestConcurrentStatsDoNotBleed(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The exact visited count of the small suffix-path query, measured
	// alone: split answers it with matches only (§4.2).
	small := "/db/entry/protein/name"
	alone, err := st.Query(small, QueryOptions{Translator: TranslatorSplit})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Deferred after st.Close, so it runs first: the background goroutine
	// is stopped and drained before the store goes away, even when an
	// assertion below fails the test.
	defer func() {
		close(stop)
		wg.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// A baseline scan visiting far more elements than small's answer.
			if _, err := st.Query("//name", QueryOptions{Translator: TranslatorDLabel}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		res, err := st.Query(small, QueryOptions{Translator: TranslatorSplit})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.VisitedElements != alone.Stats.VisitedElements {
			t.Fatalf("iteration %d: visited %d != solo measurement %d (cross-query bleed)",
				i, res.Stats.VisitedElements, alone.Stats.VisitedElements)
		}
	}
}

// TestConcurrencyTwigParallelSweep stresses the twig engine's
// partitioned sweep from many goroutines at mixed parallelism, racing a
// DropCaches churner so prefetchers continually miss and refetch. Every
// result must be byte-identical to the sequential twig answer, with
// VisitedElements exactly equal — the partitioned sweep's stats-
// exactness guarantee (each stream record is fetched by exactly one
// partition, at every worker count).
func TestConcurrencyTwigParallelSweep(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	type want struct {
		matches []Match
		visited uint64
	}
	wants := map[string]want{}
	for _, q := range concurrencyWorkload {
		res, err := st.Query(q, QueryOptions{Engine: EngineTwig, Parallelism: 1})
		if err != nil {
			t.Fatalf("sequential twig %s: %v", q, err)
		}
		if len(res.Matches) == 0 {
			t.Fatalf("sequential twig %s: empty result would make the stress vacuous", q)
		}
		wants[q] = want{matches: res.Matches, visited: res.Stats.VisitedElements}
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	defer churn.Wait()
	defer close(stop)
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.DropCaches(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const goroutines = 6
	const iterations = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				q := concurrencyWorkload[(g+i)%len(concurrencyWorkload)]
				par := []int{0, 2, 5}[i%3]
				res, err := st.Query(q, QueryOptions{Engine: EngineTwig, Parallelism: par})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d P=%d %s: %v", g, par, q, err)
					return
				}
				w := wants[q]
				if !reflect.DeepEqual(res.Matches, w.matches) {
					errs <- fmt.Errorf("goroutine %d P=%d %s: %d matches != sequential %d",
						g, par, q, len(res.Matches), len(w.matches))
					return
				}
				if res.Stats.VisitedElements != w.visited {
					errs <- fmt.Errorf("goroutine %d P=%d %s: visited %d != sequential %d (partition overlap or gap)",
						g, par, q, res.Stats.VisitedElements, w.visited)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- buffer pool invariants (PR 4's sharded, pinning pool) ---
//
// The pool tests below target the pager directly through its public API
// and are meant to run under -race (the CI runs
// `go test -race -run Concurrency -count=2`): they pin frames from many
// goroutines while eviction, overflow and DropCache churn the shards.

// poolFixture allocates n pages whose first byte encodes their id.
func poolFixture(t *testing.T, cfg pager.Config, n int) (*pager.File, []pager.PageID) {
	t.Helper()
	f := pager.OpenMemConfig(cfg)
	ids := make([]pager.PageID, n)
	for i := range ids {
		id, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Update(id, func(p []byte) error { p[0] = byte(i + 1); return nil }); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return f, ids
}

// TestConcurrencyPoolEvictionUnderPin holds pins on a fixed page while
// other goroutines sweep a working set far larger than the pool,
// evicting on almost every access. The pinned frame must never be
// reused: its bytes stay valid for the whole callback.
func TestConcurrencyPoolEvictionUnderPin(t *testing.T) {
	const pages = 64
	f, ids := poolFixture(t, pager.Config{PoolPages: 4, Shards: 2}, pages)
	defer f.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Pinners: long callbacks on one page each.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := ids[g]
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := f.View(id, func(p []byte) error {
					for i := 0; i < 100; i++ {
						if p[0] != byte(g+1) {
							return fmt.Errorf("pinned page %d corrupted: byte = %d, want %d", id, p[0], g+1)
						}
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Sweepers: force constant eviction across both shards.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i, id := range ids {
					err := f.View(id, func(p []byte) error {
						if p[0] != byte(i+1) {
							return fmt.Errorf("page %d: byte = %d, want %d", id, p[0], i+1)
						}
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// Let the sweepers finish, then release the pinners.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)

	// Meanwhile verify the file-wide invariant reads >= misses holds on
	// the atomically-maintained stats.
	for i := 0; i < 100; i++ {
		st := f.Stats()
		if st.Misses > st.Reads {
			t.Fatalf("stats snapshot: misses %d > reads %d", st.Misses, st.Reads)
		}
	}
}

// TestConcurrencyPoolAllPinnedOverflow pins more pages at once than the
// pool holds. Eviction finds no victim, so shards must grow transiently
// — every pin succeeds, with correct data, rather than erroring or
// recycling a pinned buffer.
func TestConcurrencyPoolAllPinnedOverflow(t *testing.T) {
	const pages = 12
	f, ids := poolFixture(t, pager.Config{PoolPages: 2, Shards: 1}, pages)
	defer f.Close()

	var wg sync.WaitGroup
	hold := make(chan struct{})
	pinned := make(chan error, pages)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id pager.PageID) {
			defer wg.Done()
			err := f.View(id, func(p []byte) error {
				if p[0] != byte(i+1) {
					return fmt.Errorf("page %d: byte = %d, want %d", id, p[0], i+1)
				}
				pinned <- nil
				<-hold // keep the frame pinned until all pages are in
				if p[0] != byte(i+1) {
					return fmt.Errorf("page %d corrupted while pinned: byte = %d", id, p[0])
				}
				return nil
			})
			if err != nil {
				pinned <- err
			}
		}(i, id)
	}
	// All 12 pages of a 2-frame pool must get pinned simultaneously.
	for i := 0; i < pages; i++ {
		if err := <-pinned; err != nil {
			t.Error(err)
		}
	}
	close(hold)
	wg.Wait()
}

// TestConcurrencyPoolDropCacheVsView races DropCache against readers:
// views must keep seeing consistent page bytes while the pool is drained
// under them, and the pool must refill correctly afterwards.
func TestConcurrencyPoolDropCacheVsView(t *testing.T) {
	const pages = 32
	f, ids := poolFixture(t, pager.Config{PoolPages: 8}, pages)
	defer f.Close()

	var wg sync.WaitGroup
	var failed atomic.Bool
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 40; round++ {
				for i, id := range ids {
					err := f.View(id, func(p []byte) error {
						if p[0] != byte(i+1) {
							return fmt.Errorf("page %d: byte = %d, want %d", id, p[0], i+1)
						}
						return nil
					})
					if err != nil {
						t.Error(err)
						failed.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200 && !failed.Load(); i++ {
			if err := f.DropCache(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// --- Close vs in-flight queries (PR 4 regression) ---

// TestConcurrencyCloseWaitsForQueries pins the active-query refcount:
// Close must block until running queries finish (their results stay
// complete and correct), and queries arriving after Close has begun get
// ErrClosed instead of crashing on closed files.
func TestConcurrencyCloseWaitsForQueries(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const query = "/db/entry/protein/name"
	want, err := st.Query(query, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	var closedSeen atomic.Int64
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				res, err := st.Query(query, QueryOptions{})
				if errors.Is(err, ErrClosed) {
					closedSeen.Add(1)
					return
				}
				if err != nil {
					t.Errorf("query racing Close: %v", err)
					return
				}
				// A query that was admitted must complete untruncated even
				// while Close is waiting.
				if !reflect.DeepEqual(res.Matches, want.Matches) {
					t.Errorf("query racing Close returned %d matches, want %d", len(res.Matches), len(want.Matches))
					return
				}
			}
		}()
	}
	close(start)
	// Several goroutines race Close; every call must block until the
	// store is actually closed and report the same (nil) result.
	var closers sync.WaitGroup
	for c := 0; c < 3; c++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := st.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	closers.Wait()
	wg.Wait()
	if got := closedSeen.Load(); got != goroutines {
		t.Fatalf("%d goroutines saw ErrClosed, want %d", got, goroutines)
	}
	// After Close everything fails fast with ErrClosed…
	if _, err := st.Query(query, QueryOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: err = %v, want ErrClosed", err)
	}
	if err := st.DropCaches(); !errors.Is(err, ErrClosed) {
		t.Fatalf("DropCaches after Close: err = %v, want ErrClosed", err)
	}
	if _, err := st.Explain(query, QueryOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Explain after Close: err = %v, want ErrClosed", err)
	}
	// …and Close itself is idempotent.
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// --- store metrics registry (PR 6) ---

// TestConcurrencyMetricsRegistry hammers one store from many goroutines
// (successful queries, failing queries, mixed engines) while a reader
// snapshots Metrics throughout. Every snapshot must be internally
// consistent even mid-update — Queries equals the latency histogram's
// bucket sum, counters never move backwards, InFlight stays in range —
// and once the store is quiescent the totals must be exact.
func TestConcurrencyMetricsRegistry(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const goroutines = 8
	const iterations = 25
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	var snapErr error
	go func() {
		defer snapWG.Done()
		var prev StoreMetrics
		for {
			m := st.Metrics()
			var bucketSum uint64
			for _, b := range m.Latency.Buckets {
				bucketSum += b.Count
			}
			switch {
			case m.Queries != m.Latency.Count || m.Queries != bucketSum:
				snapErr = fmt.Errorf("queries %d != latency count %d / bucket sum %d", m.Queries, m.Latency.Count, bucketSum)
			case m.Queries < prev.Queries, m.QueryErrors < prev.QueryErrors,
				m.VisitedElements < prev.VisitedElements, m.PageReads < prev.PageReads:
				snapErr = fmt.Errorf("counter went backwards: %+v after %+v", m, prev)
			case m.InFlight < 0 || m.InFlight > goroutines:
				snapErr = fmt.Errorf("in-flight %d out of [0, %d]", m.InFlight, goroutines)
			}
			if snapErr != nil {
				return
			}
			prev = m
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	engines := []Engine{EngineRelational, EngineTwig}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if i%5 == 4 {
					// A parse error must count as a query error, not a query.
					if _, err := st.Query("][not xpath", QueryOptions{}); err == nil {
						t.Error("malformed query unexpectedly succeeded")
					}
					continue
				}
				q := concurrencyWorkload[(g+i)%len(concurrencyWorkload)]
				if _, err := st.Query(q, QueryOptions{Engine: engines[i%2]}); err != nil {
					t.Errorf("query %s: %v", q, err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	m := st.Metrics()
	wantOK := uint64(goroutines * iterations * 4 / 5)
	wantErr := uint64(goroutines * iterations / 5)
	if m.Queries != wantOK || m.Latency.Count != wantOK {
		t.Errorf("queries = %d (latency count %d), want %d", m.Queries, m.Latency.Count, wantOK)
	}
	if m.QueryErrors != wantErr {
		t.Errorf("query errors = %d, want %d", m.QueryErrors, wantErr)
	}
	if m.InFlight != 0 {
		t.Errorf("in-flight = %d after quiesce, want 0", m.InFlight)
	}
	var perEngine uint64
	for name, h := range m.ByEngine {
		if h.Count == 0 {
			t.Errorf("engine %q recorded zero queries", name)
		}
		perEngine += h.Count
	}
	if perEngine != m.Queries {
		t.Errorf("per-engine sum %d != queries %d", perEngine, m.Queries)
	}
	var perTranslator uint64
	for _, c := range m.ByTranslator {
		perTranslator += c
	}
	if perTranslator != m.Queries {
		t.Errorf("per-translator sum %d != queries %d", perTranslator, m.Queries)
	}
	if m.VisitedElements == 0 || m.PageReads == 0 {
		t.Errorf("cumulative stats empty: visited %d, page reads %d", m.VisitedElements, m.PageReads)
	}
}
