// Observability contract tests (PR 6): per-query phase traces must tile
// the reported latency, Store.Metrics must stay consistent and must
// render valid expvar-compatible JSON, and Store.Stats must surface
// live buffer pool snapshots.
package blas

import (
	"encoding/json"
	"expvar"
	"testing"
	"time"
)

// phaseSum is the portion of a breakdown measured on the coordinating
// goroutine — the spans that tile Elapsed. PrefetchStall is cumulative
// across sweep goroutines and deliberately excluded.
func phaseSum(p *PhaseBreakdown) time.Duration {
	return p.Parse + p.Translate + p.Scan + p.Join + p.Sweep + p.Finalize
}

// TestTracePhasesSumToElapsed runs traced queries on both engines at
// sequential and parallel settings and requires the phase spans to tile
// the reported latency: the sum must not exceed Elapsed (beyond clock
// noise), and the uninstrumented residual must stay a small fraction of
// it.
func TestTracePhasesSumToElapsed(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	queries := []string{
		"/db/entry/protein/name",
		`//entry[reference//year="1995"]//name`,
	}
	for _, engine := range []Engine{EngineRelational, EngineTwig} {
		for _, par := range []int{1, 4} {
			for _, q := range queries {
				res, err := st.Query(q, QueryOptions{Engine: engine, Parallelism: par, Trace: true})
				if err != nil {
					t.Fatalf("%s P=%d %s: %v", engine, par, q, err)
				}
				s := res.Stats
				if s.Phases == nil {
					t.Fatalf("%s P=%d %s: Trace requested but Phases is nil", engine, par, q)
				}
				if s.Elapsed != s.PlanElapsed+s.ExecElapsed {
					t.Errorf("%s P=%d %s: elapsed %v != plan %v + exec %v",
						engine, par, q, s.Elapsed, s.PlanElapsed, s.ExecElapsed)
				}
				sum := phaseSum(s.Phases)
				residual := s.Elapsed - sum
				if residual < -time.Millisecond {
					t.Errorf("%s P=%d %s: phase sum %v exceeds elapsed %v", engine, par, q, sum, s.Elapsed)
				}
				maxResidual := s.Elapsed / 4
				if maxResidual < 10*time.Millisecond {
					maxResidual = 10 * time.Millisecond
				}
				if residual > maxResidual {
					t.Errorf("%s P=%d %s: uninstrumented residual %v of elapsed %v (phases %+v)",
						engine, par, q, residual, s.Elapsed, *s.Phases)
				}
				if planned := s.Phases.Parse + s.Phases.Translate; planned > s.PlanElapsed+time.Millisecond {
					t.Errorf("%s P=%d %s: parse+translate %v > plan elapsed %v", engine, par, q, planned, s.PlanElapsed)
				}
				switch engine {
				case EngineRelational:
					if s.Phases.Sweep != 0 || len(s.Phases.Partitions) != 0 {
						t.Errorf("relational query recorded twig phases: %+v", *s.Phases)
					}
					if s.Phases.Scan <= 0 {
						t.Errorf("relational P=%d %s: no scan span recorded", par, q)
					}
				case EngineTwig:
					if s.Phases.Sweep <= 0 {
						t.Errorf("twig P=%d %s: no sweep span recorded", par, q)
					}
					if par == 1 && len(s.Phases.Partitions) != 0 {
						t.Errorf("sequential twig sweep recorded partitions: %v", s.Phases.Partitions)
					}
					if par > 1 && len(s.Phases.Partitions) == 0 {
						t.Errorf("parallel twig sweep (P=%d) recorded no partitions", par)
					}
				}
			}
		}
	}

	// Tracing stays strictly opt-in.
	res, err := st.Query(queries[0], QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Phases != nil {
		t.Errorf("untraced query returned a phase breakdown: %+v", *res.Stats.Phases)
	}
}

// TestStoreMetricsQuiescent checks exact totals after a known workload,
// plus the internal cross-checks between the aggregate and per-label
// views.
func TestStoreMetricsQuiescent(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if m := st.Metrics(); m.Queries != 0 || m.InFlight != 0 || m.QueryErrors != 0 {
		t.Fatalf("fresh store has nonzero metrics: %+v", m)
	}

	var wantVisited, wantReads, wantMisses uint64
	const perEngine = 3
	for _, engine := range []Engine{EngineRelational, EngineTwig} {
		for i := 0; i < perEngine; i++ {
			res, err := st.Query("/db/entry/protein/name", QueryOptions{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			wantVisited += res.Stats.VisitedElements
			wantReads += res.Stats.PageReads
			wantMisses += res.Stats.PageMisses
		}
	}
	if _, err := st.Query("][", QueryOptions{}); err == nil {
		t.Fatal("malformed query unexpectedly succeeded")
	}

	m := st.Metrics()
	if m.Queries != 2*perEngine {
		t.Errorf("queries = %d, want %d", m.Queries, 2*perEngine)
	}
	if m.QueryErrors != 1 {
		t.Errorf("query errors = %d, want 1", m.QueryErrors)
	}
	if m.InFlight != 0 {
		t.Errorf("in-flight = %d, want 0", m.InFlight)
	}
	if m.VisitedElements != wantVisited || m.PageReads != wantReads || m.PageMisses != wantMisses {
		t.Errorf("cumulative stats = %d/%d/%d, want %d/%d/%d",
			m.VisitedElements, m.PageReads, m.PageMisses, wantVisited, wantReads, wantMisses)
	}
	if got := m.ByEngine[string(EngineRelational)].Count; got != perEngine {
		t.Errorf("relational count = %d, want %d", got, perEngine)
	}
	if got := m.ByEngine[string(EngineTwig)].Count; got != perEngine {
		t.Errorf("twig count = %d, want %d", got, perEngine)
	}
	if m.Latency.Count != m.Queries || m.Latency.Mean <= 0 {
		t.Errorf("latency count %d / mean %v inconsistent with %d queries", m.Latency.Count, m.Latency.Mean, m.Queries)
	}
	var bucketSum uint64
	for _, b := range m.Latency.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != m.Latency.Count {
		t.Errorf("bucket sum %d != latency count %d", bucketSum, m.Latency.Count)
	}
}

// TestStoreMetricsJSON pins the export format: Metrics marshals to the
// documented JSON keys and String satisfies the expvar.Var contract
// (valid JSON, same document).
func TestStoreMetricsJSON(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Query("/db/entry/protein/name", QueryOptions{Engine: EngineTwig}); err != nil {
		t.Fatal(err)
	}

	m := st.Metrics()
	var _ expvar.Var = m // compile-time: StoreMetrics is publishable

	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(m.String()), &doc); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"in_flight", "queries", "query_errors", "visited_elements",
		"page_reads", "page_misses", "latency", "queries_by_engine",
		"queries_by_translator", "pools",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics JSON missing key %q", key)
		}
	}
	marshaled, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshaled) != m.String() {
		t.Error("String() and json.Marshal disagree")
	}

	var pools map[string]PoolMetrics
	if err := json.Unmarshal(doc["pools"], &pools); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sp", "sd"} {
		p, ok := pools[name]
		if !ok {
			t.Fatalf("pools JSON missing relation %q", name)
		}
		if p.Shards < 1 || len(p.PerShard) != p.Shards {
			t.Errorf("pool %q: %d per-shard rows for %d shards", name, len(p.PerShard), p.Shards)
		}
		var reads, misses, evictions uint64
		for _, sh := range p.PerShard {
			reads += sh.Reads
			misses += sh.Misses
			evictions += sh.Evictions
		}
		if reads != p.Reads || misses != p.Misses || evictions != p.Evictions {
			t.Errorf("pool %q: shard sums %d/%d/%d != totals %d/%d/%d",
				name, reads, misses, evictions, p.Reads, p.Misses, p.Evictions)
		}
	}
}

// TestStoreStatsPoolSnapshot checks the public pool snapshot: queries on
// both label schemes drive traffic into both relation files, and the
// hits/misses split stays arithmetically consistent.
func TestStoreStatsPoolSnapshot(t *testing.T) {
	st, err := BuildFromString(concurrencyDoc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Push-up selects on the SP relation; the D-labeling baseline scans SD.
	if _, err := st.Query("/db/entry/protein/name", QueryOptions{Translator: TranslatorPushUp}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query("//name", QueryOptions{Translator: TranslatorDLabel}); err != nil {
		t.Fatal(err)
	}

	stats := st.Stats()
	if stats.Nodes == 0 || stats.Tags == 0 {
		t.Fatalf("document stats lost: %+v", stats)
	}
	for name, p := range map[string]PoolStats{"SP": stats.SP, "SD": stats.SD} {
		if p.Reads == 0 {
			t.Errorf("%s pool saw no reads after queries on both schemes", name)
		}
		if p.Hits+p.Misses != p.Reads {
			t.Errorf("%s pool: hits %d + misses %d != reads %d", name, p.Hits, p.Misses, p.Reads)
		}
		if p.Shards < 1 {
			t.Errorf("%s pool reports %d shards", name, p.Shards)
		}
	}
}
