package blas

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/enginetest"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xpath"
)

// TestPaperQueriesEndToEnd is the repository's strongest guarantee: on
// each of the three paper data sets (Fig. 12 scale), every Fig. 10 and
// Fig. 15 query must return exactly the node set the naive reference
// evaluator computes — under all four translators, on both engines.
func TestPaperQueriesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three paper-scale stores")
	}
	queriesByDataset := map[string][]string{}
	for qn, q := range bench.Fig10Queries {
		ds, err := bench.DatasetOf(qn)
		if err != nil {
			t.Fatal(err)
		}
		queriesByDataset[ds] = append(queriesByDataset[ds], q)
	}
	for _, q := range bench.Fig15Queries {
		queriesByDataset["auction"] = append(queriesByDataset["auction"], q)
	}
	// The paper's running example Q (Fig. 2).
	queriesByDataset["protein"] = append(queriesByDataset["protein"],
		`/ProteinDatabase/ProteinEntry[protein//superfamily="cytochrome c"]/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`)

	for _, ds := range datagen.Names() {
		tree, err := datagen.ByName(ds, datagen.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx := translate.Context{Scheme: st.Scheme(), Schema: st.Schema()}
		for _, query := range queriesByDataset[ds] {
			want, err := enginetest.EvalStarts(tree, query)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Errorf("%s: %s returns nothing — benchmark would measure empty work", ds, query)
				continue
			}
			parsed := xpath.MustParse(query)
			for _, trName := range []string{"dlabel", "split", "pushup", "unfold"} {
				tr, _ := translate.ByName(trName)
				plan, err := tr(ctx, parsed)
				if err != nil {
					t.Fatalf("%s/%s: %v", query, trName, err)
				}
				rres, err := relengine.Execute(nil, st, planner.Fixed(plan), relengine.Options{})
				if err != nil {
					t.Fatalf("%s/%s relational: %v", query, trName, err)
				}
				if !enginetest.StartsEqual(rres.Starts(), want) {
					t.Errorf("%s [%s, relational]: %d results, want %d", query, trName, len(rres.Starts()), len(want))
				}
				tres, err := twig.Execute(nil, st, planner.Fixed(plan), core.ExecConfig{Parallelism: 1})
				if err != nil {
					t.Fatalf("%s/%s twig: %v", query, trName, err)
				}
				if !enginetest.StartsEqual(tres.Starts(), want) {
					t.Errorf("%s [%s, twig]: %d results, want %d", query, trName, len(tres.Starts()), len(want))
				}
				// The partitioned parallel sweep must be byte-identical to
				// the sequential sweep (and hence to the relational engine
				// and the reference) on the whole paper corpus.
				pres, err := twig.Execute(nil, st, planner.Fixed(plan), core.ExecConfig{Parallelism: 4})
				if err != nil {
					t.Fatalf("%s/%s twig P=4: %v", query, trName, err)
				}
				if !enginetest.StartsEqual(pres.Starts(), tres.Starts()) {
					t.Errorf("%s [%s, twig P=4]: %d results, sequential sweep %d",
						query, trName, len(pres.Starts()), len(tres.Starts()))
				}
				// Greedy selectivity ordering must not change a single
				// result: re-plan with probes and repeat every mode.
				phys, err := planner.Plan(relstore.NewExecContext(), st, plan, planner.Options{})
				if err != nil {
					t.Fatalf("%s/%s plan: %v", query, trName, err)
				}
				for _, par := range []int{1, 4} {
					gr, err := relengine.Execute(nil, st, phys, relengine.Options{ExecConfig: core.ExecConfig{Parallelism: par}})
					if err != nil {
						t.Fatalf("%s/%s relational greedy P=%d: %v", query, trName, par, err)
					}
					if !enginetest.StartsEqual(gr.Starts(), want) {
						t.Errorf("%s [%s, relational greedy P=%d]: %d results, want %d",
							query, trName, par, len(gr.Starts()), len(want))
					}
					gt, err := twig.Execute(nil, st, phys, core.ExecConfig{Parallelism: par})
					if err != nil {
						t.Fatalf("%s/%s twig greedy P=%d: %v", query, trName, par, err)
					}
					if !enginetest.StartsEqual(gt.Starts(), want) {
						t.Errorf("%s [%s, twig greedy P=%d]: %d results, want %d",
							query, trName, par, len(gt.Starts()), len(want))
					}
				}
			}
		}
		st.Close()
	}
}

// TestScalingIsLinearInResults sanity-checks the Fig. 16 premise: for the
// suffix path query QA1, the split translator's visited elements grow
// with the factor while remaining equal to the result count (selection
// only, no join inputs).
func TestScalingIsLinearInResults(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two auction stores")
	}
	visited := map[int]uint64{}
	results := map[int]int{}
	for _, factor := range []int{1, 2} {
		tree, err := datagen.ByName("auction", datagen.Options{Seed: 1, Factor: factor})
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.BuildFromTree(tree, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := translate.ByName("split")
		plan, err := tr(translate.Context{Scheme: st.Scheme(), Schema: st.Schema()},
			xpath.MustParse(bench.Fig10Queries["QA1"]))
		if err != nil {
			t.Fatal(err)
		}
		ctx := relstore.NewExecContext()
		res, err := relengine.Execute(ctx, st, planner.Fixed(plan), relengine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		visited[factor] = ctx.Visited()
		results[factor] = len(res.Records)
		st.Close()
	}
	for _, f := range []int{1, 2} {
		if visited[f] != uint64(results[f]) {
			t.Errorf("factor %d: visited %d != results %d (suffix path should read only matches)", f, visited[f], results[f])
		}
	}
	if results[2] < results[1]*3/2 {
		t.Errorf("results did not scale: %d -> %d", results[1], results[2])
	}
}
