package blas

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xpath"
)

// skewedQuery is the plan-quality workload: the val fragment holds 3
// records while item and id hold ~4000 each, the decoy value keeps the
// planner from proving the plan empty, and the scan of the tiny
// fragment filters to nothing — so greedy ordering skips both huge
// scans that fixed order pays.
const skewedQuery = `//item[id][val="` + datagen.DecoyVal + `"]`

func buildSkewed(t *testing.T) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := GenerateDataset(&buf, datagen.NameSkewed, DatasetOptions{Seed: 1, Factor: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := BuildFromString(buf.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// TestGreedyReadsFewerPagesOnSkew is the planner's acceptance bar: on
// the skewed corpus, greedy ordering must read strictly fewer pages
// than the translator's fixed order — including the pages its own
// selectivity probes cost.
func TestGreedyReadsFewerPagesOnSkew(t *testing.T) {
	st := buildSkewed(t)
	run := func(noReorder bool) ExecStats {
		if err := st.DropCaches(); err != nil {
			t.Fatal(err)
		}
		res, err := st.Query(skewedQuery, QueryOptions{Translator: TranslatorPushUp, NoReorder: noReorder})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 0 {
			t.Fatalf("matches = %d, want 0", len(res.Matches))
		}
		return res.Stats
	}
	fixed := run(true)
	greedy := run(false)
	if greedy.PageReads >= fixed.PageReads {
		t.Errorf("greedy read %d pages, fixed %d — want strictly fewer", greedy.PageReads, fixed.PageReads)
	}
	if !greedy.EarlyTerminated {
		t.Error("greedy run did not report early termination")
	}
	if m := st.Metrics(); m.EarlyTerminations == 0 {
		t.Error("StoreMetrics.EarlyTerminations = 0 after an early-terminated query")
	}
}

// TestProbeProvenEmptyReadsNothing checks the short-circuit contract:
// once a planner probe proves a plan empty, execution on either engine
// performs zero page reads.
func TestProbeProvenEmptyReadsNothing(t *testing.T) {
	st := buildSkewed(t)
	res, err := st.Query(`//hot/item[val]`, QueryOptions{Translator: TranslatorPushUp})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || !res.Stats.EarlyTerminated {
		t.Fatalf("matches=%d early=%v, want empty early-terminated result", len(res.Matches), res.Stats.EarlyTerminated)
	}

	// Engine-level: plan with one context, execute with a fresh one, so
	// the execution side's page reads are observable in isolation.
	inner := st.inner
	tr, err := translate.ByName("pushup")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := tr(translate.Context{Scheme: inner.Scheme(), Schema: inner.Schema()}, xpath.MustParse(`//hot/item[val]`))
	if err != nil {
		t.Fatal(err)
	}
	phys, err := planner.Plan(relstore.NewExecContext(), inner, lp, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !phys.ProbedEmpty() {
		t.Fatalf("plan not probe-proven empty: %s", phys)
	}
	rctx := relstore.NewExecContext()
	rres, err := relengine.Execute(rctx, inner, phys, relengine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Records) != 0 || !rres.EarlyTerminated || rctx.PageReads() != 0 {
		t.Errorf("relational: records=%d early=%v reads=%d, want 0/true/0",
			len(rres.Records), rres.EarlyTerminated, rctx.PageReads())
	}
	tctx := relstore.NewExecContext()
	tres, err := twig.Execute(tctx, inner, phys, core.ExecConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tres.Records) != 0 || !tres.EarlyTerminated || tctx.PageReads() != 0 {
		t.Errorf("twig: records=%d early=%v reads=%d, want 0/true/0",
			len(tres.Records), tres.EarlyTerminated, tctx.PageReads())
	}
}

// TestOrderSpanMicrosecondRange bounds planning overhead: with a warm
// cache the selectivity probes are a handful of buffer pool hits, so
// the best-of-N order phase span must sit well under a millisecond.
func TestOrderSpanMicrosecondRange(t *testing.T) {
	st := buildSkewed(t)
	best := time.Duration(1 << 62)
	for i := 0; i < 10; i++ {
		res, err := st.Query(skewedQuery, QueryOptions{Translator: TranslatorPushUp, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Phases == nil {
			t.Fatal("trace produced no phase breakdown")
		}
		if d := res.Stats.Phases.Order; d > 0 && d < best {
			best = d
		}
	}
	if best >= time.Millisecond {
		t.Errorf("best order span = %v, want microsecond-range (< 1ms)", best)
	}
}

// TestExplainShowsOrder: Explain must render the chosen order with
// per-fragment estimates, and honor NoReorder.
func TestExplainShowsOrder(t *testing.T) {
	st := buildSkewed(t)
	ex, err := st.Explain(skewedQuery, QueryOptions{Translator: TranslatorPushUp})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Reordered {
		t.Error("Reordered = false, want greedy ordering")
	}
	for _, want := range []string{"order[greedy]", "scan F2 (est ", "join F0 contains F2"} {
		if !strings.Contains(ex.OrderText, want) {
			t.Errorf("OrderText = %q, missing %q", ex.OrderText, want)
		}
	}
	fx, err := st.Explain(skewedQuery, QueryOptions{Translator: TranslatorPushUp, NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if fx.Reordered || !strings.Contains(fx.OrderText, "order[fixed]") {
		t.Errorf("NoReorder explain: Reordered=%v OrderText=%q", fx.Reordered, fx.OrderText)
	}
}

// TestPreparedQueryCarriesPhysicalPlan: Prepare bakes the ordering in
// (the blasd plan cache therefore caches ordered physical plans), and
// repeated executions agree with direct queries.
func TestPreparedQueryCarriesPhysicalPlan(t *testing.T) {
	st := buildSkewed(t)
	pq, err := st.Prepare(skewedQuery, QueryOptions{Translator: TranslatorPushUp})
	if err != nil {
		t.Fatal(err)
	}
	if !pq.phys.Reordered {
		t.Error("prepared plan was not greedily ordered")
	}
	for _, eng := range []Engine{EngineRelational, EngineTwig} {
		res, err := pq.Query(QueryOptions{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 0 || res.Stats.PlanElapsed != 0 {
			t.Errorf("%s: matches=%d planElapsed=%v", eng, len(res.Matches), res.Stats.PlanElapsed)
		}
	}
	fq, err := st.Prepare(skewedQuery, QueryOptions{Translator: TranslatorPushUp, NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if fq.phys.Reordered {
		t.Error("NoReorder prepared plan was reordered")
	}
}
