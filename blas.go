// Package blas is a bi-labeling based XPath processing system, a faithful
// reimplementation of Chen, Davidson & Zheng, "BLAS: An Efficient XPath
// Processing System" (SIGMOD 2004).
//
// BLAS shreds an XML document into relations in which every element and
// attribute node carries two labels:
//
//   - a D-label <start, end, level> — interval containment decides
//     ancestor/descendant relationships, level differences decide
//     parent/child (§3.1);
//   - a P-label — an integer encoding of the node's root-to-node path,
//     chosen so that an entire chain of child steps (a suffix path query)
//     evaluates as a single B+-tree range or equality selection (§3.2).
//
// Complex queries are decomposed into suffix path pieces by one of three
// translators (Split, Push-up, Unfold), evaluated as indexed selections,
// and recombined with structural D-joins — either on the built-in
// relational engine or on a holistic twig join engine (§4, §5).
//
// # Concurrency
//
// A *Store is safe for concurrent use once built or opened: any number
// of goroutines may call Query, Explain, Stats and the other read
// methods simultaneously. Each Query gets its own execution context, so
// the ExecStats in one result never include another query's work. Both
// engines additionally parallelize a single query internally under a
// bounded worker pool sized by QueryOptions.Parallelism (default
// GOMAXPROCS; 1 forces fully sequential execution):
//
//   - the relational engine fans fragment selections out concurrently
//     and partitions its structural merge joins by ancestor interval;
//   - the twig engine reads every label stream through a batched,
//     prefetching stream layer (async per-stream prefetchers keep
//     batches in flight so backing-store misses overlap the sweep) and
//     partitions the holistic sweep itself by document-order intervals
//     derived from the root stream, cut only on top-level root-element
//     boundaries so no stack chain straddles a cut.
//
// Results are byte-identical at every Parallelism setting, and so is
// ExecStats.VisitedElements — each stream record is fetched by exactly
// one partition. PageReads/PageMisses remain self-consistent under
// parallelism (atomic, per-query) but can vary slightly with the
// partition count, since every partition descends the indexes for its
// own sub-range. The storage layer scales with query parallelism: each
// relation file's buffer pool is sharded (Options.PoolShards) and page
// views pin frames instead of holding a pool-wide lock, so concurrent
// scans overlap their page decoding and backing-store misses.
//
// Close tracks in-flight queries with a refcount: it blocks until every
// active Query has returned, and any Query or DropCaches call issued
// after Close has begun fails with ErrClosed. DropCaches may run
// concurrently with queries — it is memory-safe, though it inflates the
// miss counts those queries observe.
//
// # Quick start
//
//	store, err := blas.BuildFromFile("catalog.xml", blas.Options{Dir: "catalog.blas"})
//	...
//	res, err := store.Query(`/catalog/book[author="Knuth"]/title`, blas.QueryOptions{})
//	for _, m := range res.Matches {
//	    fmt.Println(m.Path, m.Value)
//	}
package blas

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/sqlgen"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Options configures store construction and opening.
type Options struct {
	// Dir is the store directory; empty builds an in-memory store.
	Dir string
	// PoolPages sets the buffer pool capacity per relation file in 8 KiB
	// pages (0 = default, 512 pages = 4 MiB).
	PoolPages int
	// PoolShards sets the number of lock-striped buffer pool shards per
	// relation file (0 = default: the next power of two >= GOMAXPROCS,
	// capped at PoolPages). More shards reduce lock contention between
	// concurrent scans; the default is right for almost everyone.
	PoolShards int
}

// ErrClosed is returned by Query, Explain and DropCaches once Close has
// been called on the Store.
var ErrClosed = errors.New("blas: store is closed")

// Store is an open BLAS store over one shredded document. After
// BuildFromFile/BuildFromString/Open return, the Store is safe for
// concurrent Query and Explain calls (see the package documentation's
// Concurrency section).
type Store struct {
	inner *core.Store

	// Active-query refcount: Close waits for in-flight queries to drain
	// instead of closing the files out from under them, and operations
	// arriving after Close has begun fail with ErrClosed.
	mu        sync.Mutex
	idle      sync.Cond // signaled when active drops to zero and when closing completes
	active    int
	closed    bool
	closeDone bool
	closeErr  error
}

func newStore(inner *core.Store) *Store {
	s := &Store{inner: inner}
	s.idle.L = &s.mu
	return s
}

// begin registers an in-flight operation, failing once Close has begun.
func (s *Store) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.active++
	return nil
}

// end retires an in-flight operation.
func (s *Store) end() {
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
}

// BuildFromFile shreds the XML document at path into a new store. The
// file is read twice (P-labeling needs the tag universe up front), in
// streaming fashion.
func BuildFromFile(path string, opts Options) (*Store, error) {
	st, err := core.BuildFromFile(path, core.Options{Dir: opts.Dir, PoolPages: opts.PoolPages, PoolShards: opts.PoolShards})
	if err != nil {
		return nil, err
	}
	return newStore(st), nil
}

// BuildFromString shreds an XML document held in memory.
func BuildFromString(doc string, opts Options) (*Store, error) {
	tree, err := xmltree.ParseString(doc)
	if err != nil {
		return nil, err
	}
	st, err := core.BuildFromTree(tree, core.Options{Dir: opts.Dir, PoolPages: opts.PoolPages, PoolShards: opts.PoolShards})
	if err != nil {
		return nil, err
	}
	return newStore(st), nil
}

// Open opens a store previously built with a non-empty Options.Dir.
func Open(opts Options) (*Store, error) {
	st, err := core.Open(core.Options{Dir: opts.Dir, PoolPages: opts.PoolPages, PoolShards: opts.PoolShards})
	if err != nil {
		return nil, err
	}
	return newStore(st), nil
}

// Close flushes and closes the store. It waits for in-flight queries to
// finish first; queries issued after Close has begun fail with
// ErrClosed. Close is idempotent, and concurrent or repeated calls all
// block until the store is actually closed, then return the same result
// — a nil return always means the files are flushed and closed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		for !s.closeDone {
			s.idle.Wait()
		}
		err := s.closeErr
		s.mu.Unlock()
		return err
	}
	s.closed = true
	for s.active > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()

	err := s.inner.Close()

	s.mu.Lock()
	s.closeErr = err
	s.closeDone = true
	s.idle.Broadcast()
	s.mu.Unlock()
	return err
}

// Translator selects the query translation strategy (§4.1).
type Translator string

// Translators. Auto follows the paper's recommendation: Unfold when
// schema information is available, Push-up otherwise.
const (
	TranslatorAuto   Translator = "auto"
	TranslatorDLabel Translator = "dlabel" // pure D-labeling baseline
	TranslatorSplit  Translator = "split"
	TranslatorPushUp Translator = "pushup"
	TranslatorUnfold Translator = "unfold"
)

// Engine selects the query engine (§5).
type Engine string

// Engines.
const (
	EngineRelational Engine = "relational"
	EngineTwig       Engine = "twig"
)

// QueryOptions configures one query execution. The zero value uses the
// Auto translator on the relational engine.
type QueryOptions struct {
	Translator Translator
	Engine     Engine
	// NestedLoopJoin forces the quadratic D-join (ablation; relational
	// engine only).
	NestedLoopJoin bool
	// Parallelism bounds the worker pool one query may use, on either
	// engine: fragment scans and partitioned D-joins on the relational
	// engine, stream prefetchers and the partitioned holistic sweep on
	// the twig engine. 0 selects runtime.GOMAXPROCS(0); 1 runs the query
	// fully sequentially. The result set is identical at every setting.
	Parallelism int
}

// Match is one result node.
type Match struct {
	Start uint32 // position of the node's start tag
	End   uint32 // position of the node's end tag
	Level uint16 // depth (root = 1)
	Tag   string // element tag ("@name" for attributes)
	Value string // text value ("" if none)
	Path  string // the node's source path, e.g. /site/people/person
}

// Result holds a query's matches plus execution statistics.
type Result struct {
	Matches []Match
	Stats   ExecStats
}

// ExecStats describes one execution.
type ExecStats struct {
	Translator Translator
	Engine     Engine
	// Elapsed is the full query latency, measured from Query entry:
	// parse + translate + execution.
	Elapsed time.Duration
	// PlanElapsed is the parse + translate share of Elapsed.
	PlanElapsed     time.Duration
	VisitedElements uint64 // records decoded from the relations
	PageReads       uint64 // buffer pool requests
	PageMisses      uint64 // buffer pool misses (the paper's disk accesses)
	Joins           int    // D-joins in the plan
	Note            string // plan degradation note, if any
}

// Query parses, translates and executes an XPath expression. It is safe
// to call concurrently from any number of goroutines. It returns
// ErrClosed once Close has been called.
func (s *Store) Query(query string, opts QueryOptions) (*Result, error) {
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("blas: QueryOptions.Parallelism must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", opts.Parallelism)
	}
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()

	begin := time.Now()
	plan, err := s.plan(query, opts)
	if err != nil {
		return nil, err
	}
	planElapsed := time.Since(begin)
	ctx := relstore.NewExecContext()

	cfg := core.ExecConfig{Parallelism: opts.Parallelism}
	var recs []Match
	switch engineOf(opts) {
	case EngineTwig:
		res, err := twig.Execute(ctx, s.inner, plan, cfg)
		if err != nil {
			return nil, err
		}
		recs = s.matches(res.Records)
	default:
		jo := relengine.Options{ExecConfig: cfg}
		if opts.NestedLoopJoin {
			jo.Join = relengine.NestedLoopJoin
		}
		res, err := relengine.Execute(ctx, s.inner, plan, jo)
		if err != nil {
			return nil, err
		}
		recs = s.matches(res.Records)
	}
	elapsed := time.Since(begin)
	return &Result{
		Matches: recs,
		Stats: ExecStats{
			Translator:      Translator(plan.Translator),
			Engine:          engineOf(opts),
			Elapsed:         elapsed,
			PlanElapsed:     planElapsed,
			VisitedElements: ctx.Visited(),
			PageReads:       ctx.PageReads(),
			PageMisses:      ctx.PageMisses(),
			Joins:           plan.NumJoins(),
			Note:            plan.Note,
		},
	}, nil
}

func engineOf(opts QueryOptions) Engine {
	if opts.Engine == "" {
		return EngineRelational
	}
	return opts.Engine
}

func (s *Store) plan(query string, opts QueryOptions) (*translate.Plan, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	ctx := translate.Context{Scheme: s.inner.Scheme(), Schema: s.inner.Schema()}
	name := opts.Translator
	if name == "" || name == TranslatorAuto {
		// The paper's §5 recommendation: Unfold with schema information,
		// Push-up without.
		if ctx.Schema != nil {
			name = TranslatorUnfold
		} else {
			name = TranslatorPushUp
		}
	}
	tr, err := translate.ByName(string(name))
	if err != nil {
		return nil, err
	}
	return tr(ctx, q)
}

func (s *Store) matches(recs []relstore.Record) []Match {
	out := make([]Match, len(recs))
	for i, r := range recs {
		m := Match{Start: r.Start, End: r.End, Level: r.Level, Value: r.Data}
		if tag, ok := s.inner.TagName(r.TagID); ok {
			m.Tag = tag
		}
		if path, err := s.inner.Scheme().DecodePath(r.PLabel); err == nil {
			m.Path = "/" + strings.Join(path, "/")
		}
		out[i] = m
	}
	return out
}

// Explanation describes how a query would be executed.
type Explanation struct {
	Translator Translator
	PlanText   string // fragment/join structure
	SQL        string // the generated SQL statement
	Algebra    string // relational algebra (paper Fig. 11 style)
	Joins      int
	EqSels     int // equality selections
	RangeSels  int // range selections
	Note       string
}

// Explain translates a query and renders its plan, SQL and algebra
// without executing it. It returns ErrClosed once Close has been called.
func (s *Store) Explain(query string, opts QueryOptions) (*Explanation, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	plan, err := s.plan(query, opts)
	if err != nil {
		return nil, err
	}
	eq, rng := plan.SelectionKinds()
	return &Explanation{
		Translator: Translator(plan.Translator),
		PlanText:   plan.String(),
		SQL:        sqlgen.SQL(plan),
		Algebra:    sqlgen.Algebra(plan),
		Joins:      plan.NumJoins(),
		EqSels:     eq,
		RangeSels:  rng,
		Note:       plan.Note,
	}, nil
}

// StoreStats describes the shredded document.
type StoreStats struct {
	Nodes    uint64 // element + attribute nodes
	Tags     int    // distinct tags
	MaxDepth int
}

// Stats returns the store's document statistics.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Nodes:    s.inner.NodeCount(),
		Tags:     s.inner.Scheme().NumTags(),
		MaxDepth: s.inner.Schema().MaxDepth(),
	}
}

// DropCaches empties the buffer pools, simulating a cold cache (the
// paper's measurement condition). It may run concurrently with queries
// (see the Concurrency section) and returns ErrClosed once Close has
// been called.
func (s *Store) DropCaches() error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	return s.inner.DropCaches()
}

// DatasetOptions configures GenerateDataset.
type DatasetOptions struct {
	Seed   int64
	Factor int // entity multiplier; 1 reproduces the paper's Fig. 12 scale
}

// Datasets lists the generator names: shakespeare, protein, auction.
func Datasets() []string { return datagen.Names() }

// GenerateDataset writes one of the paper's synthetic data sets as an XML
// document.
func GenerateDataset(w io.Writer, name string, opts DatasetOptions) error {
	root, err := datagen.ByName(strings.ToLower(name), datagen.Options{Seed: opts.Seed, Factor: opts.Factor})
	if err != nil {
		return err
	}
	return xmltree.WriteXML(w, root)
}

// Version identifies the reproduction release.
const Version = "1.0.0"
