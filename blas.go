// Package blas is a bi-labeling based XPath processing system, a faithful
// reimplementation of Chen, Davidson & Zheng, "BLAS: An Efficient XPath
// Processing System" (SIGMOD 2004).
//
// BLAS shreds an XML document into relations in which every element and
// attribute node carries two labels:
//
//   - a D-label <start, end, level> — interval containment decides
//     ancestor/descendant relationships, level differences decide
//     parent/child (§3.1);
//   - a P-label — an integer encoding of the node's root-to-node path,
//     chosen so that an entire chain of child steps (a suffix path query)
//     evaluates as a single B+-tree range or equality selection (§3.2).
//
// Complex queries are decomposed into suffix path pieces by one of three
// translators (Split, Push-up, Unfold), evaluated as indexed selections,
// and recombined with structural D-joins — either on the built-in
// relational engine or on a holistic twig join engine (§4, §5).
//
// Between translation and execution sits a statistics-free physical
// planner (internal/planner): it probes the B+-tree indexes for
// per-fragment run-length estimates in O(log n), orders fragment scans
// and structural joins most-selective-first, and proves plans empty
// before any record is fetched (a zero estimate is definitive). Both
// engines execute the resulting ordered physical plan and terminate
// early on empty intermediates. QueryOptions.NoReorder restores the
// translator's fixed order for A/B comparison.
//
// # Concurrency
//
// A *Store is safe for concurrent use once built or opened: any number
// of goroutines may call Query, Explain, Stats and the other read
// methods simultaneously. Each Query gets its own execution context, so
// the ExecStats in one result never include another query's work. Both
// engines additionally parallelize a single query internally under a
// bounded worker pool sized by QueryOptions.Parallelism (default
// GOMAXPROCS; 1 forces fully sequential execution):
//
//   - the relational engine fans fragment selections out concurrently
//     and partitions its structural merge joins by ancestor interval;
//   - the twig engine reads every label stream through a batched,
//     prefetching stream layer (async per-stream prefetchers keep
//     batches in flight so backing-store misses overlap the sweep) and
//     partitions the holistic sweep itself by document-order intervals
//     derived from the root stream, cut only on top-level root-element
//     boundaries so no stack chain straddles a cut.
//
// Results are byte-identical at every Parallelism setting, and so is
// ExecStats.VisitedElements — each stream record is fetched by exactly
// one partition. PageReads/PageMisses remain self-consistent under
// parallelism (atomic, per-query) but can vary slightly with the
// partition count, since every partition descends the indexes for its
// own sub-range. The storage layer scales with query parallelism: each
// relation file's buffer pool is sharded (Options.PoolShards) and page
// views pin frames instead of holding a pool-wide lock, so concurrent
// scans overlap their page decoding and backing-store misses.
//
// Close tracks in-flight queries with a refcount: it blocks until every
// active Query has returned, and any Query or DropCaches call issued
// after Close has begun fails with ErrClosed. DropCaches may run
// concurrently with queries — it is memory-safe, though it inflates the
// miss counts those queries observe.
//
// # Storage
//
// The two relations live in paged heap files behind bulk-loaded B+-tree
// indexes (internal/relstore). Since format 2, heap pages are columnar
// and delta-compressed: a page's cluster-key-ordered records are cut
// into runs sharing the cluster prefix, and each run stores its starts
// as ascending delta-varints, its ends/levels/value-lengths as packed
// varint columns, and its values out-of-line — so a batched scan decodes
// a whole run with one branch-light loop per column, and start-range
// restrictions are evaluated on the packed starts before any record
// materializes. Build always writes the current format; Open reads both
// the current and the previous format (older stores keep working
// read-only), and a store written by a newer, unknown format is rejected
// with an error naming the fix: rebuild with blasload. Scan results are
// byte-identical across formats. Batch sizes and prefetch depths adapt
// per query (see QueryOptions.BatchSize/PrefetchDepth); the chosen batch
// sizes surface in StoreMetrics.BatchSizes and per-query decode work in
// ExecStats.Phases.
//
// # Observability
//
// The system reports its behaviour at three granularities:
//
//   - Per query: every Result carries ExecStats — latency split into
//     planning and execution (Elapsed = PlanElapsed + ExecElapsed), the
//     paper's visited-elements and disk-access counters, and, when
//     QueryOptions.Trace is set, a PhaseBreakdown of wall time across
//     the pipeline phases (parse, translate, order, scan, join/sweep,
//     finalize) plus the parallel twig sweep's partition sizes and
//     cumulative prefetch-stall time. Tracing is off by default and the
//     off path costs nothing: no allocations, no clock reads.
//   - Per store: Store.Metrics returns a StoreMetrics snapshot of
//     lifetime counters — in-flight and completed queries, error count,
//     bounded latency histograms overall and per engine, per-translator
//     counts, cumulative execution statistics, and per-shard buffer
//     pool traffic for both relation files. StoreMetrics marshals to
//     JSON and implements expvar.Var, so a store can be published with
//     expvar.Publish("blas", expvar.Func(func() any { return st.Metrics() })).
//   - Document shape: Store.Stats describes the shredded document and
//     snapshots each relation file's buffer pool (PoolStats).
//
// # Serving
//
// For sustained traffic the library supports a resident serving tier.
// Store.Prepare parses, translates and physically plans a query once,
// returning a PreparedQuery (holding the ordered physical plan) that may
// be executed any number of times, concurrently, on either engine, with
// ExecStats.PlanElapsed = 0 — the plan-once, execute-many path. NormalizeQuery maps every spelling of an XPath
// expression onto one canonical form (the natural cache key), and
// Store.Generation identifies a store's labeling scheme: a plan's
// P-label ranges are minted by one shredding run, so caches holding
// prepared plans must key them by generation or risk serving stale
// label ranges after a store swap.
//
// Command blasd and package internal/server build the full daemon on
// these primitives: an HTTP front end with a generation-keyed prepared
// plan cache, a bounded result cache with explicit invalidation,
// admission control (429 past a concurrency limit, a global parallelism
// budget, per-request timeouts) and graceful drain, publishing both
// StoreMetrics and its own counters over expvar-compatible endpoints.
//
// # Static guarantees
//
// The contracts above are machine-checked: cmd/blasvet runs the
// analyzer suite in internal/analysis over the whole tree, and CI
// treats any finding as a build break. The invariants and their
// analyzers:
//
//   - pagerpin — the pager pin contract. The []byte passed to a
//     pager.View/ViewCounted/Update callback is valid only until the
//     callback returns; the analyzer flags every way an alias of it can
//     escape (assigned or appended to outer state, stored through a
//     field, sent on a channel, returned, captured by a goroutine or a
//     closure that outlives the call). Copy out, never retain.
//   - hotalloc — zero-alloc hot paths. Functions annotated with a
//     //blas:hotpath directive in their doc comment (the twig join-key
//     and sweep path, batched record decode, the nil-trace fast paths
//     in internal/obs) must not call fmt.Sprintf and friends,
//     concatenate strings in loops, or build map keys from strings;
//     fmt.Errorf stays legal because error paths are about to abort.
//     Zero-alloc benchmark guards prove the property dynamically and
//     TestHotpathAnnotations in twig and obs fails if the annotation
//     set drifts off the benchmarked functions.
//   - lockescape — lock scope. While a sync.Mutex/RWMutex is held, no
//     buffer-pool re-entry (View, Update, Alloc, ...) and no calls
//     through function-typed parameters: pin the frame, unlock, then
//     run the callback.
//   - execctx — counter threading. Measured relstore entry points take
//     a per-query *relstore.ExecContext as their first parameter, and
//     relstore/pbtree/pager declare no package-level counter state.
//   - closecheck — teardown errors. A bare x.Close()/Flush()/Sync()
//     statement silently drops an error that can carry data loss;
//     handle it or write _ = x.Close() so the drop is explicit.
//
// Run the suite with:
//
//	go run ./cmd/blasvet ./...
//
// A deliberate violation is suppressed in place — the reason is
// mandatory, and unused or malformed directives are findings too:
//
//	//blas:ignore <analyzer> <reason>
//
// # Quick start
//
//	store, err := blas.BuildFromFile("catalog.xml", blas.Options{Dir: "catalog.blas"})
//	...
//	res, err := store.Query(`/catalog/book[author="Knuth"]/title`, blas.QueryOptions{})
//	for _, m := range res.Matches {
//	    fmt.Println(m.Path, m.Value)
//	}
package blas

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/planner"
	"repro/internal/relengine"
	"repro/internal/relstore"
	"repro/internal/sqlgen"
	"repro/internal/translate"
	"repro/internal/twig"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Options configures store construction and opening.
type Options struct {
	// Dir is the store directory; empty builds an in-memory store.
	Dir string
	// PoolPages sets the buffer pool capacity per relation file in 8 KiB
	// pages (0 = default, 512 pages = 4 MiB).
	PoolPages int
	// PoolShards sets the number of lock-striped buffer pool shards per
	// relation file (0 = default: the next power of two >= GOMAXPROCS,
	// capped at PoolPages). More shards reduce lock contention between
	// concurrent scans; the default is right for almost everyone.
	PoolShards int
}

// ErrClosed is returned by Query, Explain and DropCaches once Close has
// been called on the Store.
var ErrClosed = errors.New("blas: store is closed")

// Store is an open BLAS store over one shredded document. After
// BuildFromFile/BuildFromString/Open return, the Store is safe for
// concurrent Query and Explain calls (see the package documentation's
// Concurrency section).
type Store struct {
	inner   *core.Store
	metrics *obs.Registry // lifetime query metrics, exposed via Metrics
	gen     uint64        // process-unique store generation, see Generation

	// Active-query refcount: Close waits for in-flight queries to drain
	// instead of closing the files out from under them, and operations
	// arriving after Close has begun fail with ErrClosed.
	mu        sync.Mutex
	idle      sync.Cond // signaled when active drops to zero and when closing completes
	active    int
	closed    bool
	closeDone bool
	closeErr  error
}

// storeGeneration issues process-unique generation numbers; see
// Store.Generation.
var storeGeneration atomic.Uint64

func newStore(inner *core.Store) *Store {
	s := &Store{inner: inner, metrics: obs.NewRegistry(), gen: storeGeneration.Add(1)}
	s.idle.L = &s.mu
	return s
}

// Generation returns the store's process-unique generation number. Every
// Store opened or built in this process gets a distinct generation, so
// anything derived from a store — a PreparedQuery, a cached result — can
// be keyed by generation and is automatically invalidated when the store
// is swapped for a newly opened one, even one over the same directory.
// A prepared plan depends on the store's P-label scheme; executing it
// against a different store silently selects the wrong label ranges,
// which is exactly the staleness generation keying prevents.
func (s *Store) Generation() uint64 { return s.gen }

// begin registers an in-flight operation, failing once Close has begun.
func (s *Store) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.active++
	return nil
}

// end retires an in-flight operation.
func (s *Store) end() {
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
}

// BuildFromFile shreds the XML document at path into a new store. The
// file is read twice (P-labeling needs the tag universe up front), in
// streaming fashion.
func BuildFromFile(path string, opts Options) (*Store, error) {
	st, err := core.BuildFromFile(path, core.Options{Dir: opts.Dir, PoolPages: opts.PoolPages, PoolShards: opts.PoolShards})
	if err != nil {
		return nil, err
	}
	return newStore(st), nil
}

// BuildFromString shreds an XML document held in memory.
func BuildFromString(doc string, opts Options) (*Store, error) {
	tree, err := xmltree.ParseString(doc)
	if err != nil {
		return nil, err
	}
	st, err := core.BuildFromTree(tree, core.Options{Dir: opts.Dir, PoolPages: opts.PoolPages, PoolShards: opts.PoolShards})
	if err != nil {
		return nil, err
	}
	return newStore(st), nil
}

// Open opens a store previously built with a non-empty Options.Dir.
func Open(opts Options) (*Store, error) {
	st, err := core.Open(core.Options{Dir: opts.Dir, PoolPages: opts.PoolPages, PoolShards: opts.PoolShards})
	if err != nil {
		return nil, err
	}
	return newStore(st), nil
}

// Close flushes and closes the store. It waits for in-flight queries to
// finish first; queries issued after Close has begun fail with
// ErrClosed. Close is idempotent, and concurrent or repeated calls all
// block until the store is actually closed, then return the same result
// — a nil return always means the files are flushed and closed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		for !s.closeDone {
			s.idle.Wait()
		}
		err := s.closeErr
		s.mu.Unlock()
		return err
	}
	s.closed = true
	for s.active > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()

	err := s.inner.Close()

	s.mu.Lock()
	s.closeErr = err
	s.closeDone = true
	s.idle.Broadcast()
	s.mu.Unlock()
	return err
}

// Translator selects the query translation strategy (§4.1).
type Translator string

// Translators. Auto follows the paper's recommendation: Unfold when
// schema information is available, Push-up otherwise.
const (
	TranslatorAuto   Translator = "auto"
	TranslatorDLabel Translator = "dlabel" // pure D-labeling baseline
	TranslatorSplit  Translator = "split"
	TranslatorPushUp Translator = "pushup"
	TranslatorUnfold Translator = "unfold"
)

// Engine selects the query engine (§5).
type Engine string

// Engines.
const (
	EngineRelational Engine = "relational"
	EngineTwig       Engine = "twig"
)

// QueryOptions configures one query execution. The zero value uses the
// Auto translator on the relational engine.
type QueryOptions struct {
	Translator Translator
	Engine     Engine
	// NestedLoopJoin forces the quadratic D-join (ablation; relational
	// engine only).
	NestedLoopJoin bool
	// Parallelism bounds the worker pool one query may use, on either
	// engine: fragment scans and partitioned D-joins on the relational
	// engine, stream prefetchers and the partitioned holistic sweep on
	// the twig engine. 0 selects runtime.GOMAXPROCS(0); 1 runs the query
	// fully sequentially. The result set is identical at every setting.
	Parallelism int
	// BatchSize pins the record-batch size of the query's streams. 0
	// (the default) lets a per-query controller adapt it between 64 and
	// 4096 records from observed pager miss latency and consumer drain
	// rate; a positive value fixes it (clamped to the same bounds).
	// Never changes results — only buffer sizes.
	BatchSize int
	// PrefetchDepth pins how many batches each stream prefetcher keeps
	// in flight. 0 (the default) adapts it from observed consumer
	// stalls; a positive value fixes it (clamped to [1, 8]).
	PrefetchDepth int
	// Trace records a per-phase wall-time breakdown of the execution,
	// returned in ExecStats.Phases. Off by default; the untraced path
	// performs no extra allocations or clock reads.
	Trace bool
	// NoReorder skips the physical planner's selectivity probes and
	// executes the translator's fixed fragment and join order — the A/B
	// escape hatch for debugging plan-order differences. Off by default
	// (greedy most-selective-first ordering).
	NoReorder bool
}

// validate rejects malformed option values (Query and
// PreparedQuery.Query both call it, so misuse fails identically).
func (o QueryOptions) validate() error {
	if o.Parallelism < 0 {
		return fmt.Errorf("blas: QueryOptions.Parallelism must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", o.Parallelism)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("blas: QueryOptions.BatchSize must be >= 0 (0 = adaptive), got %d", o.BatchSize)
	}
	if o.PrefetchDepth < 0 {
		return fmt.Errorf("blas: QueryOptions.PrefetchDepth must be >= 0 (0 = adaptive), got %d", o.PrefetchDepth)
	}
	return nil
}

// Match is one result node. The JSON field names are the wire format
// blasd's POST /query responses use.
type Match struct {
	Start uint32 `json:"start"`           // position of the node's start tag
	End   uint32 `json:"end"`             // position of the node's end tag
	Level uint16 `json:"level"`           // depth (root = 1)
	Tag   string `json:"tag"`             // element tag ("@name" for attributes)
	Value string `json:"value,omitempty"` // text value ("" if none)
	Path  string `json:"path"`            // the node's source path, e.g. /site/people/person
}

// Result holds a query's matches plus execution statistics.
type Result struct {
	Matches []Match
	Stats   ExecStats
}

// ExecStats describes one execution. It marshals to JSON with
// nanosecond duration fields (the blasquery -stats json format).
type ExecStats struct {
	Translator Translator `json:"translator"`
	Engine     Engine     `json:"engine"`
	// Elapsed is the full query latency: always exactly
	// PlanElapsed + ExecElapsed, each measured once.
	Elapsed time.Duration `json:"elapsed_ns"`
	// PlanElapsed is the parse + translate + physical planning share of
	// Elapsed.
	PlanElapsed time.Duration `json:"plan_elapsed_ns"`
	// ExecElapsed is the execution share of Elapsed: engine run plus
	// match finalization.
	ExecElapsed     time.Duration `json:"exec_elapsed_ns"`
	VisitedElements uint64        `json:"visited_elements"` // records decoded from the relations
	PageReads       uint64        `json:"page_reads"`       // buffer pool requests (incl. planner probes)
	PageMisses      uint64        `json:"page_misses"`      // buffer pool misses (the paper's disk accesses)
	Joins           int           `json:"joins"`            // D-joins in the plan
	Note            string        `json:"note,omitempty"`   // plan degradation note, if any
	// EarlyTerminated reports that execution was cut short because an
	// intermediate (or the planner's selectivity probe) proved the result
	// empty before all scans and joins ran.
	EarlyTerminated bool `json:"early_terminated,omitempty"`
	// Phases is the per-phase wall-time breakdown; nil unless
	// QueryOptions.Trace was set.
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

// PhaseBreakdown splits one traced query's wall time across the
// pipeline phases, as measured on the coordinating goroutine. Parse,
// Translate and Order tile PlanElapsed (Order is the physical planner:
// selectivity probes plus the greedy ordering); Scan, Join, Sweep and
// Finalize tile ExecElapsed (Sweep is twig-only, and on the twig engine
// Scan covers stream preparation while the actual reading happens
// inside Sweep). The gap between Elapsed and the sum of those phases is
// uninstrumented glue and stays small.
//
// PrefetchStall and Decode are different: PrefetchStall is the
// cumulative time sweep goroutines spent blocked waiting on stream
// prefetchers, and Decode the cumulative time the batch layer spent
// decoding heap-page records (with DecodedRecords counting how many),
// both summed across concurrent streams. They overlap Scan/Sweep rather
// than adding to them and can exceed wall-clock time at high
// parallelism.
type PhaseBreakdown struct {
	Parse         time.Duration `json:"parse_ns"`
	Translate     time.Duration `json:"translate_ns"`
	Order         time.Duration `json:"order_ns"`
	Scan          time.Duration `json:"scan_ns"`
	Join          time.Duration `json:"join_ns"`
	Sweep         time.Duration `json:"sweep_ns"`
	Finalize      time.Duration `json:"finalize_ns"`
	Decode        time.Duration `json:"decode_ns"`
	PrefetchStall time.Duration `json:"prefetch_stall_ns"`
	// DecodedRecords is the number of heap records the batch layer
	// decoded during the Decode time (visited elements, counted at the
	// page-decode loops).
	DecodedRecords uint64 `json:"decoded_records"`
	// Partitions holds the parallel twig sweep's per-partition root
	// record counts, in document order; empty for sequential sweeps and
	// for the relational engine.
	Partitions []uint64 `json:"partitions,omitempty"`
}

func phaseBreakdown(s obs.TraceSnapshot) *PhaseBreakdown {
	return &PhaseBreakdown{
		Parse:          s.Span(obs.PhaseParse),
		Translate:      s.Span(obs.PhaseTranslate),
		Order:          s.Span(obs.PhaseOrder),
		Scan:           s.Span(obs.PhaseScan),
		Join:           s.Span(obs.PhaseJoin),
		Sweep:          s.Span(obs.PhaseSweep),
		Finalize:       s.Span(obs.PhaseFinalize),
		Decode:         s.Span(obs.PhaseDecode),
		PrefetchStall:  s.Span(obs.PhasePrefetchStall),
		DecodedRecords: s.DecodedRecords,
		Partitions:     s.Partitions,
	}
}

// Query parses, translates and executes an XPath expression. It is safe
// to call concurrently from any number of goroutines. It returns
// ErrClosed once Close has been called.
func (s *Store) Query(query string, opts QueryOptions) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.metrics.QueryBegin()

	var trace *obs.Trace
	if opts.Trace {
		trace = obs.NewTrace()
	}

	// The execution context is created before planning so the planner's
	// selectivity probe page reads land in this query's ExecStats.
	ctx := relstore.NewExecContext()
	ctx.SetTrace(trace)

	planBegin := time.Now()
	phys, err := s.plan(ctx, query, opts, trace)
	if err != nil {
		s.metrics.QueryFailed()
		return nil, err
	}
	return s.run(ctx, phys, time.Since(planBegin), opts, trace)
}

// run executes a physical plan and assembles the Result. The caller has
// registered the operation (begin) and the query (QueryBegin), and owns
// ctx — planner probe reads already accounted there stay in the stats.
// run balances QueryBegin with QueryDone or QueryFailed.
func (s *Store) run(ctx *relstore.ExecContext, phys *planner.Physical, planElapsed time.Duration, opts QueryOptions, trace *obs.Trace) (*Result, error) {
	cfg := core.ExecConfig{Parallelism: opts.Parallelism, BatchSize: opts.BatchSize, PrefetchDepth: opts.PrefetchDepth}
	// Attach the batch controller here rather than letting the engine do
	// it, so its per-size-class batch counts can be harvested into the
	// store metrics after the run.
	batchCtl := cfg.BatchController()
	ctx.SetBatchControl(batchCtl)
	lp := phys.Logical
	execBegin := time.Now()
	var recs []Match
	var early bool
	switch engineOf(opts) {
	case EngineTwig:
		res, err := twig.Execute(ctx, s.inner, phys, cfg)
		if err != nil {
			s.metrics.QueryFailed()
			return nil, err
		}
		early = res.EarlyTerminated
		recs = s.finalizeMatches(ctx, res.Records)
	default:
		jo := relengine.Options{ExecConfig: cfg}
		if opts.NestedLoopJoin {
			jo.Join = relengine.NestedLoopJoin
		}
		res, err := relengine.Execute(ctx, s.inner, phys, jo)
		if err != nil {
			s.metrics.QueryFailed()
			return nil, err
		}
		early = res.EarlyTerminated
		recs = s.finalizeMatches(ctx, res.Records)
	}
	execElapsed := time.Since(execBegin)

	stats := ExecStats{
		Translator:      Translator(lp.Translator),
		Engine:          engineOf(opts),
		Elapsed:         planElapsed + execElapsed,
		PlanElapsed:     planElapsed,
		ExecElapsed:     execElapsed,
		VisitedElements: ctx.Visited(),
		PageReads:       ctx.PageReads(),
		PageMisses:      ctx.PageMisses(),
		Joins:           lp.NumJoins(),
		Note:            lp.Note,
		EarlyTerminated: early,
	}
	if trace != nil {
		stats.Phases = phaseBreakdown(trace.Snapshot())
	}
	s.metrics.AddBatchSizes(batchCtl.SizeClasses())
	if early {
		s.metrics.EarlyTermination()
	}
	s.metrics.QueryDone(string(stats.Engine), string(stats.Translator), stats.Elapsed,
		stats.VisitedElements, stats.PageReads, stats.PageMisses)
	return &Result{Matches: recs, Stats: stats}, nil
}

func engineOf(opts QueryOptions) Engine {
	if opts.Engine == "" {
		return EngineRelational
	}
	return opts.Engine
}

// plan runs the full planning pipeline: parse, translate (the logical
// plan), then the physical planner's selectivity-ordered pass. Probe
// page reads are accounted to ctx.
func (s *Store) plan(ctx *relstore.ExecContext, query string, opts QueryOptions, trace *obs.Trace) (*planner.Physical, error) {
	parseBegin := trace.Begin()
	q, err := xpath.Parse(query)
	trace.End(obs.PhaseParse, parseBegin)
	if err != nil {
		return nil, err
	}
	tctx := translate.Context{Scheme: s.inner.Scheme(), Schema: s.inner.Schema()}
	name := s.EffectiveTranslator(opts.Translator)
	translateBegin := trace.Begin()
	tr, err := translate.ByName(string(name))
	if err != nil {
		trace.End(obs.PhaseTranslate, translateBegin)
		return nil, err
	}
	lp, err := tr(tctx, q)
	trace.End(obs.PhaseTranslate, translateBegin)
	if err != nil {
		return nil, err
	}
	orderBegin := trace.Begin()
	phys, err := planner.Plan(ctx, s.inner, lp, planner.Options{NoReorder: opts.NoReorder})
	trace.End(obs.PhaseOrder, orderBegin)
	return phys, err
}

// EffectiveTranslator resolves the translator that Query and Prepare
// will actually use: the empty string and TranslatorAuto follow the
// paper's §5 recommendation (Unfold when the store has schema
// information, Push-up otherwise); any other value is returned as given.
// Cache layers key prepared plans by the effective translator so "auto"
// and its resolution share one entry.
func (s *Store) EffectiveTranslator(t Translator) Translator {
	if t == "" || t == TranslatorAuto {
		if s.inner.Schema() != nil {
			return TranslatorUnfold
		}
		return TranslatorPushUp
	}
	return t
}

// NormalizeQuery parses an XPath expression and renders it in the
// canonical form used as a cache key: whitespace and literal quote style
// are erased, structure is preserved. Two queries with equal normal
// forms produce identical plans and results on the same store.
func NormalizeQuery(query string) (string, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// PreparedQuery is a query planned once — parsed, translated and
// physically ordered — executable many times without paying the
// planning cost again (the PlanElapsed share of a Query call). A
// PreparedQuery is immutable and safe for concurrent Query calls from
// any number of goroutines, on either engine; the underlying physical
// plan is never mutated by execution (see packages translate and
// planner).
//
// A PreparedQuery is bound to the Store that prepared it: the plan's
// P-label ranges and the planner's selectivity estimates both come from
// that store, so it must not be executed against any other store. Cache
// layers must key prepared queries by Store.Generation — see Generation
// for the failure mode.
type PreparedQuery struct {
	store *Store
	phys  *planner.Physical
	norm  string
	gen   uint64
}

// Prepare parses, translates and physically plans a query for repeated
// execution. opts.Translator selects the translation strategy (resolved
// as in Query) and opts.NoReorder fixes the translated order — both are
// plan-time choices baked into the PreparedQuery. The other option
// fields are ignored: they are choices made per execution, not per
// plan. The planner's selectivity probe page reads are paid here, once,
// and are not attributed to any later execution's ExecStats. Prepare
// returns ErrClosed once Close has been called.
func (s *Store) Prepare(query string, opts QueryOptions) (*PreparedQuery, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	q, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	tr, err := translate.ByName(string(s.EffectiveTranslator(opts.Translator)))
	if err != nil {
		return nil, err
	}
	lp, err := tr(translate.Context{Scheme: s.inner.Scheme(), Schema: s.inner.Schema()}, q)
	if err != nil {
		return nil, err
	}
	phys, err := planner.Plan(relstore.NewExecContext(), s.inner, lp, planner.Options{NoReorder: opts.NoReorder})
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{store: s, phys: phys, norm: q.String(), gen: s.gen}, nil
}

// Normalized returns the canonical rendering of the prepared query (see
// NormalizeQuery).
func (p *PreparedQuery) Normalized() string { return p.norm }

// Translator returns the effective translator the plan was built with.
func (p *PreparedQuery) Translator() Translator { return Translator(p.phys.Logical.Translator) }

// Generation returns the generation of the Store this query was
// prepared against.
func (p *PreparedQuery) Generation() uint64 { return p.gen }

// Joins returns the number of D-joins in the prepared plan.
func (p *PreparedQuery) Joins() int { return p.phys.Logical.NumJoins() }

// Query executes the prepared plan. opts.Engine, opts.Parallelism and
// opts.Trace apply as in Store.Query; opts.Translator is ignored (the
// plan is fixed at Prepare time). The returned ExecStats has PlanElapsed
// zero — planning was paid once, in Prepare — so Elapsed is pure
// execution time. It returns ErrClosed once the store's Close has been
// called.
func (p *PreparedQuery) Query(opts QueryOptions) (*Result, error) {
	s := p.store
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.metrics.QueryBegin()
	var trace *obs.Trace
	if opts.Trace {
		trace = obs.NewTrace()
	}
	ctx := relstore.NewExecContext()
	ctx.SetTrace(trace)
	return s.run(ctx, p.phys, 0, opts, trace)
}

// finalizeMatches renders records into Matches under a PhaseFinalize
// span when the context carries a trace.
func (s *Store) finalizeMatches(ctx *relstore.ExecContext, recs []relstore.Record) []Match {
	tr := ctx.Trace()
	begin := tr.Begin()
	out := s.matches(recs)
	tr.End(obs.PhaseFinalize, begin)
	return out
}

func (s *Store) matches(recs []relstore.Record) []Match {
	out := make([]Match, len(recs))
	for i, r := range recs {
		m := Match{Start: r.Start, End: r.End, Level: r.Level, Value: r.Data}
		if tag, ok := s.inner.TagName(r.TagID); ok {
			m.Tag = tag
		}
		if path, err := s.inner.Scheme().DecodePath(r.PLabel); err == nil {
			m.Path = "/" + strings.Join(path, "/")
		}
		out[i] = m
	}
	return out
}

// Explanation describes how a query would be executed.
type Explanation struct {
	Translator Translator
	PlanText   string // fragment/join structure (the logical plan)
	OrderText  string // physical order: scans and joins with estimates
	Reordered  bool   // greedy ordering ran (false under NoReorder)
	SQL        string // the generated SQL statement
	Algebra    string // relational algebra (paper Fig. 11 style)
	Joins      int
	EqSels     int // equality selections
	RangeSels  int // range selections
	Note       string
}

// Explain translates and physically plans a query, rendering its
// logical plan, chosen execution order (with the planner's per-fragment
// run-length estimates), SQL and algebra without executing it. It
// returns ErrClosed once Close has been called.
func (s *Store) Explain(query string, opts QueryOptions) (*Explanation, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	phys, err := s.plan(relstore.NewExecContext(), query, opts, nil)
	if err != nil {
		return nil, err
	}
	lp := phys.Logical
	eq, rng := lp.SelectionKinds()
	return &Explanation{
		Translator: Translator(lp.Translator),
		PlanText:   lp.String(),
		OrderText:  phys.String(),
		Reordered:  phys.Reordered,
		SQL:        sqlgen.SQL(lp),
		Algebra:    sqlgen.Algebra(lp),
		Joins:      lp.NumJoins(),
		EqSels:     eq,
		RangeSels:  rng,
		Note:       lp.Note,
	}, nil
}

// StoreStats describes the shredded document and the current state of
// its relation files' buffer pools.
type StoreStats struct {
	Nodes    uint64 // element + attribute nodes
	Tags     int    // distinct tags
	MaxDepth int
	SP       PoolStats // buffer pool of the SP (P-label) relation file
	SD       PoolStats // buffer pool of the SD (D-label) relation file
}

// PoolStats is a point-in-time snapshot of one relation file's buffer
// pool, cumulative since open (or the last cache drop's ResetStats).
type PoolStats struct {
	Shards    int    `json:"shards"` // lock-striped pool shards
	Reads     uint64 `json:"reads"`  // page requests
	Hits      uint64 `json:"hits"`   // requests served from the pool
	Misses    uint64 `json:"misses"` // requests that fetched from the backing file
	Evictions uint64 `json:"evictions"`
}

func poolStats(f *pager.File) PoolStats {
	st := f.Stats()
	return PoolStats{
		Shards:    f.NumShards(),
		Reads:     st.Reads,
		Hits:      st.Hits(),
		Misses:    st.Misses,
		Evictions: st.Evictions,
	}
}

// Stats returns the store's document statistics and buffer pool
// snapshots.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Nodes:    s.inner.NodeCount(),
		Tags:     s.inner.Scheme().NumTags(),
		MaxDepth: s.inner.Schema().MaxDepth(),
		SP:       poolStats(s.inner.SP().File()),
		SD:       poolStats(s.inner.SD().File()),
	}
}

// LatencyBucket is one occupied bucket of a latency histogram:
// UpperBound is the bucket's inclusive upper bound (0 = unbounded, the
// overflow bucket) and Count the number of queries that landed in it.
type LatencyBucket struct {
	UpperBound time.Duration `json:"upper_bound_ns"`
	Count      uint64        `json:"count"`
}

// LatencyHistogram summarizes a bounded exponential latency histogram.
// Count always equals the sum of the bucket counts, even when the
// snapshot raced in-flight queries.
type LatencyHistogram struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"` // bucket upper bounds, not exact quantiles
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	// Buckets lists the occupied buckets only, in ascending bound order.
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

func latencyHistogram(h obs.HistogramSnapshot) LatencyHistogram {
	l := LatencyHistogram{
		Count: h.Count,
		Sum:   time.Duration(h.Sum),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i, c := range h.Buckets {
		if c != 0 {
			l.Buckets = append(l.Buckets, LatencyBucket{UpperBound: obs.BucketBound(i), Count: c})
		}
	}
	return l
}

// PoolMetrics is one relation file's buffer pool traffic, including the
// per-shard split that shows whether page requests spread across the
// lock stripes.
type PoolMetrics struct {
	PoolStats
	PerShard []PoolShardStats `json:"per_shard"`
}

// PoolShardStats is one pool shard's share of the traffic.
type PoolShardStats struct {
	Reads     uint64 `json:"reads"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func poolMetrics(f *pager.File) PoolMetrics {
	m := PoolMetrics{PoolStats: poolStats(f)}
	for _, sh := range f.ShardStats() {
		m.PerShard = append(m.PerShard, PoolShardStats{Reads: sh.Reads, Misses: sh.Misses, Evictions: sh.Evictions})
	}
	return m
}

// StoreMetrics is a snapshot of a store's lifetime query metrics. A
// snapshot taken while queries are in flight is internally consistent:
// Queries always equals Latency.Count (both derive from the same bucket
// loads), and successive snapshots never observe a counter moving
// backwards.
//
// StoreMetrics marshals to JSON, and String returns that JSON, so the
// type satisfies expvar.Var; to publish live metrics use
// expvar.Func(func() any { return store.Metrics() }).
type StoreMetrics struct {
	InFlight    int64  `json:"in_flight"`
	Queries     uint64 `json:"queries"`
	QueryErrors uint64 `json:"query_errors"`
	// EarlyTerminations counts queries whose execution was cut short by
	// an empty intermediate or a planner probe that proved the plan empty.
	EarlyTerminations uint64                      `json:"early_terminations"`
	VisitedElements   uint64                      `json:"visited_elements"`
	PageReads         uint64                      `json:"page_reads"`
	PageMisses        uint64                      `json:"page_misses"`
	Latency           LatencyHistogram            `json:"latency"`
	ByEngine          map[string]LatencyHistogram `json:"queries_by_engine"`
	ByTranslator      map[string]uint64           `json:"queries_by_translator"`
	// BatchSizes is the batch-size histogram of every completed query's
	// streams: record-count class label (e.g. "64-127", "8192+") to the
	// number of batches produced in that class. Classes with zero batches
	// are omitted.
	BatchSizes map[string]uint64 `json:"batch_sizes"`
	// Pools maps relation name ("sp", "sd") to its buffer pool traffic.
	Pools map[string]PoolMetrics `json:"pools"`
}

// String renders the snapshot as JSON (the expvar.Var contract).
func (m StoreMetrics) String() string {
	b, err := json.Marshal(m)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Metrics snapshots the store's lifetime query metrics. It is safe to
// call concurrently with queries and remains callable after Close.
func (s *Store) Metrics() StoreMetrics {
	r := s.metrics.Snapshot()
	m := StoreMetrics{
		InFlight:          r.InFlight,
		Queries:           r.Queries,
		QueryErrors:       r.Errors,
		EarlyTerminations: r.EarlyTerms,
		VisitedElements:   r.Visited,
		PageReads:         r.PageReads,
		PageMisses:        r.PageMisses,
		Latency:           latencyHistogram(r.Latency),
		ByEngine:          make(map[string]LatencyHistogram, len(r.ByEngine)),
		ByTranslator:      r.ByTranslator,
		BatchSizes:        make(map[string]uint64),
		Pools: map[string]PoolMetrics{
			"sp": poolMetrics(s.inner.SP().File()),
			"sd": poolMetrics(s.inner.SD().File()),
		},
	}
	for name, h := range r.ByEngine {
		m.ByEngine[name] = latencyHistogram(h)
	}
	for i, c := range r.BatchSizes {
		if c != 0 {
			m.BatchSizes[relstore.BatchSizeClassLabel(i)] = c
		}
	}
	return m
}

// DropCaches empties the buffer pools, simulating a cold cache (the
// paper's measurement condition). It may run concurrently with queries
// (see the Concurrency section) and returns ErrClosed once Close has
// been called.
func (s *Store) DropCaches() error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.end()
	return s.inner.DropCaches()
}

// DatasetOptions configures GenerateDataset.
type DatasetOptions struct {
	Seed   int64
	Factor int // entity multiplier; 1 reproduces the paper's Fig. 12 scale
}

// Datasets lists the generator names: shakespeare, protein, auction.
func Datasets() []string { return datagen.Names() }

// GenerateDataset writes one of the paper's synthetic data sets as an XML
// document.
func GenerateDataset(w io.Writer, name string, opts DatasetOptions) error {
	root, err := datagen.ByName(strings.ToLower(name), datagen.Options{Seed: opts.Seed, Factor: opts.Factor})
	if err != nil {
		return err
	}
	return xmltree.WriteXML(w, root)
}

// Version identifies the reproduction release.
const Version = "1.0.0"
