package blas

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const catalogDoc = `<catalog>
  <book id="b1">
    <author>Knuth</author>
    <title>The Art of Computer Programming</title>
    <price>199</price>
  </book>
  <book id="b2">
    <author>Date</author>
    <title>An Introduction to Database Systems</title>
    <price>89</price>
  </book>
  <book id="b3">
    <author>Knuth</author>
    <title>Concrete Mathematics</title>
    <price>79</price>
  </book>
</catalog>`

func buildCatalog(t *testing.T) *Store {
	t.Helper()
	st, err := BuildFromString(catalogDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestQuickstartFlow(t *testing.T) {
	st := buildCatalog(t)
	res, err := st.Query(`/catalog/book[author="Knuth"]/title`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("got %d matches", len(res.Matches))
	}
	if res.Matches[0].Value != "The Art of Computer Programming" {
		t.Fatalf("first match = %+v", res.Matches[0])
	}
	if res.Matches[0].Tag != "title" {
		t.Fatalf("tag = %s", res.Matches[0].Tag)
	}
	if res.Matches[0].Path != "/catalog/book/title" {
		t.Fatalf("path = %s", res.Matches[0].Path)
	}
	if res.Stats.Translator != TranslatorUnfold { // auto picks Unfold (schema present)
		t.Fatalf("translator = %s", res.Stats.Translator)
	}
}

func TestAllTranslatorEngineCombinations(t *testing.T) {
	st := buildCatalog(t)
	queries := []string{
		"/catalog/book/title",
		"//title",
		`//book[price="79"]/author`,
		"//book/@id",
		"/catalog/*/author",
	}
	for _, q := range queries {
		var want []string
		for _, tr := range []Translator{TranslatorDLabel, TranslatorSplit, TranslatorPushUp, TranslatorUnfold} {
			for _, eng := range []Engine{EngineRelational, EngineTwig} {
				res, err := st.Query(q, QueryOptions{Translator: tr, Engine: eng})
				if err != nil {
					t.Fatalf("%s/%s %s: %v", tr, eng, q, err)
				}
				var got []string
				for _, m := range res.Matches {
					got = append(got, m.Value)
				}
				if want == nil {
					want = got
					continue
				}
				if strings.Join(got, "|") != strings.Join(want, "|") {
					t.Fatalf("%s/%s %s: got %v want %v", tr, eng, q, got, want)
				}
			}
		}
	}
}

func TestExplain(t *testing.T) {
	st := buildCatalog(t)
	ex, err := st.Explain(`/catalog/book[author="Knuth"]/title`, QueryOptions{Translator: TranslatorSplit})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.SQL, "SELECT DISTINCT") {
		t.Fatalf("SQL missing: %s", ex.SQL)
	}
	if !strings.Contains(ex.Algebra, "π_") {
		t.Fatalf("Algebra missing: %s", ex.Algebra)
	}
	if ex.Joins != 2 {
		t.Fatalf("joins = %d", ex.Joins)
	}
	if ex.EqSels+ex.RangeSels != 3 {
		t.Fatalf("selections = %d + %d", ex.EqSels, ex.RangeSels)
	}
}

func TestStats(t *testing.T) {
	st := buildCatalog(t)
	stats := st.Stats()
	// catalog + 3×(book,@id,author,title,price) = 16 nodes
	if stats.Nodes != 16 {
		t.Fatalf("nodes = %d", stats.Nodes)
	}
	if stats.Tags != 6 {
		t.Fatalf("tags = %d", stats.Tags)
	}
	if stats.MaxDepth != 3 {
		t.Fatalf("depth = %d", stats.MaxDepth)
	}
}

func TestPersistentStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat.blas")
	st, err := BuildFromString(catalogDoc, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res, err := st2.Query("//author", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches after reopen = %d", len(res.Matches))
	}
}

func TestQueryErrors(t *testing.T) {
	st := buildCatalog(t)
	if _, err := st.Query("not an xpath", QueryOptions{}); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := st.Query("//x", QueryOptions{Translator: "bogus"}); err == nil {
		t.Fatal("bad translator accepted")
	}
}

func TestExecStatsPopulated(t *testing.T) {
	st := buildCatalog(t)
	if err := st.DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("//title", QueryOptions{Translator: TranslatorSplit})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VisitedElements == 0 {
		t.Fatal("visited elements not counted")
	}
	if res.Stats.PageMisses == 0 {
		t.Fatal("cold cache should miss")
	}
	// Elapsed is the full Query latency (from entry, including parse and
	// translate); PlanElapsed is the planning share of it.
	if res.Stats.PlanElapsed <= 0 {
		t.Fatalf("PlanElapsed = %v, want > 0 (clock must start at Query entry)", res.Stats.PlanElapsed)
	}
	if res.Stats.Elapsed < res.Stats.PlanElapsed {
		t.Fatalf("Elapsed %v < PlanElapsed %v", res.Stats.Elapsed, res.Stats.PlanElapsed)
	}
}

func TestNegativeParallelismRejected(t *testing.T) {
	st := buildCatalog(t)
	for _, p := range []int{-1, -7} {
		if _, err := st.Query("//title", QueryOptions{Parallelism: p}); err == nil {
			t.Fatalf("Parallelism = %d accepted, want error", p)
		}
	}
	// The documented settings still work.
	for _, p := range []int{0, 1, 2} {
		if _, err := st.Query("//title", QueryOptions{Parallelism: p}); err != nil {
			t.Fatalf("Parallelism = %d: %v", p, err)
		}
	}
}

func TestNestedLoopOption(t *testing.T) {
	st := buildCatalog(t)
	a, err := st.Query("//book[author]/title", QueryOptions{Translator: TranslatorSplit})
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Query("//book[author]/title", QueryOptions{Translator: TranslatorSplit, NestedLoopJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatal("join algorithms disagree")
	}
}

func TestGenerateDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := GenerateDataset(&buf, "shakespeare", DatasetOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100000 {
		t.Fatalf("dataset too small: %d bytes", buf.Len())
	}
	// Generated data must shred cleanly.
	st, err := BuildFromString(buf.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := st.Query("/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("QS1 returned nothing")
	}
	if err := GenerateDataset(&buf, "nope", DatasetOptions{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildFromString("<broken", Options{}); err == nil {
		t.Fatal("malformed doc accepted")
	}
	if _, err := BuildFromFile("/does/not/exist.xml", Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without dir accepted")
	}
}
