// Command blasquery runs XPath queries against a BLAS store (or directly
// against an XML file, shredding it in memory first).
//
// Usage:
//
//	blasquery -store auction.blas -q '/site/regions//item' -translator pushup
//	blasquery -xml doc.xml -q '//title' -engine twig
//	blasquery -store s.blas -q '//item[shipping]' -explain
//	blasquery -xml doc.xml -q '//title' -trace -stats json   # machine-readable ExecStats
//
// -stats selects how execution statistics print: "text" (one summary
// line, the default), "json" (the full ExecStats as one JSON object on
// stdout — including the phase breakdown when -trace is set) or "none".
// -trace records per-phase wall times (parse, translate, order, scan,
// join/sweep, finalize, prefetch stalls, sweep partitions) into the
// stats.
//
// -explain also prints the physical order the planner chose: fragment
// scans and structural joins with their per-fragment run-length
// estimates probed from the B+-tree indexes. -no-reorder forces the
// translator's fixed order instead (both for -explain and execution) —
// the A/B escape hatch for plan-order debugging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	blas "repro"
)

func main() {
	store := flag.String("store", "", "store directory (from blasload)")
	xmlFile := flag.String("xml", "", "XML file to shred in memory instead of -store")
	query := flag.String("q", "", "XPath query")
	translator := flag.String("translator", "auto", "auto, dlabel, split, pushup or unfold")
	engine := flag.String("engine", "relational", "relational or twig")
	explain := flag.Bool("explain", false, "print the plan, SQL and algebra instead of executing")
	limit := flag.Int("limit", 20, "maximum matches to print (0 = all)")
	stats := flag.String("stats", "text", "execution statistics format: text, json or none")
	trace := flag.Bool("trace", false, "record a per-phase wall-time breakdown into the stats")
	parallelism := flag.Int("parallelism", 0, "worker pool per query, both engines: 0 = GOMAXPROCS, 1 = sequential")
	batchSize := flag.Int("batch-size", 0, "stream batch size in records: 0 = adaptive, positive pins it (clamped to [64, 4096])")
	prefetchDepth := flag.Int("prefetch-depth", 0, "batches each stream prefetcher keeps in flight: 0 = adaptive, positive pins it (clamped to [1, 8])")
	noReorder := flag.Bool("no-reorder", false, "skip greedy selectivity ordering; run the translator's fixed order")
	flag.Parse()

	if *query == "" || (*store == "") == (*xmlFile == "") {
		fmt.Fprintln(os.Stderr, "usage: blasquery (-store DIR | -xml FILE) -q QUERY")
		os.Exit(2)
	}
	if *parallelism < 0 {
		fmt.Fprintf(os.Stderr, "blasquery: -parallelism must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d\n", *parallelism)
		os.Exit(2)
	}
	if *batchSize < 0 {
		fmt.Fprintf(os.Stderr, "blasquery: -batch-size must be >= 0 (0 = adaptive), got %d\n", *batchSize)
		os.Exit(2)
	}
	if *prefetchDepth < 0 {
		fmt.Fprintf(os.Stderr, "blasquery: -prefetch-depth must be >= 0 (0 = adaptive), got %d\n", *prefetchDepth)
		os.Exit(2)
	}
	switch *stats {
	case "text", "json", "none":
	default:
		fmt.Fprintf(os.Stderr, "blasquery: -stats must be text, json or none, got %q\n", *stats)
		os.Exit(2)
	}

	var st *blas.Store
	var err error
	if *store != "" {
		st, err = blas.Open(blas.Options{Dir: *store})
	} else {
		st, err = blas.BuildFromFile(*xmlFile, blas.Options{})
	}
	if err != nil {
		fail(err)
	}
	defer st.Close()

	opts := blas.QueryOptions{
		Translator:    blas.Translator(*translator),
		Engine:        blas.Engine(*engine),
		Parallelism:   *parallelism,
		BatchSize:     *batchSize,
		PrefetchDepth: *prefetchDepth,
		Trace:         *trace,
		NoReorder:     *noReorder,
	}
	if *explain {
		ex, err := st.Explain(*query, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("translator: %s   D-joins: %d   selections: %d equality, %d range\n",
			ex.Translator, ex.Joins, ex.EqSels, ex.RangeSels)
		if ex.Note != "" {
			fmt.Println("note:", ex.Note)
		}
		fmt.Println("\n-- plan --")
		fmt.Println(ex.PlanText)
		fmt.Println("-- order --")
		fmt.Print(ex.OrderText)
		fmt.Println("\n-- SQL --")
		fmt.Println(ex.SQL)
		fmt.Println("\n-- algebra --")
		fmt.Println(ex.Algebra)
		return
	}

	res, err := st.Query(*query, opts)
	if err != nil {
		fail(err)
	}
	n := len(res.Matches)
	show := n
	if *limit > 0 && show > *limit {
		show = *limit
	}
	for _, m := range res.Matches[:show] {
		if m.Value != "" {
			fmt.Printf("%s\t%q\n", m.Path, m.Value)
		} else {
			fmt.Printf("%s\t<%s> [%d,%d]\n", m.Path, m.Tag, m.Start, m.End)
		}
	}
	if show < n {
		fmt.Printf("... and %d more\n", n-show)
	}
	switch *stats {
	case "json":
		out, err := json.MarshalIndent(res.Stats, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s\n", out)
	case "text":
		fmt.Printf("\n%d matches in %s (%s/%s): %d elements visited, %d page misses, %d joins\n",
			n, res.Stats.Elapsed, res.Stats.Translator, res.Stats.Engine,
			res.Stats.VisitedElements, res.Stats.PageMisses, res.Stats.Joins)
		if res.Stats.EarlyTerminated {
			fmt.Println("early terminated: an empty intermediate (or planner probe) proved the result empty")
		}
		if p := res.Stats.Phases; p != nil {
			fmt.Printf("phases: parse %s, translate %s, order %s, scan %s, join %s, sweep %s, finalize %s, decode %s (%d records), prefetch stall %s\n",
				p.Parse, p.Translate, p.Order, p.Scan, p.Join, p.Sweep, p.Finalize, p.Decode, p.DecodedRecords, p.PrefetchStall)
			if len(p.Partitions) > 0 {
				fmt.Printf("sweep partitions (root records): %v\n", p.Partitions)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blasquery:", err)
	os.Exit(1)
}
