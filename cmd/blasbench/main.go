// Command blasbench reproduces the paper's evaluation section (§5): each
// -fig value regenerates the workload behind one figure of the paper and
// prints the corresponding table.
//
// Usage:
//
//	blasbench -fig 13            # relational engine comparison
//	blasbench -fig 16 -factors 1,2,3,4,5
//	blasbench -all               # everything (as used for EXPERIMENTS.md)
//	blasbench -fig overlap -engine both   # P=1 vs P=GOMAXPROCS, both engines
//	blasbench -fig plan                   # fixed vs greedy physical plan order
//	blasbench -fig serve                  # serving tier: cold vs warm plan cache over HTTP
//	blasbench -fig decode                 # columnar vs legacy heap-page decode
//
// With -json DIR every figure additionally writes its measurements as
// DIR/BENCH_<fig>.json (schema blas-bench-trajectory/v1: figure, git
// revision, GOMAXPROCS, and per-measurement engine/translator/
// parallelism/ns_per_op/visited/page_misses). -validate GLOB checks
// previously written files and exits nonzero on any malformed one —
// CI's gate before archiving the trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 11, 12, 13, 14, 15, 16, 17, 18, overlap, plan, serve or decode")
	all := flag.Bool("all", false, "run every figure")
	factor := flag.Int("factor", 1, "data scale factor for figures 13-15 and overlap")
	factorsStr := flag.String("factors", "1,2,3,4,5", "scale factors for figures 16-18")
	repeats := flag.Int("repeats", 3, "cold-cache repetitions per measurement")
	seed := flag.Int64("seed", 1, "data generator seed")
	parallelism := flag.Int("parallelism", 0, "per-query worker pool, both engines: 0 = GOMAXPROCS, 1 = sequential (the paper's setting)")
	engine := flag.String("engine", "both", "engine(s) for -fig overlap: relational, twig or both")
	jsonDir := flag.String("json", "", "directory to write BENCH_<fig>.json trajectories into (empty = no JSON)")
	validate := flag.String("validate", "", "validate BENCH_*.json files matching this glob and exit")
	flag.Parse()

	if *validate != "" {
		validateTrajectories(*validate)
		return
	}
	if *parallelism < 0 {
		fmt.Fprintf(os.Stderr, "blasbench: -parallelism must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d\n", *parallelism)
		os.Exit(2)
	}
	factors, err := parseFactors(*factorsStr)
	if err != nil {
		fail(err)
	}
	h := bench.New()
	h.Repeats = *repeats
	h.Seed = *seed
	h.Parallelism = *parallelism
	defer h.Close()

	run := func(name string) error {
		h.ResetMeasurements()
		err := func() error {
			switch name {
			case "11":
				return h.Fig11(os.Stdout)
			case "12":
				return h.Fig12(os.Stdout)
			case "13":
				return h.Fig13(os.Stdout, *factor)
			case "14":
				return h.Fig14(os.Stdout, *factor)
			case "15":
				return h.Fig15(os.Stdout, *factor)
			case "16":
				return h.Scalability(os.Stdout, "16", "QA1", factors)
			case "17":
				return h.Scalability(os.Stdout, "17", "QA2", factors)
			case "18":
				return h.Scalability(os.Stdout, "18", "QA3", factors)
			case "overlap":
				// Not a paper figure: P=1 vs P=GOMAXPROCS on both engines.
				return h.Overlap(os.Stdout, *engine, *factor)
			case "plan":
				// Not a paper figure: fixed vs greedy physical plan order.
				return h.PlanFig(os.Stdout)
			case "serve":
				// Not a paper figure: blasd serving tier, cold vs warm.
				return serveFigure(os.Stdout, h, *factor)
			case "decode":
				// Not a paper figure: columnar vs legacy heap-page decode.
				return h.DecodeFig(os.Stdout)
			}
			return fmt.Errorf("unknown figure %q", name)
		}()
		if err != nil || *jsonDir == "" {
			return err
		}
		return writeTrajectory(*jsonDir, name, h.Measurements())
	}

	if *all {
		for _, name := range []string{"11", "12", "13", "14", "15", "16", "17", "18"} {
			if err := run(name); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: blasbench -fig N | -all")
		os.Exit(2)
	}
	if err := run(*fig); err != nil {
		fail(err)
	}
}

func parseFactors(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad factor %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no factors given")
	}
	return out, nil
}

// writeTrajectory persists one figure's measurements as
// dir/BENCH_<fig>.json. Figures that only print plans (Fig. 11) record
// no measurements and are skipped.
func writeTrajectory(dir, figure string, ms []bench.Measurement) error {
	if len(ms) == 0 {
		fmt.Fprintf(os.Stderr, "blasbench: fig %s recorded no measurements, skipping JSON\n", figure)
		return nil
	}
	t := bench.NewTrajectory(figure)
	for _, m := range ms {
		t.Add(m)
	}
	path, err := t.WriteFile(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "blasbench: wrote %s (%d records)\n", path, len(ms))
	return nil
}

// validateTrajectories checks every file matching the glob, printing
// each verdict; any malformed file (or an empty match set) exits 1.
func validateTrajectories(glob string) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		fail(err)
	}
	if len(paths) == 0 {
		fail(fmt.Errorf("-validate %q matched no files", glob))
	}
	ok := true
	for _, path := range paths {
		if err := bench.ValidateTrajectoryFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "blasbench: INVALID:", err)
			ok = false
			continue
		}
		fmt.Printf("blasbench: ok %s\n", path)
	}
	if !ok {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blasbench:", err)
	os.Exit(1)
}
