package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"text/tabwriter"
	"time"

	blas "repro"
	"repro/internal/bench"
	"repro/internal/server"
)

// serveFigure measures the serving tier (not a paper figure): cold
// vs. warm query latency through the full blasd HTTP path — request
// decoding, plan cache, admission control, execution, JSON encoding —
// for every Fig. 10 query on both engines. "cold" purges the caches
// before each request, so every iteration pays parse + translate;
// "warm" repeats the same query against a populated plan cache. The
// delta is the per-request cost the plan cache eliminates. Results are
// recorded through the harness so -json emits BENCH_serve.json on the
// standard trajectory schema.
func serveFigure(w io.Writer, h *bench.Harness, factor int) error {
	repeats := h.Repeats
	if repeats < 1 {
		repeats = 1
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "serve: HTTP query latency, cold vs warm plan cache (factor %d, %d repeats)\n", factor, repeats)
	fmt.Fprintln(tw, "query\tengine\tcold\twarm\tsaved\tresults")

	for _, dataset := range blas.Datasets() {
		queries := queriesFor(dataset)
		if len(queries) == 0 {
			continue
		}
		if err := serveDataset(tw, h, dataset, factor, repeats, queries); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// queriesFor returns the Fig. 10 query names for one data set, in
// presentation order.
func queriesFor(dataset string) []string {
	var names []string
	for _, qn := range bench.QueryOrder(bench.Fig10Queries) {
		if ds, err := bench.DatasetOf(qn); err == nil && ds == dataset {
			names = append(names, qn)
		}
	}
	return names
}

func serveDataset(w io.Writer, h *bench.Harness, dataset string, factor, repeats int, queries []string) error {
	var doc strings.Builder
	if err := blas.GenerateDataset(&doc, dataset, blas.DatasetOptions{Seed: h.Seed, Factor: factor}); err != nil {
		return err
	}
	st, err := blas.BuildFromString(doc.String(), blas.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	srv := server.New(st, server.Config{})
	handler := srv.Handler()

	for _, qn := range queries {
		query := bench.Fig10Queries[qn]
		for _, engine := range []string{"relational", "twig"} {
			cold, coldResp, err := timeServe(handler, query, engine, h.Parallelism, repeats, true)
			if err != nil {
				return fmt.Errorf("serve: %s [%s] cold: %w", qn, engine, err)
			}
			// The final cold iteration left the plan cached; warm runs
			// re-execute against it (the result cache stays bypassed).
			warm, warmResp, err := timeServe(handler, query, engine, h.Parallelism, repeats, false)
			if err != nil {
				return fmt.Errorf("serve: %s [%s] warm: %w", qn, engine, err)
			}
			if !warmResp.PlanCached {
				return fmt.Errorf("serve: %s [%s]: warm run missed the plan cache", qn, engine)
			}
			for _, phase := range []struct {
				name    string
				elapsed time.Duration
				resp    *server.QueryResponse
			}{{"cold", cold, coldResp}, {"warm", warm, warmResp}} {
				h.Record(bench.Measurement{
					Query:       qn + "/" + phase.name,
					Dataset:     dataset,
					Factor:      factor,
					Translator:  string(phase.resp.Stats.Translator),
					Engine:      engine,
					Parallelism: phase.resp.Parallelism,
					Elapsed:     phase.elapsed,
					Visited:     phase.resp.Stats.VisitedElements,
					PageMisses:  phase.resp.Stats.PageMisses,
					Results:     phase.resp.Count,
					Joins:       phase.resp.Stats.Joins,
				})
			}
			fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%v\t%d\n", qn, engine, cold, warm, cold-warm, coldResp.Count)
		}
	}
	return nil
}

// timeServe runs one query `repeats` times through the handler and
// returns the mean wall time and the last response. With purge set, the
// server's caches are dropped before every iteration so each request
// pays the full plan cost.
func timeServe(handler http.Handler, query, engine string, parallelism, repeats int, purge bool) (time.Duration, *server.QueryResponse, error) {
	body, err := json.Marshal(server.QueryRequest{
		Query: query, Engine: engine, Parallelism: parallelism, NoResultCache: true,
	})
	if err != nil {
		return 0, nil, err
	}
	var total time.Duration
	var last *server.QueryResponse
	for i := 0; i < repeats; i++ {
		if purge {
			if err := purgeCaches(handler); err != nil {
				return 0, nil, err
			}
		}
		begin := time.Now()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		handler.ServeHTTP(rec, req)
		total += time.Since(begin)
		if rec.Code != http.StatusOK {
			return 0, nil, fmt.Errorf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			return 0, nil, err
		}
		last = &qr
	}
	return total / time.Duration(repeats), last, nil
}

func purgeCaches(handler http.Handler) error {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodDelete, "/cache?scope=all", nil)
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("DELETE /cache: status %d", rec.Code)
	}
	if _, err := io.Copy(io.Discard, rec.Body); err != nil {
		return err
	}
	return nil
}
