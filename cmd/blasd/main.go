// Command blasd is the resident BLAS query server: a long-lived daemon
// over one shredded store, with plan and result caches, admission
// control and graceful shutdown. It is the serving tier over the blas
// library — where blasquery answers one query and exits, blasd holds
// the store (and its warm buffer pools and caches) open for sustained
// traffic.
//
// # Usage
//
//	blasd -dir catalog.blas                 # serve a store built by blasload
//	blasd -xml catalog.xml                  # shred an XML file in memory and serve it
//	blasd -dataset auction -factor 2        # serve a generated paper data set
//	blasd -addr :8080 -max-inflight 64 -parallel-budget 16 -timeout 30s
//
// Exactly one of -dir, -xml, -dataset selects the store.
//
// # Endpoints
//
//	POST   /query       execute an XPath expression
//	GET    /healthz     200 {"status":"ok","generation":N}; 503 {"status":"draining"} while draining
//	GET    /metrics     expvar-compatible JSON: {"blas": <store metrics>, "blasd": <server metrics>}
//	GET    /debug/vars  same payload as /metrics
//	DELETE /cache       drop cached results (?scope=plans / ?scope=all for the plan cache too)
//
// # POST /query
//
// Request body (only "query" is required):
//
//	{
//	  "query":           "/site/people/person/name",
//	  "engine":          "relational" | "twig",
//	  "translator":      "auto" | "dlabel" | "split" | "pushup" | "unfold",
//	  "parallelism":     4,        // 0 = GOMAXPROCS; the server may grant less
//	  "trace":           false,    // per-phase breakdown in stats.phases (bypasses result cache)
//	  "no_result_cache": false
//	}
//
// Success response:
//
//	{
//	  "query":       "/site/people/person/name",   // normalized form
//	  "count":       255,
//	  "matches":     [{"start":..,"end":..,"level":..,"tag":..,"value":..,"path":..}, ...],
//	  "stats":       { ... blas.ExecStats JSON ... },
//	  "cached":      false,   // served from the result cache
//	  "plan_cached": true,    // no parse/translate work was done
//	  "plan_ns":     0,       // planning time this request paid
//	  "parallelism": 4        // workers actually granted
//	}
//
// Errors are {"error": "..."} with 400 (bad request/query), 413 (body
// too large), 429 + Retry-After (admission limit reached), 503
// (draining or store closed), 504 (query timeout).
//
// # Shutdown
//
// On SIGTERM or SIGINT blasd drains gracefully: new queries are
// rejected with 503, in-flight queries run to completion (bounded by
// -drain-timeout), then the store is flushed and closed.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	blas "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "serve the store directory built by blasload")
	xml := flag.String("xml", "", "shred this XML file in memory and serve it")
	dataset := flag.String("dataset", "", "serve a generated data set: shakespeare, protein or auction")
	factor := flag.Int("factor", 1, "data scale factor for -dataset")
	seed := flag.Int64("seed", 1, "data generator seed for -dataset")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently executing queries, 429 beyond (0 = 4*GOMAXPROCS)")
	budget := flag.Int("parallel-budget", 0, "global worker budget shared by all queries (0 = 2*GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query timeout, 504 beyond (0 = none)")
	planCache := flag.Int("plan-cache", 0, "prepared-plan cache entries (0 = 256, negative disables)")
	resultEntries := flag.Int("result-cache-entries", 0, "result cache entries (0 = 256, negative disables)")
	resultBytes := flag.Int64("result-cache-bytes", 0, "result cache byte budget (0 = 64 MiB)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	flag.Parse()

	store, desc, err := openStore(*dir, *xml, *dataset, *factor, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blasd:", err)
		os.Exit(1)
	}

	srv := server.New(store, server.Config{
		MaxInFlight:        *maxInFlight,
		ParallelismBudget:  *budget,
		QueryTimeout:       *timeout,
		PlanCacheEntries:   *planCache,
		ResultCacheEntries: *resultEntries,
		ResultCacheBytes:   *resultBytes,
	})
	expvar.Publish("blas", expvar.Func(func() any { return srv.Store().Metrics() }))
	expvar.Publish("blasd", expvar.Func(func() any { return srv.Metrics() }))

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "blasd: serving %s on %s (generation %d)\n", desc, *addr, store.Generation())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		if cerr := store.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "blasd: close:", cerr)
		}
		fmt.Fprintln(os.Stderr, "blasd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: reject new queries, let in-flight ones finish,
	// then flush and close the store.
	fmt.Fprintln(os.Stderr, "blasd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.BeginDrain()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "blasd: shutdown:", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "blasd: drain:", err)
	}
	if err := store.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "blasd: close:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "blasd: stopped")
}

// openStore resolves the mutually exclusive store sources.
func openStore(dir, xml, dataset string, factor int, seed int64) (*blas.Store, string, error) {
	sources := 0
	for _, s := range []string{dir, xml, dataset} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", errors.New("exactly one of -dir, -xml, -dataset is required")
	}
	switch {
	case dir != "":
		st, err := blas.Open(blas.Options{Dir: dir})
		return st, "store " + dir, err
	case xml != "":
		st, err := blas.BuildFromFile(xml, blas.Options{})
		return st, "document " + xml, err
	default:
		var doc strings.Builder
		if err := blas.GenerateDataset(&doc, dataset, blas.DatasetOptions{Seed: seed, Factor: factor}); err != nil {
			return nil, "", err
		}
		st, err := blas.BuildFromString(doc.String(), blas.Options{})
		return st, fmt.Sprintf("dataset %s x%d", dataset, factor), err
	}
}
