// Command blasload shreds an XML document into an on-disk BLAS store:
// the index generator of the paper's Fig. 6.
//
// Usage:
//
//	blasload -in auction.xml -out auction.blas
package main

import (
	"flag"
	"fmt"
	"os"

	blas "repro"
)

func main() {
	in := flag.String("in", "", "input XML document")
	out := flag.String("out", "", "output store directory")
	pool := flag.Int("pool", 0, "buffer pool pages per relation (0 = default)")
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: blasload -in doc.xml -out store.blas")
		os.Exit(2)
	}
	st, err := blas.BuildFromFile(*in, blas.Options{Dir: *out, PoolPages: *pool})
	if err != nil {
		fmt.Fprintln(os.Stderr, "blasload:", err)
		os.Exit(1)
	}
	stats := st.Stats()
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "blasload:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %s -> %s: %d nodes, %d tags, depth %d\n",
		*in, *out, stats.Nodes, stats.Tags, stats.MaxDepth)
}
