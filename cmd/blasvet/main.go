// Command blasvet runs the BLAS analyzer suite (internal/analysis) over
// the tree: the machine-checked half of the engine's concurrency and
// hot-path contracts. CI runs it as a hard gate; run it locally with
//
//	go run ./cmd/blasvet ./...
//
// Each finding prints as file:line:col: [analyzer] message and the exit
// status is 1 when anything is found. Suppress a deliberate violation
// with //blas:ignore <analyzer> <reason> on or above the flagged line;
// see the package doc of internal/analysis for the analyzer list.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: blasvet [-list] [package dir | ./...] ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := load(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blasvet:", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "blasvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "blasvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// load resolves the argument patterns to parsed packages. A trailing
// /... loads the whole subtree; a plain path loads one directory.
func load(args []string) ([]*analysis.Package, error) {
	var pkgs []*analysis.Package
	fset := token.NewFileSet()
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "/..."); ok {
			if root == "." || root == "" {
				root = "."
			}
			tree, err := analysis.LoadTree(root)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, tree...)
			continue
		}
		pkg, err := analysis.LoadDir(fset, arg, filepath.Clean(arg))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("%s: no Go files", arg)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
