// Command blasgen generates the synthetic data sets of the paper's
// evaluation (Fig. 12): shakespeare, protein, or auction.
//
// Usage:
//
//	blasgen -dataset auction -factor 2 -seed 7 -o auction.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	blas "repro"
)

func main() {
	dataset := flag.String("dataset", "auction", "data set: shakespeare, protein or auction")
	factor := flag.Int("factor", 1, "scale factor (1 = the paper's Fig. 12 scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := blas.GenerateDataset(bw, *dataset, blas.DatasetOptions{Seed: *seed, Factor: *factor}); err != nil {
		fail(err)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blasgen:", err)
	os.Exit(1)
}
