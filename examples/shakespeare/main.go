// Shakespeare: persistent stores and the twig-join engine. Shreds the
// plays corpus to disk once, reopens it, and runs the paper's QS1-QS3
// on both query engines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	blas "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "blas-shakespeare-example")
	defer os.RemoveAll(dir)

	// Build the on-disk store (the index generator of Fig. 6).
	var doc bytes.Buffer
	if err := blas.GenerateDataset(&doc, "shakespeare", blas.DatasetOptions{Seed: 1}); err != nil {
		log.Fatal(err)
	}
	store, err := blas.BuildFromString(doc.String(), blas.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	stats := store.Stats()
	fmt.Printf("stored %d nodes (%d tags, depth %d) in %s\n\n", stats.Nodes, stats.Tags, stats.MaxDepth, dir)
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen and query: labels and indexes are read back from disk.
	store, err = blas.Open(blas.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	queries := map[string]string{
		"QS1": "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE",
		"QS2": "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR",
		"QS3": `/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`,
	}
	for _, name := range []string{"QS1", "QS2", "QS3"} {
		fmt.Printf("%s = %s\n", name, queries[name])
		for _, engine := range []blas.Engine{blas.EngineRelational, blas.EngineTwig} {
			if err := store.DropCaches(); err != nil {
				log.Fatal(err)
			}
			res, err := store.Query(queries[name], blas.QueryOptions{
				Translator: blas.TranslatorPushUp,
				Engine:     engine,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s %6d matches in %8s (%d elements visited, %d disk accesses)\n",
				engine, len(res.Matches), res.Stats.Elapsed,
				res.Stats.VisitedElements, res.Stats.PageMisses)
		}
	}
}
