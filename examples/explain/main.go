// Explain: reproduce the paper's Fig. 11 interactively — show the SQL and
// relational algebra each translator generates for QS3, including the
// selection-kind breakdown of §5.2.2 (Split: 2 range + 1 equality;
// Push-up: 1 range + 2 equality; Unfold: 3 equality).
package main

import (
	"bytes"
	"fmt"
	"log"

	blas "repro"
)

const qs3 = `/PLAYS/PLAY/ACT/SCENE[TITLE="SCENE III. A public place."]//LINE`

func main() {
	var doc bytes.Buffer
	if err := blas.GenerateDataset(&doc, "shakespeare", blas.DatasetOptions{Seed: 1}); err != nil {
		log.Fatal(err)
	}
	store, err := blas.BuildFromString(doc.String(), blas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Println("QS3 =", qs3)
	for _, tr := range []blas.Translator{blas.TranslatorDLabel, blas.TranslatorSplit, blas.TranslatorPushUp, blas.TranslatorUnfold} {
		ex, err := store.Explain(qs3, blas.QueryOptions{Translator: tr})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s: %d D-joins, %d equality + %d range selections ===\n",
			tr, ex.Joins, ex.EqSels, ex.RangeSels)
		fmt.Println(ex.SQL)
		fmt.Println("\nalgebra:")
		fmt.Println(ex.Algebra)
	}
}
