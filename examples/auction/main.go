// Auction: the XMark-style workload with a recursive schema. Runs the
// paper's QA1-QA3 and the Fig. 15 benchmark skeleton queries, comparing
// the D-labeling baseline with the BLAS translators — a miniature of the
// paper's Figs. 14-18.
package main

import (
	"bytes"
	"fmt"
	"log"

	blas "repro"
)

func main() {
	var doc bytes.Buffer
	if err := blas.GenerateDataset(&doc, "auction", blas.DatasetOptions{Seed: 1, Factor: 2}); err != nil {
		log.Fatal(err)
	}
	store, err := blas.BuildFromString(doc.String(), blas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	stats := store.Stats()
	fmt.Printf("auction store: %d nodes, %d tags, depth %d\n\n", stats.Nodes, stats.Tags, stats.MaxDepth)

	queries := []struct{ name, q string }{
		{"QA1", "//category/description/parlist/listitem"},
		{"QA2", "/site/regions//item/description"},
		{"QA3", "/site/regions/asia/item[shipping]/description"},
		{"Q1 ", "/site/people/person/name"},
		{"Q2 ", "/site/open_auctions/open_auction/bidder/increase"},
		{"Q5 ", "/site/closed_auctions/closed_auction/price"},
		{"Q6 ", "/site/regions//item"},
	}
	fmt.Printf("%-4s %-50s %10s %10s %10s  (elements visited, twig engine)\n",
		"", "query", "D-label", "Split", "Push-up")
	for _, qq := range queries {
		fmt.Printf("%-4s %-50s", qq.name, qq.q)
		for _, tr := range []blas.Translator{blas.TranslatorDLabel, blas.TranslatorSplit, blas.TranslatorPushUp} {
			res, err := store.Query(qq.q, blas.QueryOptions{Translator: tr, Engine: blas.EngineTwig})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10d", res.Stats.VisitedElements)
		}
		fmt.Println()
	}

	// The recursive parlist/listitem structure is where Unfold's
	// schema-bounded unrolling shines: deep suffix queries become unions
	// of equality selections.
	fmt.Println("\nUnfold on the recursive description structure:")
	ex, err := store.Explain("/site/regions/asia/item/description//listitem", blas.QueryOptions{Translator: blas.TranslatorUnfold})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d D-joins, %d equality selections, %d range selections\n", ex.Joins, ex.EqSels, ex.RangeSels)
	res, err := store.Query("/site/regions/asia/item/description//listitem", blas.QueryOptions{Translator: blas.TranslatorUnfold})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d matches in %s\n", len(res.Matches), res.Stats.Elapsed)
}
