// Protein: the paper's §1 motivating scenario. A biologist looks for the
// title of the 2001 paper by Evans, M.J. about the "cytochrome c" protein
// family — the paper's running example query Q (Fig. 2) — against the
// synthetic protein repository.
package main

import (
	"bytes"
	"fmt"
	"log"

	blas "repro"
)

const paperQuery = `/ProteinDatabase/ProteinEntry[protein//superfamily="cytochrome c"]` +
	`/reference/refinfo[//author="Evans, M.J." and year="2001"]/title`

func main() {
	// Generate the protein data set (Fig. 12 shape: ~114k nodes, 66 tags).
	var doc bytes.Buffer
	if err := blas.GenerateDataset(&doc, "protein", blas.DatasetOptions{Seed: 1}); err != nil {
		log.Fatal(err)
	}
	store, err := blas.BuildFromString(doc.String(), blas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Println("query Q (paper Fig. 2):")
	fmt.Println(" ", paperQuery)
	fmt.Println()

	// The paper's point: the four translators answer the same query with
	// very different plans. Compare them.
	for _, tr := range []blas.Translator{blas.TranslatorDLabel, blas.TranslatorSplit, blas.TranslatorPushUp, blas.TranslatorUnfold} {
		// Warm up once (allocator effects), report the second run.
		if _, err := store.Query(paperQuery, blas.QueryOptions{Translator: tr}); err != nil {
			log.Fatal(err)
		}
		res, err := store.Query(paperQuery, blas.QueryOptions{Translator: tr})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d matches  %8s  %2d D-joins  %7d elements visited  %5d page misses\n",
			tr, len(res.Matches), res.Stats.Elapsed, res.Stats.Joins,
			res.Stats.VisitedElements, res.Stats.PageMisses)
	}

	res, err := store.Query(paperQuery, blas.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst titles found:")
	for i, m := range res.Matches {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(res.Matches)-5)
			break
		}
		fmt.Printf("  %q\n", m.Value)
	}
}
