// Quickstart: build an in-memory BLAS store from an XML document and run
// a few XPath queries through the public API.
package main

import (
	"fmt"
	"log"

	blas "repro"
)

const doc = `<library>
  <shelf floor="1">
    <book id="b1"><author>Knuth</author><title>TAOCP Vol. 1</title><year>1968</year></book>
    <book id="b2"><author>Date</author><title>An Introduction to Database Systems</title><year>1975</year></book>
  </shelf>
  <shelf floor="2">
    <book id="b3"><author>Knuth</author><title>Concrete Mathematics</title><year>1989</year></book>
    <book id="b4"><author>Gray</author><title>Transaction Processing</title><year>1992</year></book>
  </shelf>
</library>`

func main() {
	store, err := blas.BuildFromString(doc, blas.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	stats := store.Stats()
	fmt.Printf("shredded: %d nodes, %d tags, depth %d\n\n", stats.Nodes, stats.Tags, stats.MaxDepth)

	queries := []string{
		"/library/shelf/book/title",              // suffix path: one index selection
		`//book[author="Knuth"]/title`,           // branch + value predicate
		`/library/shelf[@floor="2"]/book/author`, // attribute predicate
		"//year",
	}
	for _, q := range queries {
		res, err := store.Query(q, blas.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", q)
		for _, m := range res.Matches {
			fmt.Printf("  %-30s %q\n", m.Path, m.Value)
		}
		fmt.Printf("  -> %d matches in %s via %s (%d joins, %d elements visited)\n\n",
			len(res.Matches), res.Stats.Elapsed, res.Stats.Translator,
			res.Stats.Joins, res.Stats.VisitedElements)
	}
}
